"""Tests for the latency extension: model estimate + probe measurement."""

import pytest

from repro.core.latency import LatencyEstimator, PathProber
from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.sockets import EchoService
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


def system():
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    return build, monitor, LatencyEstimator(build.spec, monitor.calculator)


class TestEstimator:
    def test_idle_path_dominated_by_transmission(self):
        build, monitor, est = system()
        e = est.estimate_path("S1", "N1")
        # Idle: 100 Mb/s hop ~0.12 ms + two 10 Mb/s crossings ~1.2 ms each
        # (link + hub repeat); queueing 0.
        assert e.queueing_s == 0.0
        assert 0.001 < e.total_s < 0.006
        assert len(e.per_connection_s) == 3

    def test_switch_only_path_faster_than_hub_path(self):
        build, monitor, est = system()
        fast = est.estimate_path("S1", "S2")
        slow = est.estimate_path("S1", "N1")
        assert fast.total_s < slow.total_s / 5

    def test_load_increases_estimate(self):
        build, monitor, est = system()
        net = build.network
        monitor.start()
        idle = est.estimate_path("S1", "N1").total_s
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule.pulse(1.0, 30.0, 800_000.0)
        ).start()
        net.run(20.0)
        loaded = est.estimate_path("S1", "N1")
        assert loaded.total_s > idle * 1.5
        assert loaded.queueing_s > 0

    def test_estimate_brackets_probe_floor(self):
        """The idle model estimate must be close to real idle RTT/2.

        The probe carries an MTU-sized payload so the measured frames
        match the frame size the estimator models.
        """
        build, monitor, est = system()
        net = build.network
        EchoService(net.host("N1"))
        results = {}
        prober = PathProber(
            net.host("S1"), net.ip_of("N1"), count=5, payload_size=1472,
            on_complete=lambda s: results.update(stats=s),
        )
        prober.start()
        net.run(10.0)
        one_way = results["stats"].min_s / 2
        estimate = est.estimate_path("S1", "N1").total_s
        assert estimate == pytest.approx(one_way, rel=0.5)


class TestProber:
    def probe(self, count=10, load=None, payload=64):
        build = build_testbed()
        net = build.network
        EchoService(net.host("N1"))
        if load:
            StaircaseLoad(net.host("L"), net.ip_of("N1"), load).start()
        results = {}
        prober = PathProber(
            net.host("S1"), net.ip_of("N1"), count=count, payload_size=payload,
            on_complete=lambda s: results.update(stats=s),
        )
        net.run(5.0)
        prober.start()
        net.run(60.0)
        return results["stats"]

    def test_all_probes_echoed_on_idle_lan(self):
        stats = self.probe()
        assert stats.received == stats.sent == 10
        assert stats.loss_rate == 0.0
        assert stats.min_s > 0

    def test_rtt_grows_under_load(self):
        idle = self.probe()
        loaded = self.probe(load=StepSchedule.pulse(0.0, 60.0, 1_000_000.0))
        assert loaded.mean_s > idle.mean_s
        assert loaded.jitter_s >= 0.0

    def test_probe_count_validated(self):
        build = build_testbed()
        with pytest.raises(ValueError):
            PathProber(build.network.host("S1"), build.network.ip_of("N1"), count=0)

    def test_probe_to_silent_host_counts_loss(self):
        build = build_testbed()
        net = build.network
        results = {}
        prober = PathProber(
            net.host("S1"), net.ip_of("N2"), count=3,  # no echo service on N2
            on_complete=lambda s: results.update(stats=s),
        )
        prober.start()
        net.run(10.0)
        assert results["stats"].received == 0
        assert results["stats"].loss_rate == 1.0
