"""Self-monitoring observability for the monitor itself.

The paper's monitor watches the network; this package watches the
monitor: how long polls take, how fresh reports are, what faults and
violations fired, and what that all costs.  See the "Observability"
section of ``docs/architecture.md``.

Layout:

- :mod:`repro.telemetry.quantile` -- O(1)-memory streaming quantile
  estimators (P-square; exponentially-weighted variant).
- :mod:`repro.telemetry.metrics`  -- Counter / Gauge / Histogram and the
  :class:`MetricsRegistry` namespace, with label support.
- :mod:`repro.telemetry.trace`    -- sim-time spans, ring-buffered, with
  a slow-span log.
- :mod:`repro.telemetry.events`   -- the structured event bus (health
  transitions, QoS violations, faults, report-status changes).
- :mod:`repro.telemetry.hub`      -- :class:`Telemetry`, the bundle the
  monitor threads through every instrumented component.
- :mod:`repro.telemetry.export`   -- Prometheus text, JSON snapshot, and
  periodic sim-time series output.
"""

from repro.telemetry.events import Event, EventBus
from repro.telemetry.export import (
    TimeSeriesRecorder,
    json_snapshot,
    prometheus_text,
    snapshot_dict,
)
from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.quantile import EwmaQuantile, P2Quantile
from repro.telemetry.trace import Span, Tracer

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "EwmaQuantile",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "P2Quantile",
    "Span",
    "Telemetry",
    "TimeSeriesRecorder",
    "Tracer",
    "json_snapshot",
    "prometheus_text",
    "snapshot_dict",
]
