"""Integration tests: the monitor stack feeding the telemetry subsystem."""

import pytest

from repro.cli import main
from repro.core.health import HealthState
from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import MONITOR_HOST, build_testbed
from repro.rm.middleware import RmMiddleware
from repro.rm.qos import QosRequirement
from repro.simnet.faults import AgentOutage, LinkFailure
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.telemetry import Telemetry, prometheus_text
from repro.telemetry.events import (
    FAULT_CLEARED,
    FAULT_INJECTED,
    HEALTH_TRANSITION,
    QOS_RECOVERY,
    QOS_VIOLATION,
)


@pytest.fixture
def monitored():
    build = build_testbed()
    monitor = NetworkMonitor(build, MONITOR_HOST)
    monitor.watch_path("S1", "N1")
    return build, monitor


class TestMonitorTelemetry:
    def test_rtt_histogram_labelled_per_agent(self, monitored):
        build, monitor = monitored
        monitor.start()
        build.network.run(20.0)
        family = monitor.telemetry.registry.get("snmp_rtt_seconds")
        agents = [lv[0] for lv, _ in family.children()]
        assert set(agents) == {"L", "N1", "N2", "S1", "S2", "switch"}
        for _, child in family.children():
            assert child.count > 0
            assert 0.0 < child.quantile(0.5) < 1.0
            assert child.quantile(0.5) <= child.max

    def test_poll_cycle_spans_and_histogram(self, monitored):
        build, monitor = monitored
        monitor.start()
        build.network.run(20.0)
        tracer = monitor.telemetry.tracer
        cycles = tracer.spans("poll_cycle")
        assert len(cycles) >= 9
        # Each cycle span has one snmp_exchange child per polled agent.
        exchanges = tracer.children_of(cycles[-1])
        assert {s.name for s in exchanges} == {"snmp_exchange"}
        assert len(exchanges) == 6
        assert {s.attrs["outcome"] for s in exchanges} == {"ok"}
        hist = monitor.telemetry.registry.value("poll_cycle_seconds")
        assert hist["count"] >= 9
        assert 0.0 < hist["quantiles"][0.5] < monitor.poll_interval

    def test_stats_keys_unchanged_and_registry_backed(self, monitored):
        build, monitor = monitored
        monitor.start()
        build.network.run(10.0)
        stats = monitor.stats()
        assert set(stats) == {
            "poll_cycles", "poll_errors", "poll_timeout_errors",
            "poll_error_responses", "poll_parse_errors", "polls_suppressed",
            "agent_restarts", "agents_healthy", "agents_dead", "samples",
            "reports", "history_samples", "history_dropped",
            "snmp_requests", "snmp_responses", "snmp_timeouts",
            "snmp_retransmissions", "integrity_violations",
            "integrity_rejected", "integrity_quarantined",
            "cross_check_mismatches", "cache_hits", "recomputes",
            "dirty_pairs", "stream_subscribers", "stream_events_delivered",
            "stream_events_suppressed", "stream_events_dropped",
            "probe_trains", "probe_packets_sent", "probe_packets_lost",
            "probe_bytes_sent", "probe_disagreements", "probe_recoveries",
            "probe_active_disagreements", "topology_rounds",
            "topology_full_rounds", "topology_changes", "path_reroutes",
            "blocked_connections",
        }
        registry = monitor.telemetry.registry
        assert stats["poll_cycles"] == registry.value("poll_cycles_total")
        assert stats["snmp_requests"] == registry.value("snmp_requests_total")
        assert stats["reports"] == monitor.reports_emitted > 0
        assert stats["agents_healthy"] == 6

    def test_health_transitions_become_events(self, monitored):
        build, monitor = monitored
        AgentOutage(build.network.sim, build.agents["N1"], at=4.0, until=40.0)
        monitor.start()
        build.network.run(40.0)
        events = monitor.telemetry.events.events(HEALTH_TRANSITION)
        assert events, "outage should produce health transitions"
        assert events[0].attrs["node"] == "N1"
        dead = [e for e in events if e.attrs["new"] == "dead"]
        assert dead and dead[0].attrs["old"] == "suspect"
        assert monitor.telemetry.registry.value("agents_dead") == 1.0
        assert monitor.health.state("N1") is HealthState.DEAD

    def test_fault_events_on_shared_bus(self, monitored):
        build, monitor = monitored
        link = build.network.links[0]
        LinkFailure(
            build.network.sim, link, at=5.0, until=10.0,
            events=monitor.telemetry.events,
        )
        monitor.start()
        build.network.run(15.0)
        bus = monitor.telemetry.events
        assert bus.count(FAULT_INJECTED) == 1
        assert bus.count(FAULT_CLEARED) == 1
        assert bus.last(FAULT_INJECTED).attrs["fault"] == "LinkFailure"
        assert bus.last(FAULT_INJECTED).time == 5.0

    def test_qos_violation_and_recovery_events(self, monitored):
        build, monitor = monitored
        # Demand more than the 10 Mbps hub leg can ever leave available.
        RmMiddleware(
            monitor,
            [QosRequirement(
                name="tight", src="S1", dst="N1",
                min_available_bps=1_000_000.0,
            )],
        )
        StaircaseLoad(
            build.network.host("L"),
            build.network.ip_of("N1"),
            StepSchedule.pulse(6.0, 30.0, 600 * KBPS),
        ).start()
        monitor.start()
        build.network.run(60.0)
        bus = monitor.telemetry.events
        assert bus.count(QOS_VIOLATION) >= 1
        violation = bus.last(QOS_VIOLATION)
        assert violation.attrs["requirement"] == "tight"
        assert violation.attrs["path"] == "S1<->N1"
        assert "below required" in violation.attrs["reason"]
        assert bus.count(QOS_RECOVERY) >= 1

    def test_disabled_telemetry_still_counts(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, MONITOR_HOST, telemetry=False)
        monitor.watch_path("S1", "N1")
        monitor.start()
        build.network.run(10.0)
        stats = monitor.stats()
        assert stats["poll_cycles"] > 0
        assert stats["snmp_requests"] > 0
        # The optional costs stayed off: no spans, no RTT observations.
        assert monitor.telemetry.tracer.spans_finished == 0
        assert monitor.telemetry.registry.get("snmp_rtt_seconds").children() == []

    def test_shared_hub_instance_accepted(self):
        build = build_testbed()
        hub = Telemetry()
        monitor = NetworkMonitor(build, MONITOR_HOST, telemetry=hub)
        assert monitor.telemetry is hub

    def test_prometheus_export_from_live_run(self, monitored):
        build, monitor = monitored
        monitor.start()
        build.network.run(10.0)
        text = prometheus_text(monitor.telemetry.registry)
        assert "# TYPE snmp_rtt_seconds summary" in text
        assert 'snmp_rtt_seconds{agent="S1",quantile="0.99"}' in text
        assert "poll_cycles_total" in text


class TestTelemetryCli:
    def test_default_testbed_text_output(self, capsys):
        assert main(["telemetry", "--until", "20"]) == 0
        out = capsys.readouterr().out
        assert "SNMP round-trip time per agent" in out
        assert "Poll cycle duration" in out
        assert "Event counts:" in out
        assert "qos_violation" in out
        assert "health_transition" in out
        assert "--- Prometheus export ---" in out
        assert "# TYPE poll_cycle_seconds summary" in out

    def test_prometheus_format(self, capsys):
        assert main(["telemetry", "--until", "10", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# HELP")
        assert "snmp_rtt_seconds_count" in out

    def test_json_format(self, capsys):
        import json

        assert main(["telemetry", "--until", "10", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "metrics" in data and "events" in data and "spans" in data

    def test_qos_flag_wires_middleware(self, capsys):
        code = main([
            "telemetry", "--until", "30",
            "--load", "L:N1:600:5:25",
            "--qos", "S1:N1:1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "qos_violation: " in out
        violations = [
            line for line in out.splitlines() if "qos_violation:" in line
        ]
        assert violations and not violations[0].strip().endswith(": 0")

    def test_spec_file_requires_host(self, tmp_path, capsys):
        spec = tmp_path / "x.net"
        spec.write_text(
            'network topology t { host A { snmp community "public"; }\n'
            'host B { snmp community "public"; }\n'
            "switch s { ports 4; }\n"
            "connect A.eth0 <-> s.port1; connect B.eth0 <-> s.port2; }"
        )
        assert main(["telemetry", str(spec)]) == 2
        assert main([
            "telemetry", str(spec), "--host", "A", "--watch", "A:B",
            "--until", "10",
        ]) == 0

    def test_malformed_qos(self, capsys):
        assert main(["telemetry", "--qos", "S1:N1"]) == 2
