"""Unit tests for the BER codec, including known-answer wire vectors."""

import pytest

from repro.snmp import ber
from repro.snmp.oid import Oid


class TestLength:
    @pytest.mark.parametrize(
        "length,encoded",
        [
            (0, b"\x00"),
            (127, b"\x7f"),
            (128, b"\x81\x80"),
            (255, b"\x81\xff"),
            (256, b"\x82\x01\x00"),
            (65536, b"\x83\x01\x00\x00"),
        ],
    )
    def test_known_encodings(self, length, encoded):
        assert ber.encode_length(length) == encoded
        decoded, offset = ber.decode_length(encoded, 0)
        assert decoded == length
        assert offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ber.BerError):
            ber.encode_length(-1)

    def test_indefinite_form_rejected(self):
        with pytest.raises(ber.BerError):
            ber.decode_length(b"\x80", 0)

    def test_truncated_long_form(self):
        with pytest.raises(ber.BerError):
            ber.decode_length(b"\x82\x01", 0)

    def test_truncated_empty(self):
        with pytest.raises(ber.BerError):
            ber.decode_length(b"", 0)


class TestInteger:
    @pytest.mark.parametrize(
        "value,content",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x00\x80"),  # needs a sign pad
            (256, b"\x01\x00"),
            (-1, b"\xff"),
            (-129, b"\xff\x7f"),
        ],
    )
    def test_known_answer(self, value, content):
        assert ber.encode_integer_content(value) == content
        assert ber.decode_integer_content(content) == value

    def test_roundtrip_extremes(self):
        for value in (2**31 - 1, -(2**31), 2**63, -(2**63)):
            assert ber.decode_integer_content(ber.encode_integer_content(value)) == value

    def test_empty_content_rejected(self):
        with pytest.raises(ber.BerError):
            ber.decode_integer_content(b"")

    def test_full_tlv(self):
        data = ber.encode_integer(300)
        tag, content, end = ber.decode_tlv(data)
        assert tag == ber.TAG_INTEGER
        assert ber.decode_integer_content(content) == 300
        assert end == len(data)


class TestUnsigned:
    def test_high_bit_gets_pad(self):
        content = ber.encode_unsigned_content(0x80000000, 32)
        assert content == b"\x00\x80\x00\x00\x00"
        assert ber.decode_unsigned_content(content, 32) == 0x80000000

    def test_counter_wrap_boundary(self):
        top = (1 << 32) - 1
        content = ber.encode_unsigned_content(top, 32)
        assert ber.decode_unsigned_content(content, 32) == top

    def test_out_of_range_rejected(self):
        with pytest.raises(ber.BerError):
            ber.encode_unsigned_content(1 << 32, 32)
        with pytest.raises(ber.BerError):
            ber.encode_unsigned_content(-1, 32)

    def test_oversized_decode_rejected(self):
        with pytest.raises(ber.BerError):
            ber.decode_unsigned_content(b"\x01" * 6, 32)

    def test_counter64(self):
        value = (1 << 64) - 1
        content = ber.encode_unsigned_content(value, 64)
        assert ber.decode_unsigned_content(content, 64) == value


class TestOid:
    def test_known_answer_sysuptime(self):
        """RFC 1213 sysUpTime.0 = 1.3.6.1.2.1.1.3.0 -> 2b 06 01 02 01 01 03 00."""
        content = ber.encode_oid_content(Oid("1.3.6.1.2.1.1.3.0"))
        assert content == bytes.fromhex("2b06010201010300")
        assert ber.decode_oid_content(content) == Oid("1.3.6.1.2.1.1.3.0")

    def test_multibyte_arc(self):
        oid = Oid("1.3.6.1.4.1.99999.1")
        decoded = ber.decode_oid_content(ber.encode_oid_content(oid))
        assert decoded == oid

    def test_large_second_arc_under_root_2(self):
        """X.690: 2.x allows x > 39; the first subid goes multi-byte."""
        for text in ("2.999", "2.40", "2.16383"):
            oid = Oid(text)
            assert ber.decode_oid_content(ber.encode_oid_content(oid)) == oid

    def test_single_arc_rejected(self):
        with pytest.raises(ber.BerError):
            ber.encode_oid_content(Oid("1"))

    def test_invalid_leading_arcs(self):
        with pytest.raises(ber.BerError):
            ber.encode_oid_content(Oid("3.1"))
        with pytest.raises(ber.BerError):
            ber.encode_oid_content(Oid("1.40"))

    def test_truncated_base128_rejected(self):
        # 0x2b then a continuation byte with nothing after it.
        with pytest.raises(ber.BerError):
            ber.decode_oid_content(b"\x2b\x87")

    def test_empty_rejected(self):
        with pytest.raises(ber.BerError):
            ber.decode_oid_content(b"")


class TestTlv:
    def test_sequence_roundtrip(self):
        seq = ber.encode_sequence(ber.encode_integer(1), ber.encode_null())
        content, end = ber.decode_sequence(seq)
        assert end == len(seq)
        tag, c, pos = ber.decode_tlv(content)
        assert tag == ber.TAG_INTEGER

    def test_wrong_tag_raises(self):
        with pytest.raises(ber.BerError):
            ber.decode_sequence(ber.encode_integer(1))

    def test_truncated_content(self):
        data = bytes([ber.TAG_OCTET_STRING, 10]) + b"short"
        with pytest.raises(ber.BerError):
            ber.decode_tlv(data)

    def test_empty_input(self):
        with pytest.raises(ber.BerError):
            ber.decode_tlv(b"")

    def test_octet_string(self):
        data = ber.encode_octet_string(b"public")
        tag, content, _ = ber.decode_tlv(data)
        assert (tag, content) == (ber.TAG_OCTET_STRING, b"public")
