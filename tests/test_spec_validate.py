"""Unit tests for spec validation."""

import pytest

from repro.spec.parser import parse_spec
from repro.spec.validate import SpecValidationError, validate_spec


def issues_of(text, strict=False):
    return validate_spec(parse_spec(text), strict=strict)


def messages(issues, severity=None):
    return [i.message for i in issues if severity is None or i.severity == severity]


VALID = """
network topology t {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    switch sw { snmp community "public"; ports 4; }
    connect A.eth0 <-> sw.port1;
    connect B.eth0 <-> sw.port2;
}
"""


class TestErrors:
    def test_valid_spec_clean(self):
        assert messages(issues_of(VALID), "error") == []

    def test_unknown_node_in_connection(self):
        text = """
        network topology t {
            host A { }
            connect A.eth0 <-> ghost.port1;
        }
        """
        errs = messages(issues_of(text), "error")
        assert any("unknown node 'ghost'" in m for m in errs)

    def test_unknown_interface_in_connection(self):
        text = """
        network topology t {
            host A { } host B { }
            connect A.eth9 <-> B.eth0;
        }
        """
        errs = messages(issues_of(text), "error")
        assert any("unknown interface 'eth9'" in m for m in errs)

    def test_one_to_one_rule(self):
        """The paper: "one interface may only be connected to one interface"."""
        text = """
        network topology t {
            host A { } host B { } host C { }
            connect A.eth0 <-> B.eth0;
            connect A.eth0 <-> C.eth0;
        }
        """
        errs = messages(issues_of(text), "error")
        assert any("1-to-1" in m for m in errs)

    def test_qos_path_unknown_endpoint(self):
        text = """
        network topology t {
            host A { }
            qospath p { from A to Z; min_available 1 Kbps; }
        }
        """
        errs = messages(issues_of(text), "error")
        assert any("unknown node 'Z'" in m for m in errs)

    def test_qos_path_device_endpoint(self):
        text = """
        network topology t {
            host A { } switch sw { ports 2; }
            qospath p { from A to sw; min_available 1 Kbps; }
        }
        """
        errs = messages(issues_of(text), "error")
        assert any("not a host" in m for m in errs)

    def test_strict_mode_raises(self):
        text = """
        network topology t {
            host A { }
            connect A.eth0 <-> ghost.p;
        }
        """
        with pytest.raises(SpecValidationError):
            issues_of(text, strict=True)

    def test_strict_mode_passes_clean_spec(self):
        issues_of(VALID, strict=True)


class TestWarnings:
    def test_layer2_loop_warning(self):
        text = """
        network topology t {
            switch s1 { ports 4; } switch s2 { ports 4; }
            connect s1.port1 <-> s2.port1;
            connect s1.port2 <-> s2.port2;
        }
        """
        warns = messages(issues_of(text), "warning")
        assert any("loop" in m for m in warns)

    def test_disconnected_warning(self):
        text = """
        network topology t {
            host A { } host B { } host C { }
            connect A.eth0 <-> B.eth0;
        }
        """
        warns = messages(issues_of(text), "warning")
        assert any("no connections" in m for m in warns)
        assert any("not connected" in m for m in warns)

    def test_unobservable_connection_warning(self):
        """A segment with no SNMP on either end cannot be measured."""
        text = """
        network topology t {
            host A { } host B { }
            connect A.eth0 <-> B.eth0;
        }
        """
        warns = messages(issues_of(text), "warning")
        assert any("no SNMP-enabled endpoint" in m for m in warns)

    def test_switch_side_observability_suffices(self):
        """S4 has no agent, but the switch port covers it (the paper's case)."""
        text = """
        network topology t {
            host S4 { }
            switch sw { snmp community "public"; ports 2; }
            connect S4.eth0 <-> sw.port1;
        }
        """
        warns = messages(issues_of(text), "warning")
        assert not any("no SNMP-enabled endpoint" in m for m in warns)

    def test_testbed_spec_validates_clean(self):
        from repro.experiments.testbed import TESTBED_SPEC_TEXT

        issues = issues_of(TESTBED_SPEC_TEXT, strict=True)
        assert messages(issues, "error") == []
        # hub <-> switch segment is observable from the switch side; host
        # legs from the NT hosts; so no observability warnings either.
        assert not any("no SNMP-enabled endpoint" in m for m in messages(issues))
