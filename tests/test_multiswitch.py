"""Generalisation tests: topologies beyond the paper's single-switch LAN.

The paper's model (Figure 1) explicitly includes multi-device paths
("B and D can be hosts with multiple network connections, or network
devices such as switches or hubs"); these tests verify the monitor's
traversal, counter-source resolution and bandwidth rules hold on chained
switches, cascaded hubs, and a trunk bottleneck.
"""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.core.traversal import find_path, format_path
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec

TWO_SWITCHES = """
network topology chained {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    host C { }
    switch sw1 { snmp community "public"; ports 4; }
    switch sw2 { snmp community "public"; ports 4; }
    connect A.eth0 <-> sw1.port1;
    connect C.eth0 <-> sw1.port2;
    connect sw1.port3 <-> sw2.port1 [ bandwidth 10 Mbps ];  # thin trunk
    connect B.eth0 <-> sw2.port2;
}
"""

CASCADED_HUBS = """
network topology cascaded {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    host C { snmp community "public"; }
    switch sw { snmp community "public"; ports 4; }
    hub hub1 { ports 4; }
    hub hub2 { ports 4; }
    connect A.eth0 <-> sw.port1;
    connect sw.port2 <-> hub1.port1;
    connect B.eth0 <-> hub1.port2;
    connect hub1.port3 <-> hub2.port1;
    connect C.eth0 <-> hub2.port2;
}
"""


class TestChainedSwitches:
    def build(self):
        spec = parse_spec(TWO_SWITCHES)
        build = build_network(spec)
        monitor = NetworkMonitor(build, "A", poll_jitter=0.0)
        return build, monitor

    def test_path_crosses_both_switches(self):
        spec = parse_spec(TWO_SWITCHES)
        path = find_path(spec, "A", "B")
        assert format_path(path, "A") == "A -> sw1 -> sw2 -> B"
        assert len(path) == 3

    def test_traffic_flows_across_trunk(self):
        build, monitor = self.build()
        net = build.network
        label = monitor.watch_path("A", "B")
        StaircaseLoad(
            net.host("A"), net.ip_of("B"), StepSchedule.pulse(2.0, 28.0, 300 * KBPS)
        ).start()
        monitor.start()
        net.run(30.0)
        series = monitor.history.series(label)
        assert series.used().max() == pytest.approx(300_000 * 1.019, rel=0.05)

    def test_trunk_is_the_capacity_bottleneck(self):
        build, monitor = self.build()
        label = monitor.watch_path("A", "B")
        monitor.start()
        build.network.run(6.0)
        report = monitor.current_report(label)
        assert report.capacity_bps == 10e6 / 8
        bottleneck = report.bottleneck
        assert {e.node for e in bottleneck.connection.endpoints()} == {"sw1", "sw2"}

    def test_trunk_measured_from_either_switch(self):
        """The trunk has no host end; a switch-port source must serve it."""
        from repro.core.counters import resolve_counter_source

        spec = parse_spec(TWO_SWITCHES)
        trunk = next(
            c for c in spec.connections
            if {c.end_a.node, c.end_b.node} == {"sw1", "sw2"}
        )
        source = resolve_counter_source(spec, trunk)
        assert source.node in ("sw1", "sw2")

    def test_cross_switch_isolation(self):
        """Traffic A->B must not appear on C's connection."""
        build, monitor = self.build()
        net = build.network
        ab = monitor.watch_path("A", "B")
        ac = monitor.watch_path("A", "C")
        StaircaseLoad(
            net.host("A"), net.ip_of("B"), StepSchedule.pulse(2.0, 28.0, 300 * KBPS)
        ).start()
        monitor.start()
        net.run(30.0)
        assert monitor.history.series(ab).used().max() > 250_000
        # A's own connection carries the flow, so the A<->C path (sharing
        # A's NIC) sees it too -- but C's own leg must stay quiet.
        c_conn = monitor.path_of(ac)[-1]
        measurement = monitor.calculator.measure_connection(c_conn)
        assert measurement.used_bps < 20_000


class TestCascadedHubs:
    def build(self):
        spec = parse_spec(CASCADED_HUBS)
        build = build_network(spec)
        monitor = NetworkMonitor(build, "A", poll_jitter=0.0)
        return build, monitor

    def test_path_through_both_hubs(self):
        spec = parse_spec(CASCADED_HUBS)
        path = find_path(spec, "A", "C")
        assert format_path(path, "A") == "A -> sw -> hub1 -> hub2 -> C"

    def test_traffic_reaches_across_cascade(self):
        build, monitor = self.build()
        net = build.network
        label = monitor.watch_path("A", "C")
        StaircaseLoad(
            net.host("A"), net.ip_of("C"), StepSchedule.pulse(2.0, 28.0, 100 * KBPS)
        ).start()
        monitor.start()
        net.run(30.0)
        assert net.host("C").discard.octets > 2_000_000
        series = monitor.history.series(label)
        assert series.used().max() == pytest.approx(100_000 * 1.019, rel=0.06)

    def test_each_hub_sums_its_own_hosts(self):
        """hub1's rule sums B's leg; hub2's sums C's leg."""
        build, monitor = self.build()
        net = build.network
        StaircaseLoad(
            net.host("A"), net.ip_of("B"), StepSchedule.pulse(2.0, 28.0, 100 * KBPS)
        ).start()
        monitor.start()
        net.run(30.0)
        spec = build.spec
        b_leg = next(c for c in spec.connections if c.touches("B"))
        c_leg = next(c for c in spec.connections if c.touches("C"))
        m_b = monitor.calculator.measure_connection(b_leg)
        m_c = monitor.calculator.measure_connection(c_leg)
        assert m_b.rule == "hub" and m_c.rule == "hub"
        assert m_b.used_bps == pytest.approx(100_000 * 1.019, rel=0.06)
        # A cascaded hub repeats *everything* onward: C's NIC filters the
        # frames, but C's agent counts only its own (none), so hub2's sum
        # stays near zero -- the monitor model matches the paper's, which
        # sums per-host delivered traffic.
        assert m_c.used_bps < 20_000


class TestMultihomedHost:
    def test_spec_with_dual_homed_host(self):
        """Figure 1's model: host B with connections into two segments."""
        text = """
        network topology dualhome {
            host GW { snmp community "public";
                      interface eth0 { speed 100 Mbps; }
                      interface eth1 { speed 100 Mbps; } }
            host X { snmp community "public"; }
            host Y { snmp community "public"; }
            switch sw1 { snmp community "public"; ports 4; }
            switch sw2 { snmp community "public"; ports 4; }
            connect GW.eth0 <-> sw1.port1;
            connect GW.eth1 <-> sw2.port1;
            connect X.eth0 <-> sw1.port2;
            connect Y.eth0 <-> sw2.port2;
        }
        """
        spec = parse_spec(text)
        # The path X -> Y runs through the dual-homed GW host.
        path = find_path(spec, "X", "Y")
        assert format_path(path, "X") == "X -> sw1 -> GW -> sw2 -> Y"
        build = build_network(spec)
        monitor = NetworkMonitor(build, "GW", poll_jitter=0.0)
        label = monitor.watch_path("X", "Y")
        monitor.start()
        build.network.run(8.0)
        report = monitor.current_report(label)
        assert report.complete
        assert len(report.connections) == 4
