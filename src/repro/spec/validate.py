"""Semantic validation of a parsed topology specification.

The spec language is the resource manager's source of truth ("the
middleware has to know exactly what resources are under its control"), so
mistakes here would silently corrupt every bandwidth measurement.  The
validator enforces the paper's structural rules and flags monitorability
gaps:

errors (the topology is unusable):
  - connection endpoints referencing unknown nodes/interfaces
  - an interface appearing in more than one connection (the 1-to-1 rule)
  - duplicate node names
  - QoS paths referencing unknown or non-host endpoints

warnings (usable but suspicious):
  - layer-2 loops where some switch does not run spanning tree (a loop
    whose switches all declare ``stp "on"`` is a legal redundant mesh)
  - disconnected nodes
  - connections where *neither* end is SNMP-observable (the monitor
    cannot measure them; in Fig. 3 every segment is observable from at
    least one side)
  - hosts with no connection at all
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.topology.graph import TopologyGraph
from repro.topology.model import DeviceKind, InterfaceRef, TopologyError, TopologySpec


@dataclass(frozen=True)
class ValidationIssue:
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.message}"


class SpecValidationError(TopologyError):
    """Raised by :func:`validate_spec` in strict mode when errors exist."""

    def __init__(self, issues: List[ValidationIssue]) -> None:
        errors = [i for i in issues if i.severity == "error"]
        super().__init__(
            "invalid topology specification:\n  " + "\n  ".join(str(i) for i in errors)
        )
        self.issues = issues


def validate_spec(spec: TopologySpec, strict: bool = True) -> List[ValidationIssue]:
    """Validate ``spec``; in strict mode raise if any *errors* were found.

    Returns the full issue list (errors + warnings) either way.
    """
    issues: List[ValidationIssue] = []
    _check_duplicate_nodes(spec, issues)
    _check_connections(spec, issues)
    _check_qos_paths(spec, issues)
    _check_applications(spec, issues)
    if not any(i.severity == "error" for i in issues):
        _check_graph_shape(spec, issues)
        _check_observability(spec, issues)
    if strict and any(i.severity == "error" for i in issues):
        raise SpecValidationError(issues)
    return issues


def _error(issues: List[ValidationIssue], message: str) -> None:
    issues.append(ValidationIssue("error", message))


def _warning(issues: List[ValidationIssue], message: str) -> None:
    issues.append(ValidationIssue("warning", message))


def _check_duplicate_nodes(spec: TopologySpec, issues: List[ValidationIssue]) -> None:
    seen: Dict[str, int] = {}
    for node in spec.nodes:
        seen[node.name] = seen.get(node.name, 0) + 1
    for name, count in seen.items():
        if count > 1:
            _error(issues, f"node {name!r} declared {count} times")


def _check_connections(spec: TopologySpec, issues: List[ValidationIssue]) -> None:
    used: Dict[InterfaceRef, int] = {}
    for conn in spec.connections:
        for end in conn.endpoints():
            if not spec.has_node(end.node):
                _error(issues, f"connection {conn} references unknown node {end.node!r}")
                continue
            node = spec.node(end.node)
            try:
                node.interface(end.interface)
            except TopologyError:
                _error(
                    issues,
                    f"connection {conn} references unknown interface "
                    f"{end.interface!r} on {end.node!r}",
                )
                continue
            used[end] = used.get(end, 0) + 1
    for end, count in used.items():
        if count > 1:
            _error(
                issues,
                f"interface {end} appears in {count} connections "
                "(the model requires 1-to-1 connections)",
            )


def _check_applications(spec: TopologySpec, issues: List[ValidationIssue]) -> None:
    seen = set()
    app_names = {app.name for app in spec.applications}
    for app in spec.applications:
        if app.name in seen:
            _error(issues, f"application {app.name!r} declared twice")
        seen.add(app.name)
        if not spec.has_node(app.host):
            _error(issues, f"application {app.name!r} placed on unknown host {app.host!r}")
        elif spec.node(app.host).kind is not DeviceKind.HOST:
            _error(
                issues,
                f"application {app.name!r} placed on {app.host!r}, which is a "
                f"{spec.node(app.host).kind.value}, not a host",
            )
        for flow in app.flows:
            if flow.dst_app not in app_names:
                _error(
                    issues,
                    f"application {app.name!r} sends to unknown application "
                    f"{flow.dst_app!r}",
                )


def _check_qos_paths(spec: TopologySpec, issues: List[ValidationIssue]) -> None:
    for path in spec.qos_paths:
        for endpoint in (path.src, path.dst):
            if not spec.has_node(endpoint):
                _error(issues, f"QoS path {path.name!r} references unknown node {endpoint!r}")
            elif spec.node(endpoint).kind is not DeviceKind.HOST:
                _error(
                    issues,
                    f"QoS path {path.name!r} endpoint {endpoint!r} is a "
                    f"{spec.node(endpoint).kind.value}, not a host",
                )


def _check_graph_shape(spec: TopologySpec, issues: List[ValidationIssue]) -> None:
    graph = TopologyGraph(spec)
    if graph.has_cycle():
        switches = [n for n in spec.nodes if n.kind is DeviceKind.SWITCH]
        non_stp = sorted(n.name for n in switches if not n.stp_enabled)
        if non_stp:
            _warning(
                issues,
                "topology contains a layer-2 loop and switch(es) "
                f"{', '.join(non_stp)} do not run spanning-tree "
                '(declare ``stp "on"``), so frames may circulate',
            )
    connected = [n.name for n in spec.nodes if graph.degree(n.name) > 0]
    for node in spec.nodes:
        if graph.degree(node.name) == 0:
            _warning(issues, f"node {node.name!r} has no connections")
    if connected and not graph.is_connected():
        reachable = graph.reachable_from(connected[0])
        stranded = sorted(set(n.name for n in spec.nodes) - reachable)
        _warning(issues, f"topology is not connected; unreachable from "
                         f"{connected[0]!r}: {', '.join(stranded)}")


def _check_observability(spec: TopologySpec, issues: List[ValidationIssue]) -> None:
    """Every connection should be measurable from at least one end.

    The paper monitors S4<->S5 without SNMP on either host "by polling
    the interfaces on the switch that are connected to S4 and S5" -- i.e.
    a connection is observable when either endpoint node runs SNMP.
    Hubs never run SNMP, so a host-hub segment needs the host side.
    """
    for conn in spec.connections:
        observable = any(spec.node(end.node).snmp_enabled for end in conn.endpoints())
        if not observable:
            _warning(
                issues,
                f"connection {conn} has no SNMP-enabled endpoint; the monitor "
                "cannot measure its traffic",
            )
