"""Resource-management middleware loop: monitor -> detect -> diagnose -> advise.

:class:`RmMiddleware` is the integration object a scenario instantiates
next to a :class:`~repro.core.monitor.NetworkMonitor`.  It subscribes to
the monitor's report stream; each report is routed to the matching
requirement's detector; violation transitions trigger diagnosis and (if an
advisor is configured) reallocation advice, all recorded in the action
log the experiments and examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.monitor import NetworkMonitor
from repro.core.report import PathReport
from repro.rm.allocator import PlacementAdvice, ReallocationAdvisor
from repro.rm.detector import (
    QosEvent,
    QosState,
    StreamViolationAdapter,
    ViolationDetector,
)
from repro.rm.diagnosis import BottleneckDiagnosis, diagnose
from repro.rm.qos import QosRequirement
from repro.telemetry.events import QOS_RECOVERY, QOS_VIOLATION


@dataclass
class RmAction:
    """One entry in the middleware's action log."""

    time: float
    event: QosEvent
    diagnosis: Optional[BottleneckDiagnosis] = None
    advice: List[PlacementAdvice] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [str(self.event)]
        if self.diagnosis is not None:
            lines.append(f"  diagnosis: {self.diagnosis.explanation}")
        for placement in self.advice[:3]:
            marker = "+" if placement.avoids_bottleneck else "-"
            lines.append(
                f"  {marker} move to {placement.host}: "
                f"{placement.available_bps / 1000:.0f} KB/s available"
            )
        return "\n".join(lines)


class RmMiddleware:
    """Network-QoS slice of the DeSiDeRaTa adaptation loop."""

    def __init__(
        self,
        monitor: NetworkMonitor,
        requirements: Sequence[QosRequirement],
        breach_count: int = 2,
        clear_count: int = 2,
        advise_reallocation: bool = True,
        stream: bool = False,
    ) -> None:
        """``stream=True`` consumes push events from the monitor's
        stream publisher (enabling streaming if needed) instead of the
        snapshot report callback; hysteresis decisions are bit-identical
        either way (see
        :class:`~repro.rm.detector.StreamViolationAdapter`)."""
        self.monitor = monitor
        self.spec = monitor.spec
        self._events = monitor.telemetry.events
        self.detectors: Dict[str, ViolationDetector] = {}
        self.actions: List[RmAction] = []
        self._advisor = (
            ReallocationAdvisor(self.spec, monitor.calculator)
            if advise_reallocation
            else None
        )
        for requirement in requirements:
            if requirement.watch_label in self.detectors:
                raise ValueError(
                    f"duplicate requirement for path {requirement.watch_label}"
                )
            # Ensure the monitor is actually watching this path.
            if requirement.watch_label not in self.monitor.watched_paths():
                self.monitor.watch_path(requirement.src, requirement.dst)
            self.detectors[requirement.watch_label] = ViolationDetector(
                requirement, breach_count=breach_count, clear_count=clear_count
            )
        self.stream_adapters: List[StreamViolationAdapter] = []
        if stream:
            publisher = monitor.enable_streaming()
            for requirement in requirements:
                adapter = StreamViolationAdapter(requirement, self._on_report)
                adapter.attach(publisher)
                self.stream_adapters.append(adapter)
        else:
            monitor.subscribe(self._on_report)

    # ------------------------------------------------------------------
    # Report handling
    # ------------------------------------------------------------------
    def _on_report(self, report: PathReport) -> None:
        detector = self.detectors.get(report.label)
        if detector is None:
            return
        event = detector.offer(report)
        if event is None:
            return
        action = RmAction(time=event.time, event=event)
        requirement = detector.requirement
        if event.state is QosState.VIOLATED:
            action.diagnosis = diagnose(self.spec, report)
            if self._advisor is not None:
                action.advice = self._advisor.advise(
                    requirement.src,
                    requirement.dst,
                    diagnosis=action.diagnosis,
                    min_available_bps=requirement.min_available_bps or 0.0,
                    time=event.time,
                )
            self._events.publish(
                QOS_VIOLATION,
                event.time,
                reason=event.reason or "",
                **requirement.event_attrs(),
            )
        elif self.actions:  # an OK after earlier events is a recovery
            self._events.publish(
                QOS_RECOVERY, event.time, **requirement.event_attrs()
            )
        self.actions.append(action)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_of(self, watch_label: str) -> QosState:
        return self.detectors[watch_label].state

    def violations(self) -> List[RmAction]:
        return [a for a in self.actions if a.event.state is QosState.VIOLATED]

    def recoveries(self) -> List[RmAction]:
        return [
            a
            for a in self.actions
            if a.event.state is QosState.OK and a is not self.actions[0]
        ]

    def format_log(self) -> str:
        return "\n".join(str(action) for action in self.actions) or "(no QoS events)"
