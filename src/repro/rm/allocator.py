"""Reallocation advice: place the application where the network can feed it.

DeSiDeRaTa reacts to QoS violations by reallocating application processes
to different hosts.  With network metrics available (the point of the
paper), the allocator can rank candidate hosts by the *measured available
bandwidth* of the communication path each placement would use, and skip
any placement whose path still crosses the diagnosed bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.bandwidth import BandwidthCalculator
from repro.core.report import PathReport
from repro.core.traversal import NoPathError, find_path
from repro.rm.diagnosis import BottleneckDiagnosis
from repro.topology.model import ConnectionSpec, DeviceKind, TopologySpec


@dataclass(frozen=True)
class PlacementAdvice:
    """One candidate placement, with its predicted path quality."""

    host: str
    report: PathReport  # measured state of the path this placement uses
    avoids_bottleneck: bool

    @property
    def available_bps(self) -> float:
        return self.report.available_bps


class ReallocationAdvisor:
    """Ranks alternative endpoint hosts for a violated path.

    The moving end is the *destination* by convention (DeSiDeRaTa moves
    the consumer process); ``advise`` keeps the source fixed and evaluates
    every other host as a new home for the destination application.
    """

    def __init__(self, spec: TopologySpec, calculator: BandwidthCalculator) -> None:
        self.spec = spec
        self.calculator = calculator

    def candidate_hosts(self, exclude: Sequence[str]) -> List[str]:
        excluded = set(exclude)
        return [
            node.name
            for node in self.spec.nodes
            if node.kind is DeviceKind.HOST and node.name not in excluded
        ]

    def advise(
        self,
        src: str,
        current_dst: str,
        diagnosis: Optional[BottleneckDiagnosis] = None,
        min_available_bps: float = 0.0,
        time: float = 0.0,
    ) -> List[PlacementAdvice]:
        """Ranked placements for the application currently on ``current_dst``.

        Best first: placements avoiding the bottleneck outrank those that
        do not; ties break on measured available bandwidth.  Placements
        below ``min_available_bps`` are dropped entirely.
        """
        bottleneck_conn: Optional[ConnectionSpec] = None
        if diagnosis is not None:
            bottleneck_conn = diagnosis.bottleneck.connection
        advice: List[PlacementAdvice] = []
        for host in self.candidate_hosts(exclude=[src, current_dst]):
            try:
                path = find_path(self.spec, src, host)
            except NoPathError:
                continue
            report = self.calculator.measure_path(
                path, src, host, time=time, name=f"advise:{src}->{host}"
            )
            if report.available_bps < min_available_bps:
                continue
            avoids = bottleneck_conn is None or all(
                conn is not bottleneck_conn
                and conn.endpoints() != bottleneck_conn.endpoints()
                for conn in path
            )
            advice.append(
                PlacementAdvice(host=host, report=report, avoids_bottleneck=avoids)
            )
        advice.sort(key=lambda a: (not a.avoids_bottleneck, -a.available_bps, a.host))
        return advice
