"""Learning Ethernet switch.

"A switch only forwards packets to the host for which they are destined,
not all the hosts connected to the switch" -- this is the property that
makes the paper's switch bandwidth rule (``u_i = t_i``) correct, and it is
modelled directly: unicast frames to a learned MAC go out exactly one
port, everything else floods.

The switch is store-and-forward with a non-blocking backplane: forwarding
adds a fixed (tiny) processing latency and output frames serialise on the
per-port links, but there is no shared internal bottleneck -- matching a
100 Mb/s switched segment where concurrent host pairs each get full rate.

Switches are SNMP-manageable: they expose all their port counters plus a
bridge forwarding table (used by the topology-discovery extension) through
an agent attached by :mod:`repro.snmp.agent`.  For that they carry a
management IP and run the same little UDP stack as hosts, with management
frames addressed to the switch's own MAC handled locally ("in-band
management").

With ``stp=True`` the switch additionally runs the deterministic
spanning-tree protocol from :mod:`repro.simnet.stp`: redundant uplinks
become legal (the blocked port drops data frames), BPDUs are consumed
here and never forwarded, and link failures re-converge onto backup
paths in bounded sim-time.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Optional, Tuple

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.engine import Simulator
from repro.simnet.nic import Interface
from repro.simnet.packet import DEFAULT_MTU, EthernetFrame
from repro.simnet.stp import STP_MULTICAST, SpanningTree

MAX_L2_HOPS = 32  # broadcast-storm guard; generous for any sane LAN
DEFAULT_MAC_AGING = 300.0  # seconds, as in common switch defaults
SWITCH_FORWARD_LATENCY = 10e-6  # store-and-forward processing time


class SwitchError(RuntimeError):
    """Raised for switch misconfiguration."""


class FdbEntry:
    """One learned MAC -> port binding (a bridge-MIB style FDB row)."""

    __slots__ = ("mac", "port", "learned_at")

    def __init__(self, mac: MacAddress, port: Interface, learned_at: float) -> None:
        self.mac = mac
        self.port = port
        self.learned_at = learned_at


class Switch:
    """A learning switch with ``n_ports`` equal-speed ports."""

    kind = "switch"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        n_ports: int,
        port_speed_bps: float = 100e6,
        mac_aging: float = DEFAULT_MAC_AGING,
        management_ip: Optional[IPv4Address] = None,
        management_mac: Optional[MacAddress] = None,
        stp: bool = False,
        stp_priority: int = 0x8000,
    ) -> None:
        if n_ports < 2:
            raise SwitchError(f"a switch needs at least 2 ports, got {n_ports}")
        self.sim = sim
        self.name = name
        self.mac_aging = mac_aging
        self.management_ip = management_ip
        self.management_mac = management_mac
        self.interfaces: List[Interface] = []
        self.network = None  # set by Network.add_switch
        self._fdb: Dict[MacAddress, FdbEntry] = {}
        # Bumped whenever the set of (mac, port) bindings changes; lets
        # the bridge-MIB provider cache its row list between changes.
        self.fdb_version = 0
        self._mgmt_handler = None  # installed by the management stack
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_dropped_hops = 0
        self.frames_dropped_blocked = 0
        self.frames_local = 0
        name_tag = zlib.crc32(name.encode()) & 0xFFFF
        for i in range(n_ports):
            self.interfaces.append(
                Interface(
                    device=self,
                    local_name=f"port{i + 1}",
                    # Port MACs are internal identifiers (never sources of
                    # transit frames); derived deterministically from the
                    # switch name so runs are reproducible.
                    mac=MacAddress(0x0200F0000000 | (name_tag << 8) | i),
                    ip=None,
                    speed_bps=port_speed_bps,
                    mtu=DEFAULT_MTU,
                    promiscuous=True,
                    if_index=i + 1,
                )
            )
        # Spanning tree runs after the ports exist (it observes them all).
        self.stp: Optional[SpanningTree] = (
            SpanningTree(self, priority=stp_priority) if stp else None
        )

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def port(self, index: int) -> Interface:
        """1-based port lookup (``port(3)`` is ``port3``)."""
        if not 1 <= index <= len(self.interfaces):
            raise SwitchError(f"{self.name} has no port {index}")
        return self.interfaces[index - 1]

    def interface(self, local_name: str) -> Interface:
        for iface in self.interfaces:
            if iface.local_name == local_name:
                return iface
        raise SwitchError(f"no interface {local_name!r} on switch {self.name}")

    def free_port(self) -> Interface:
        """First unconnected port, for incremental wiring."""
        for iface in self.interfaces:
            if iface.link is None:
                return iface
        raise SwitchError(f"switch {self.name} has no free ports")

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def on_frame(self, in_port: Interface, frame: EthernetFrame) -> None:
        # Bridge-group traffic is consumed here, never forwarded or
        # learned (IEEE 802.1D reserved address) -- even with STP off.
        if frame.dst == STP_MULTICAST:
            if self.stp is not None:
                self.stp.receive(in_port, frame)
            return
        # A blocking port drops all data frames, in both directions.
        if self.stp is not None and not self.stp.forwarding(in_port):
            self.frames_dropped_blocked += 1
            return
        self._learn(frame.src, in_port)
        # In-band management: frames addressed to the switch itself.
        if self.management_mac is not None and frame.dst == self.management_mac:
            self.frames_local += 1
            if self._mgmt_handler is not None:
                self._mgmt_handler(in_port, frame)
            return
        if frame.hops >= MAX_L2_HOPS:
            self.frames_dropped_hops += 1
            return
        out = self._lookup(frame.dst)
        forwarded = dataclasses.replace(frame, hops=frame.hops + 1)
        if (
            out is not None
            and frame.is_unicast
            and (self.stp is None or self.stp.forwarding(out))
        ):
            if out is in_port:
                return  # destination is back where it came from; filter
            self.frames_forwarded += 1
            self.sim.schedule(SWITCH_FORWARD_LATENCY, out.transmit, forwarded)
        else:
            self.frames_flooded += 1
            for port in self.interfaces:
                if port is in_port or port.link is None:
                    continue
                if self.stp is not None and not self.stp.forwarding(port):
                    continue
                self.sim.schedule(SWITCH_FORWARD_LATENCY, port.transmit, forwarded)
            # Broadcasts also reach the management plane.
            if frame.is_broadcast and self._mgmt_handler is not None:
                self._mgmt_handler(in_port, frame)

    def _learn(self, mac: MacAddress, port: Interface) -> None:
        if mac.is_broadcast or mac.is_multicast:
            return
        existing = self._fdb.get(mac)
        if existing is None or existing.port is not port:
            self.fdb_version += 1
        self._fdb[mac] = FdbEntry(mac, port, self.sim.now)

    def _lookup(self, mac: MacAddress) -> Optional[Interface]:
        entry = self._fdb.get(mac)
        if entry is None:
            return None
        if self.sim.now - entry.learned_at > self.mac_aging:
            del self._fdb[mac]
            self.fdb_version += 1
            return None
        return entry.port

    def flush_fdb(self) -> None:
        """Drop every learned binding (spanning-tree topology change)."""
        if self._fdb:
            self._fdb.clear()
            self.fdb_version += 1

    # ------------------------------------------------------------------
    # Management plane
    # ------------------------------------------------------------------
    def set_management_handler(self, handler) -> None:
        """Install the upward frame handler for the management stack."""
        self._mgmt_handler = handler

    def send_management_frame(self, out_hint: Optional[Interface], frame: EthernetFrame) -> bool:
        """Transmit a management-plane frame using the FDB.

        If the destination is unlearned the frame floods, exactly like
        transit traffic -- management responses are ordinary packets.
        """
        out = self._lookup(frame.dst)
        if (
            out is not None
            and frame.is_unicast
            and (self.stp is None or self.stp.forwarding(out))
        ):
            return out.transmit(frame)
        ok = False
        for port in self.interfaces:
            if port.link is None or port is out_hint:
                continue
            if self.stp is not None and not self.stp.forwarding(port):
                continue
            ok = port.transmit(frame) or ok
        return ok

    def fdb_entries(self) -> List[Tuple[MacAddress, int, float]]:
        """Live FDB as (mac, port ifIndex, age) -- the bridge-MIB view."""
        now = self.sim.now
        out = []
        for entry in self._fdb.values():
            age = now - entry.learned_at
            if age <= self.mac_aging:
                out.append((entry.mac, entry.port.if_index, age))
        out.sort(key=lambda row: row[0])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Switch {self.name} ports={len(self.interfaces)}>"
