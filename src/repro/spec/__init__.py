"""The DeSiDeRaTa specification-language extension for network resources.

The paper (and its companion PDCS 2001 paper, ref [12]) extends the
DeSiDeRaTa specification language so the resource manager can be told the
network topology instead of discovering it: "Utilizing the DeSiDeRaTa
specification language is a straightforward approach to obtain network
topology.  Pure network discovery is not feasible in the DeSiDeRaTa
environment because the resource management middleware has to know exactly
what resources are under its control."

This package implements that extension as a small declarative language::

    network topology lirtss {
        host L {
            os "Linux";
            snmp community "public";
            interface eth0 { speed 100 Mbps; }
        }
        switch SW { snmp community "public"; ports 8 speed 100 Mbps; }
        hub HUB { ports 4 speed 10 Mbps; }

        connect L.eth0 <-> SW.port1;
        connect SW.port2 <-> HUB.port1;

        qospath telemetry { from S1 to N1; min_available 200 KBps; }
    }

- :mod:`repro.spec.lexer`    -- tokenizer with line/column tracking.
- :mod:`repro.spec.parser`   -- recursive-descent parser producing a
  :class:`~repro.topology.model.TopologySpec`.
- :mod:`repro.spec.validate` -- semantic checks (1-to-1 connections,
  dangling references, loops, SNMP coverage).
- :mod:`repro.spec.builder`  -- instantiate a live simulated Network.
- :mod:`repro.spec.writer`   -- serialise a TopologySpec back to text.
"""

from repro.spec.builder import BuildResult, build_network
from repro.spec.lexer import LexError, tokenize
from repro.spec.parser import ParseError, parse_spec, parse_file
from repro.spec.validate import ValidationIssue, validate_spec
from repro.spec.writer import write_spec

__all__ = [
    "BuildResult",
    "LexError",
    "ParseError",
    "ValidationIssue",
    "build_network",
    "parse_file",
    "parse_spec",
    "tokenize",
    "validate_spec",
    "write_spec",
]
