"""Benchmarks for the future-work extensions (paper §5).

Quantifies what each extension costs and verifies its headline behaviour:

- all-pairs matrix computation over the Figure-3 testbed;
- SNMP topology discovery end to end;
- distributed monitoring vs the single monitor (same answer, spread load);
- the closed adaptation loop's reaction time.
"""

import pytest

from repro.core.distributed import DistributedMonitor
from repro.core.matrix import BandwidthMatrix
from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import TESTBED_SPEC_TEXT, build_testbed
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule


def test_bench_matrix_snapshot(benchmark):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    monitor.start()
    build.network.run(6.0)
    matrix = BandwidthMatrix(build.spec, monitor.calculator)
    snap = benchmark(matrix.snapshot, 6.0)
    assert len(snap.reports) == 36  # 9 choose 2
    assert snap.worst_pair() is not None


def test_bench_discovery_end_to_end(benchmark):
    from repro.core.discovery import TopologyDiscoverer
    from repro.simnet.network import BROADCAST_IP
    from repro.snmp.manager import SnmpManager

    def discover_once():
        build = build_testbed()
        net = build.network
        net.run(1.0)
        for host in net.hosts.values():
            host.create_socket().sendto(10, (BROADCAST_IP, 520))
        net.run(2.0)
        manager = SnmpManager(net.host("L"))
        candidates = [
            (n, net.ip_of(n)) for n in ("L", "S1", "S2", "N1", "N2", "switch")
        ]
        box = {}
        TopologyDiscoverer(manager, candidates).discover(
            lambda r: box.update(result=r)
        )
        net.run(60.0)
        return box["result"]

    result = benchmark.pedantic(discover_once, rounds=1, iterations=1)
    assert [n.name for n in result.nodes.values() if n.is_switch] == ["switch"]
    assert result.unknown_station_count() == 4


def test_bench_distributed_vs_single(benchmark):
    """Same measurements, SNMP load spread across three hosts."""

    def run_distributed():
        build = build_testbed()
        dm = DistributedMonitor(
            build, coordinator_host="L", worker_hosts=["L", "S1", "S2"],
            poll_jitter=0.0,
        )
        label = dm.watch_path("S1", "N1")
        StaircaseLoad(
            build.network.host("L"),
            build.network.ip_of("N1"),
            StepSchedule.pulse(5.0, 35.0, 300 * KBPS),
        ).start()
        dm.start()
        build.network.run(40.0)
        return dm, dm.history.series(label).used().max()

    dm, peak = benchmark.pedantic(run_distributed, rounds=1, iterations=1)
    assert peak == pytest.approx(300_000 * 1.019, rel=0.08)
    per_worker = dm.stats()["per_worker_requests"]
    counts = list(per_worker.values())
    assert max(counts) <= 2 * min(counts) + 10  # reasonably balanced


def test_bench_adaptation_reaction_time(benchmark):
    """Violation-to-recovery latency of the closed loop."""
    from repro.rm.applications import ApplicationRuntime
    from repro.rm.detector import QosState
    from repro.spec.builder import build_network
    from repro.spec.parser import parse_spec

    text = TESTBED_SPEC_TEXT.rstrip()[:-1] + """
        application sensor  { on S1; sends to tracker rate 2400 Kbps; }
        application tracker { on N1; }
    }
    """

    def run_loop():
        spec = parse_spec(text)
        build = build_network(spec)
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        runtime = ApplicationRuntime(build, monitor, auto_move=True)
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N2"), StepSchedule.pulse(20.0, 80.0, 800 * KBPS)
        ).start()
        monitor.start()
        runtime.start()
        net.run(100.0)
        return runtime

    runtime = benchmark.pedantic(run_loop, rounds=1, iterations=1)
    assert len(runtime.moves) == 1
    move = runtime.moves[0]
    violated_at = next(
        e.time for e in runtime.events if e.state is QosState.VIOLATED
    )
    recovered_at = next(
        e.time for e in runtime.events
        if e.state is QosState.OK and e.time > violated_at
    )
    reaction = recovered_at - violated_at
    print(f"\nviolation at {violated_at:.1f}s, moved at {move.time:.1f}s, "
          f"recovered at {recovered_at:.1f}s (reaction {reaction:.1f}s)")
    # Recovery within a few polling intervals of the violation.
    assert reaction <= 6.0
