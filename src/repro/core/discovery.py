"""Dynamic network topology discovery -- paper §5 future work.

The paper chose specification over discovery ("Pure network discovery is
not feasible in the DeSiDeRaTa environment because the resource management
middleware has to know exactly what resources are under its control") but
named "dynamic network topology discovery" as future work and suggested
"a hybrid approach may be a better solution".

This module implements that hybrid: SNMP-driven discovery whose result is
*cross-checked against the specification* rather than replacing it.

Method
------
1. Walk each known agent's system group and ifTable: host identities and
   their interface MACs (``ifPhysAddress``).
2. Walk each agent's bridge-MIB forwarding table (``dot1dTpFdbTable``);
   agents that answer are switches, and the rows give MAC -> port.
3. Attach: a switch port whose learned MACs are exactly one known host ->
   a direct host connection.  A port with several MACs -> a shared
   segment (hub or uplink) grouping those nodes.
4. Hosts with no agent appear only as anonymous MACs -- precisely the gap
   that makes pure discovery insufficient for resource management.

Everything runs as genuine SNMP traffic through a supplied manager, so
discovery load is visible to the bandwidth monitor like any other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.simnet.address import IPv4Address, MacAddress
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import (
    DOT1D_STP_PORT_STATE,
    DOT1D_TP_FDB_PORT,
    IF_PHYS_ADDRESS,
    SYS_NAME,
)
from repro.snmp.oid import Oid
from repro.topology.model import DeviceKind, TopologySpec


@dataclass
class DiscoveredNode:
    """One SNMP-visible node."""

    name: str
    address: IPv4Address
    macs: Set[MacAddress] = field(default_factory=set)
    is_switch: bool = False
    # switch only: port ifIndex -> MACs learned behind it
    fdb: Dict[int, Set[MacAddress]] = field(default_factory=dict)
    # switch only (with include_stp): port ifIndex -> RFC 1493
    # dot1dStpPortState (disabled 1 / blocking 2 / forwarding 5)
    stp_states: Dict[int, int] = field(default_factory=dict)


@dataclass
class Attachment:
    """A switch port and what discovery concluded sits behind it."""

    switch: str
    port: int
    known_nodes: List[str]
    unknown_macs: List[MacAddress]

    @property
    def shared_segment(self) -> bool:
        """More than one station behind the port: a hub or an uplink."""
        return len(self.known_nodes) + len(self.unknown_macs) > 1


@dataclass
class DiscoveryResult:
    nodes: Dict[str, DiscoveredNode]
    attachments: List[Attachment]
    # Candidates whose every walk failed (agent down / host partitioned).
    # Their absence from ``attachments`` means "no data", NOT "detached";
    # consumers must keep last-known state for them (topology_sync does).
    unreachable: Set[str] = field(default_factory=set)

    def attachment_of(self, node_name: str) -> Optional[Attachment]:
        for att in self.attachments:
            if node_name in att.known_nodes:
                return att
        return None

    def unknown_station_count(self) -> int:
        return sum(len(a.unknown_macs) for a in self.attachments)

    # ------------------------------------------------------------------
    # Cross-checking (the hybrid approach)
    # ------------------------------------------------------------------
    def verify_against(self, spec: TopologySpec) -> List[str]:
        """Discrepancies between the discovered picture and the spec.

        Returns human-readable findings; empty means every verifiable
        claim in the spec was confirmed.  SNMP-less hosts are reported as
        unverifiable, not as errors.
        """
        findings: List[str] = []
        for node in spec.hosts():
            if not node.snmp_enabled:
                findings.append(
                    f"unverifiable: host {node.name!r} runs no agent; it can "
                    "only appear as an anonymous MAC"
                )
                continue
            if node.name not in self.nodes:
                findings.append(f"missing: host {node.name!r} was not discovered")
                continue
            att = self.attachment_of(node.name)
            if att is None:
                findings.append(
                    f"mismatch: host {node.name!r} discovered but not attached to "
                    "any switch port"
                )
                continue
            declared = self._declared_attachment(spec, node.name)
            if declared is None:
                continue  # spec does not place this host behind a switch
            declared_switch, via_shared, hub_members = declared
            if att.switch != declared_switch:
                findings.append(
                    f"mismatch: {node.name!r} found behind {att.switch!r}, spec "
                    f"says {declared_switch!r}"
                )
            if via_shared:
                # Every discovered co-member of the declared hub must sit
                # behind the SAME switch port as this host.
                for member in hub_members:
                    member_att = self.attachment_of(member)
                    if member_att is None:
                        continue
                    if (member_att.switch, member_att.port) != (att.switch, att.port):
                        findings.append(
                            f"mismatch: spec places {node.name!r} and "
                            f"{member!r} on the same hub, but they appear on "
                            f"different switch ports ({att.port} vs "
                            f"{member_att.port})"
                        )
                if not att.shared_segment and not hub_members:
                    # A hub with a single live host is indistinguishable
                    # from a direct connection at the FDB level.
                    findings.append(
                        f"unverifiable: spec places {node.name!r} on a shared "
                        "segment (hub) but only one station is visible "
                        "behind its switch port; a one-host hub looks direct"
                    )
            if not via_shared and att.shared_segment:
                findings.append(
                    f"mismatch: {node.name!r} shares its switch port with other "
                    "stations but the spec declares a direct connection"
                )
        return findings

    @staticmethod
    def _declared_attachment(
        spec: TopologySpec, host_name: str
    ) -> Optional[Tuple[str, bool, List[str]]]:
        """(switch, via-hub?, other declared hub members) for a host."""
        for conn in spec.connections_of(host_name):
            peer = conn.other_end(host_name).node
            kind = spec.node(peer).kind
            if kind is DeviceKind.SWITCH:
                return peer, False, []
            if kind is DeviceKind.HUB:
                members = [
                    other.node
                    for leg in spec.connections_of(peer)
                    for other in [leg.other_end(peer)]
                    if other.node != host_name
                    and spec.node(other.node).kind is DeviceKind.HOST
                ]
                # Follow the hub's uplink to a switch.
                for uplink in spec.connections_of(peer):
                    far = uplink.other_end(peer).node
                    if spec.node(far).kind is DeviceKind.SWITCH:
                        return far, True, members
                return None
        return None


class TopologyDiscoverer:
    """Asynchronous SNMP discovery across a set of candidate agents."""

    def __init__(
        self,
        manager: SnmpManager,
        candidates: List[Tuple[str, IPv4Address]],
        community: str = "public",
        include_stp: bool = False,
        use_bulk: bool = False,
    ) -> None:
        """``include_stp`` adds a dot1dStpPortState walk per candidate so
        switch spanning-tree state rides along with the attachments.
        ``use_bulk`` walks with GETBULK (fewer, larger requests)."""
        self.manager = manager
        self.candidates = list(candidates)
        self.community = community
        self.include_stp = include_stp
        self.use_bulk = use_bulk
        self._nodes: Dict[str, DiscoveredNode] = {}
        self._pending = 0
        self._walks: Dict[str, int] = {}
        self._failures: Dict[str, int] = {}
        self._callback: Optional[Callable[[DiscoveryResult], None]] = None
        self.result: Optional[DiscoveryResult] = None

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def discover(self, callback: Callable[[DiscoveryResult], None]) -> None:
        if self._callback is not None:
            raise RuntimeError("discovery already running")
        self._callback = callback
        for name, address in self.candidates:
            node = DiscoveredNode(name=name, address=address)
            self._nodes[name] = node
            # Three walks per candidate: identity, MACs, FDB (plus the
            # optional spanning-tree port-state walk).
            self._begin(lambda vbs, n=node: self._on_sysname(n, vbs), node, SYS_NAME)
            self._begin(
                lambda vbs, n=node: self._on_phys_addresses(n, vbs),
                node,
                IF_PHYS_ADDRESS,
            )
            self._begin(
                lambda vbs, n=node: self._on_fdb(n, vbs), node, DOT1D_TP_FDB_PORT
            )
            if self.include_stp:
                self._begin(
                    lambda vbs, n=node: self._on_stp(n, vbs),
                    node,
                    DOT1D_STP_PORT_STATE,
                )

    def _begin(self, handler, node: DiscoveredNode, root: Oid) -> None:
        self._pending += 1
        key = node.name  # candidate name; sysName may rename the node later
        self._walks[key] = self._walks.get(key, 0) + 1

        def done(varbinds):
            handler(varbinds)
            self._complete()

        def failed(exc):
            self._failures[key] = self._failures.get(key, 0) + 1
            self._complete()

        self.manager.walk(node.address, root, done, failed, use_bulk=self.use_bulk)

    def _complete(self) -> None:
        self._pending -= 1
        if self._pending == 0:
            self.result = self._assemble()
            callback, self._callback = self._callback, None
            if callback is not None:
                callback(self.result)

    # ------------------------------------------------------------------
    # Walk handlers
    # ------------------------------------------------------------------
    def _on_sysname(self, node: DiscoveredNode, varbinds) -> None:
        for vb in varbinds:
            text = vb.value.value.decode(errors="replace")
            if text:
                node.name = text

    def _on_phys_addresses(self, node: DiscoveredNode, varbinds) -> None:
        for vb in varbinds:
            raw = vb.value.value
            if len(raw) == 6:
                node.macs.add(MacAddress(int.from_bytes(raw, "big")))

    def _on_fdb(self, node: DiscoveredNode, varbinds) -> None:
        if not varbinds:
            return
        node.is_switch = True
        for vb in varbinds:
            mac_arcs = vb.oid.strip_prefix(DOT1D_TP_FDB_PORT)
            if len(mac_arcs) != 6:
                continue
            mac = MacAddress(int.from_bytes(bytes(mac_arcs), "big"))
            port = int(vb.value.value)
            node.fdb.setdefault(port, set()).add(mac)

    def _on_stp(self, node: DiscoveredNode, varbinds) -> None:
        if not varbinds:
            return
        node.is_switch = True
        for vb in varbinds:
            arcs = vb.oid.strip_prefix(DOT1D_STP_PORT_STATE)
            if len(arcs) != 1:
                continue
            node.stp_states[int(arcs[0])] = int(vb.value.value)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _assemble(self) -> DiscoveryResult:
        unreachable = {
            name
            for name, walks in self._walks.items()
            if walks > 0 and self._failures.get(name, 0) >= walks
        }
        mac_owner: Dict[MacAddress, str] = {}
        for node in self._nodes.values():
            if not node.is_switch:
                for mac in node.macs:
                    mac_owner[mac] = node.name
        attachments: List[Attachment] = []
        for node in self._nodes.values():
            if not node.is_switch:
                continue
            for port, macs in sorted(node.fdb.items()):
                known = sorted({mac_owner[m] for m in macs if m in mac_owner})
                unknown = sorted(m for m in macs if m not in mac_owner)
                # Skip ports that only ever saw the switch's own mgmt MAC.
                if not known and not unknown:
                    continue
                attachments.append(
                    Attachment(
                        switch=node.name, port=port, known_nodes=known,
                        unknown_macs=unknown,
                    )
                )
        return DiscoveryResult(
            nodes=dict(self._nodes), attachments=attachments, unreachable=unreachable
        )
