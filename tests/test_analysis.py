"""Unit tests for the Table-2 statistics machinery."""

import numpy as np
import pytest

from repro.analysis.series import combined_stable_mask, percent_errors, stable_mask
from repro.analysis.stats import (
    StatsError,
    background_estimate,
    compute_table2,
)
from repro.simnet.trafficgen import StepSchedule


class TestStableMask:
    def test_excludes_straddling_samples(self):
        schedule = StepSchedule([(10.0, 100.0), (20.0, 0.0)])
        times = np.array([8.0, 10.5, 12.5, 19.5, 21.5, 25.0])
        mask = stable_mask(times, schedule, window=2.0)
        # 10.5 and 21.5 straddle breakpoints (sample covers [t-2, t]).
        assert mask.tolist() == [True, False, True, True, False, True]

    def test_guard_widens_exclusion(self):
        schedule = StepSchedule([(10.0, 100.0)])
        times = np.array([12.5, 13.5])
        assert stable_mask(times, schedule, window=2.0).tolist() == [True, True]
        assert stable_mask(times, schedule, window=2.0, guard=1.0).tolist() == [
            False,
            True,
        ]

    def test_combined_masks_all_schedules(self):
        s1 = StepSchedule([(10.0, 1.0)])
        s2 = StepSchedule([(20.0, 1.0)])
        times = np.array([11.0, 21.0, 30.0])
        mask = combined_stable_mask(times, [s1, s2], window=2.0)
        assert mask.tolist() == [False, False, True]


class TestPercentErrors:
    def test_basic(self):
        errs = percent_errors(np.array([110.0, 95.0]), np.array([100.0, 100.0]))
        np.testing.assert_allclose(errs, [10.0, 5.0])

    def test_zero_reference_gives_nan(self):
        errs = percent_errors(np.array([5.0]), np.array([0.0]))
        assert np.isnan(errs[0])


class TestBackground:
    def test_mean_of_zero_load_samples(self):
        measured = np.array([1.0, 2.0, 101.0, 102.0])
        generated = np.array([0.0, 0.0, 100.0, 100.0])
        assert background_estimate(measured, generated) == pytest.approx(1.5)

    def test_stable_mask_applied(self):
        measured = np.array([1.0, 50.0])
        generated = np.array([0.0, 0.0])
        stable = np.array([True, False])
        assert background_estimate(measured, generated, stable) == 1.0

    def test_no_zero_samples_raises(self):
        with pytest.raises(StatsError):
            background_estimate(np.array([1.0]), np.array([5.0]))


class TestTable2:
    def synthetic(self, bg=1.0, overhead=1.02, noise=0.0, seed=0):
        """A perfect staircase with known background and overhead."""
        rng = np.random.default_rng(seed)
        levels = [0.0] * 10 + [100.0] * 20 + [200.0] * 20 + [0.0] * 10
        generated = np.array(levels)
        measured = generated * overhead + bg + rng.normal(0, noise, len(levels))
        return measured, generated

    def test_recovers_known_overhead(self):
        measured, generated = self.synthetic(bg=1.0, overhead=1.02)
        stats = compute_table2(measured, generated)
        assert stats.background == pytest.approx(1.0)
        for level in stats.levels:
            assert level.pct_error == pytest.approx(2.0, abs=1e-6)
        assert stats.mean_pct_error == pytest.approx(2.0, abs=1e-6)

    def test_levels_enumerated_automatically(self):
        measured, generated = self.synthetic()
        stats = compute_table2(measured, generated)
        assert [lv.generated for lv in stats.levels] == [100.0, 200.0]

    def test_explicit_levels_respected(self):
        measured, generated = self.synthetic()
        stats = compute_table2(measured, generated, levels=[200.0])
        assert len(stats.levels) == 1

    def test_max_error_catches_spikes(self):
        measured, generated = self.synthetic()
        # Inject one spike at a 100-level sample.
        idx = 15
        measured[idx] = 100.0 * 1.25 + 1.0
        stats = compute_table2(measured, generated)
        level100 = stats.levels[0]
        assert level100.max_pct_error == pytest.approx(25.0, abs=0.01)
        assert stats.max_pct_error == pytest.approx(25.0, abs=0.01)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(StatsError):
            compute_table2(np.zeros(3), np.zeros(4))

    def test_insufficient_samples_rejected(self):
        measured = np.array([0.0, 101.0])
        generated = np.array([0.0, 100.0])
        with pytest.raises(StatsError):
            compute_table2(measured, generated)

    def test_format_table_renders(self):
        measured, generated = self.synthetic()
        text = compute_table2(measured, generated).format_table()
        assert "Generated" in text and "background" in text
        assert "100.0" in text

    def test_empty_levels_statistics_raise(self):
        from repro.analysis.stats import TrafficStatistics

        stats = TrafficStatistics(background=0.0, levels=[])
        with pytest.raises(StatsError):
            _ = stats.mean_pct_error
        with pytest.raises(StatsError):
            _ = stats.max_pct_error
