"""Unit tests for the repeating hub: the paper's shared-medium semantics."""

import pytest

from repro.simnet.network import Network
from repro.simnet.hub import HubError
from repro.simnet.sockets import DISCARD_PORT


def hub_net(n_hosts=3, speed=10e6):
    net = Network()
    hosts = [net.add_host(f"H{i}", speed_bps=100e6) for i in range(n_hosts)]
    hub = net.add_hub("hub", n_hosts + 1, speed_bps=speed)
    for host in hosts:
        net.connect(host, hub)
    net.announce_hosts()
    net.run(0.01)
    return net, hosts, hub


class TestRepeating:
    def test_frame_repeated_to_all_other_ports(self):
        net, (h0, h1, h2), hub = hub_net()
        h0.create_socket().sendto(972, (h1.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert h1.discard.datagrams == 1
        # h2's NIC saw the frame on the wire but filtered it by MAC.
        assert h2.interfaces[0].counters.in_filtered_pkts >= 1
        assert h2.discard.datagrams == 0

    def test_hosts_count_only_own_traffic(self):
        """The disjoint per-host t_j the paper's hub rule sums."""
        net, (h0, h1, h2), hub = hub_net()
        base1 = h1.interfaces[0].counters.in_octets
        base2 = h2.interfaces[0].counters.in_octets
        sock = h0.create_socket()
        for _ in range(10):
            sock.sendto(972, (h1.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert h1.interfaces[0].counters.in_octets - base1 == 10_000
        assert h2.interfaces[0].counters.in_octets - base2 == 0

    def test_link_speed_clamped_to_hub(self):
        net, hosts, hub = hub_net(speed=10e6)
        # Host NICs are 100 Mb/s but the segment runs at the hub's 10 Mb/s.
        for host in hosts:
            assert host.interfaces[0].link.bandwidth_bps == 10e6

    def test_shared_medium_serialises_streams(self):
        """Aggregate throughput cannot exceed the hub speed.

        Two hosts each offer ~8 Mb/s into a 10 Mb/s hub; the third host
        can receive at most ~10 Mb/s in total.
        """
        net, (h0, h1, h2), hub = hub_net(speed=10e6)
        from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

        rate = 1.0e6  # bytes/s = 8 Mb/s each
        for src in (h0, h1):
            StaircaseLoad(
                src, h2.primary_ip, StepSchedule([(0.0, rate), (10.0, 0.0)])
            ).start()
        net.run(12.0)
        received = h2.discard.octets
        assert received <= 10e6 / 8 * 10 * 1.05  # <= hub capacity x duration
        assert received >= 10e6 / 8 * 10 * 0.80  # but the medium stayed busy
        assert hub.frames_dropped > 0  # overload had to shed frames

    def test_hub_statistics(self):
        net, (h0, h1, h2), hub = hub_net()
        before = hub.frames_repeated
        h0.create_socket().sendto(100, (h1.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert hub.frames_repeated == before + 1


class TestPorts:
    def test_port_lookup(self):
        net, hosts, hub = hub_net()
        assert hub.port(1).local_name == "port1"
        with pytest.raises(HubError):
            hub.port(9)

    def test_free_port(self):
        net, hosts, hub = hub_net(n_hosts=2)
        assert hub.free_port().link is None

    def test_attached_ports(self):
        net, hosts, hub = hub_net(n_hosts=3)
        assert len(hub.attached_ports()) == 3

    def test_minimum_ports(self):
        net = Network()
        with pytest.raises(HubError):
            net.add_hub("tiny", 1)

    def test_bad_speed(self):
        net = Network()
        with pytest.raises(HubError):
            net.add_hub("h", 4, speed_bps=0)


class TestLoopGuard:
    def test_hub_loop_storm_terminates(self):
        """Two hubs wired in a ring: the hop guard must kill the storm."""
        net = Network()
        a = net.add_host("A")
        h1 = net.add_hub("h1", 4)
        h2 = net.add_hub("h2", 4)
        net.connect(a, h1)
        net.connect(h1, h2)
        net.connect(h1, h2)  # second cable closes the loop
        from repro.simnet.network import BROADCAST_IP

        a.create_socket().sendto(10, (BROADCAST_IP, 520))
        net.run(10.0)  # must return, not circulate forever
        assert h1.frames_dropped_hops + h2.frames_dropped_hops > 0
