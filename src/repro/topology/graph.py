"""Graph view of a :class:`~repro.topology.model.TopologySpec`.

Provides the adjacency structure the monitor's recursive path traversal
walks, connectivity/cycle queries used by spec validation, and a networkx
export for analysis and visualisation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.topology.model import ConnectionSpec, InterfaceRef, TopologyError, TopologySpec

# A connection's hashable identity: its endpoint pair (the 1-to-1 rule
# guarantees an interface appears in at most one connection).
ConnKey = Tuple[InterfaceRef, InterfaceRef]


class TopologyGraph:
    """Adjacency over nodes, with connections as edges.

    The *physical* adjacency is immutable for the graph's lifetime.  On
    top of it sits a mutable **active view**: the set of connections
    currently blocked by spanning tree (see :meth:`set_blocked`).  Path
    traversal walks the active view; redundancy queries walk the
    physical one.
    """

    def __init__(self, spec: TopologySpec) -> None:
        self.spec = spec
        self._adjacency: Dict[str, List[Tuple[ConnectionSpec, str]]] = {
            node.name: [] for node in spec.nodes
        }
        for conn in spec.connections:
            for end, other in ((conn.end_a, conn.end_b), (conn.end_b, conn.end_a)):
                if end.node not in self._adjacency:
                    raise TopologyError(f"connection {conn} references unknown node {end.node!r}")
                self._adjacency[end.node].append((conn, other.node))
        # Memoized traversal results (see repro.core.traversal.find_path).
        # The adjacency above is immutable, so paths stay valid until the
        # active view changes (set_blocked) or a caller declares the
        # topology changed via invalidate_paths().
        # None records a proven miss (disconnected pair).
        self._path_cache: Dict[Tuple[str, str], Optional[Tuple[ConnectionSpec, ...]]] = {}
        # Physical-redundancy memo (see repro.core.traversal.pair_redundant);
        # physical adjacency never changes, so this never invalidates.
        self._redundancy_cache: Dict[Tuple[str, str], bool] = {}
        self._blocked: set[ConnKey] = set()
        self.topology_epoch = 0

    # ------------------------------------------------------------------
    # Active view (spanning-tree blocked connections)
    # ------------------------------------------------------------------
    def set_blocked(self, conns) -> bool:
        """Replace the blocked-connection set with ``conns``.

        Returns True -- and flushes the path memos, bumping the topology
        epoch -- only when the set actually changed, so an unchanged
        spanning tree re-synced every round costs nothing downstream.
        """
        new = {conn.endpoints() for conn in conns}
        if new == self._blocked:
            return False
        self._blocked = new
        self.invalidate_paths()
        return True

    def is_blocked(self, conn: ConnectionSpec) -> bool:
        return conn.endpoints() in self._blocked

    def blocked_connections(self) -> List[ConnectionSpec]:
        return [c for c in self.spec.connections if c.endpoints() in self._blocked]

    def active_neighbors(self, node_name: str) -> List[Tuple[ConnectionSpec, str]]:
        """Like :meth:`neighbors`, minus spanning-tree blocked connections."""
        if not self._blocked:
            return self.neighbors(node_name)
        return [
            (conn, peer)
            for conn, peer in self.neighbors(node_name)
            if conn.endpoints() not in self._blocked
        ]

    # ------------------------------------------------------------------
    # Path memoization
    # ------------------------------------------------------------------
    def cached_path(
        self, src: str, dst: str
    ) -> Tuple[bool, Optional[Tuple[ConnectionSpec, ...]]]:
        """``(hit, path)``; path is None for a memoized disconnection."""
        try:
            return True, self._path_cache[(src, dst)]
        except KeyError:
            return False, None

    def store_path(
        self, src: str, dst: str, path: Optional[Tuple[ConnectionSpec, ...]]
    ) -> None:
        self._path_cache[(src, dst)] = path

    def invalidate_paths(self) -> None:
        """Topology changed: flush every memoized path, bump the epoch."""
        self._path_cache.clear()
        self.topology_epoch += 1

    def cached_redundancy(self, src: str, dst: str) -> Optional[bool]:
        return self._redundancy_cache.get((src, dst))

    def store_redundancy(self, src: str, dst: str, redundant: bool) -> None:
        self._redundancy_cache[(src, dst)] = redundant

    def neighbors(self, node_name: str) -> List[Tuple[ConnectionSpec, str]]:
        """Connections leaving ``node_name`` with the peer node name."""
        try:
            return list(self._adjacency[node_name])
        except KeyError:
            raise TopologyError(f"no node named {node_name!r}") from None

    def degree(self, node_name: str) -> int:
        return len(self.neighbors(node_name))

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def reachable_from(self, start: str) -> Set[str]:
        if start not in self._adjacency:
            raise TopologyError(f"no node named {start!r}")
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for _conn, peer in self._adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return seen

    def is_connected(self) -> bool:
        if not self._adjacency:
            return True
        first = next(iter(self._adjacency))
        return self.reachable_from(first) == set(self._adjacency)

    def has_cycle(self) -> bool:
        """True when the physical topology contains a layer-2 loop.

        Loops matter because neither the simulated devices nor the paper's
        testbed run spanning-tree; validation warns on them.
        """
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        for conn in self.spec.connections:
            ra, rb = find(conn.end_a.node), find(conn.end_b.node)
            if ra == rb:
                return True
            parent[ra] = rb
        return False

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.MultiGraph":
        """A MultiGraph (parallel links are legal between two devices)."""
        graph = nx.MultiGraph(name=self.spec.name)
        for node in self.spec.nodes:
            graph.add_node(
                node.name,
                kind=node.kind.value,
                snmp=node.snmp_enabled,
                os=node.os_label,
            )
        for conn in self.spec.connections:
            graph.add_edge(
                conn.end_a.node,
                conn.end_b.node,
                interface_a=conn.end_a.interface,
                interface_b=conn.end_b.interface,
                bandwidth_bps=self.spec.effective_bandwidth(conn),
            )
        return graph

    def shortest_hop_path(self, src: str, dst: str) -> Optional[List[str]]:
        """Node names along a minimum-hop path, or None if disconnected."""
        graph = self.to_networkx()
        try:
            return nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
