"""Time-series storage of path measurements.

The monitor appends every :class:`~repro.core.report.PathReport` here;
experiments pull NumPy arrays out to draw the paper's figures and compute
the Table-2 statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.report import PathReport


class PathSeries:
    """All reports for one watched path, in time order."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.reports: List[PathReport] = []

    def append(self, report: PathReport) -> None:
        if self.reports and report.time < self.reports[-1].time:
            raise ValueError(
                f"out-of-order report for {self.label}: "
                f"{report.time} after {self.reports[-1].time}"
            )
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    # ------------------------------------------------------------------
    # Array extraction
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        return np.array([r.time for r in self.reports], dtype=float)

    def used(self) -> np.ndarray:
        """Used bandwidth in bytes/second (Figures 4b, 5c-d, 6d-e)."""
        return np.array([r.used_bps for r in self.reports], dtype=float)

    def available(self) -> np.ndarray:
        return np.array([r.available_bps for r in self.reports], dtype=float)

    def series(
        self, extract: Callable[[PathReport], float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        times = self.times()
        values = np.array([extract(r) for r in self.reports], dtype=float)
        return times, values

    def between(self, t_start: float, t_end: float) -> "PathSeries":
        """The sub-series with t_start <= time < t_end."""
        out = PathSeries(self.label)
        out.reports = [r for r in self.reports if t_start <= r.time < t_end]
        return out

    def latest(self) -> Optional[PathReport]:
        return self.reports[-1] if self.reports else None


class MeasurementHistory:
    """Per-path series, keyed by the watch label."""

    def __init__(self) -> None:
        self._series: Dict[str, PathSeries] = {}

    def append(self, report: PathReport) -> None:
        series = self._series.get(report.label)
        if series is None:
            series = self._series[report.label] = PathSeries(report.label)
        series.append(report)

    def series(self, label: str) -> PathSeries:
        try:
            return self._series[label]
        except KeyError:
            raise KeyError(f"no measurements recorded for path {label!r}") from None

    def labels(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, label: str) -> bool:
        return label in self._series

    def __len__(self) -> int:
        return len(self._series)
