"""Shared fixtures for the benchmark harness.

The figure experiments are full-length simulated runs (the Fig-4 staircase
covers 480 simulated seconds); they execute once per session here and the
per-figure benchmark modules both time them and verify the paper's shapes
against the shared result.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig4, fig5, fig6, table2


@pytest.fixture(scope="session")
def fig4_result():
    return fig4.run(seed=0)


@pytest.fixture(scope="session")
def table2_result(fig4_result):
    return table2.compute(fig4_result)


@pytest.fixture(scope="session")
def fig5_result():
    return fig5.run(seed=0)


@pytest.fixture(scope="session")
def fig6_result():
    return fig6.run(seed=0)
