"""Benchmark of Figure 3: building the LIRTSS testbed from its spec.

Covers the whole declarative pipeline the paper describes -- parse the
specification language, validate it, instantiate devices/links, start the
SNMP agents -- and checks the resulting inventory matches Figure 3.
"""

from repro.experiments.testbed import TESTBED_SPEC_TEXT, build_testbed
from repro.spec.parser import parse_spec


def test_bench_fig3_build_testbed(benchmark):
    result = benchmark(build_testbed)
    net = result.network
    assert set(net.hosts) == {"L", "S1", "S2", "S3", "S4", "S5", "S6", "N1", "N2"}
    assert set(net.switches) == {"switch"}
    assert set(net.hubs) == {"hub"}
    assert len(net.links) == 10
    assert set(result.agents) == {"L", "S1", "S2", "N1", "N2", "switch"}
    # 100 Mb/s switch ports, 10 Mb/s hub.
    assert net.switches["switch"].interfaces[0].speed_bps == 100e6
    assert net.hubs["hub"].speed_bps == 10e6


def test_bench_fig3_parse_spec(benchmark):
    spec = benchmark(parse_spec, TESTBED_SPEC_TEXT)
    assert len(spec.nodes) == 11
    assert len(spec.connections) == 10
