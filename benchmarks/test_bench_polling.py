"""Ablation: polling interval vs accuracy and monitoring overhead.

The paper's dominant error source is octet displacement between polling
intervals; a shorter interval raises both the relative displacement error
and the SNMP overhead, while a longer one slows violation detection.
This bench sweeps the interval and prints the trade-off table the paper's
design decision (periodic polling at a fixed rate) implies.
"""

import pytest

from repro.analysis.series import stable_mask
from repro.analysis.stats import compute_table2
from repro.experiments.scenarios import Scenario
from repro.simnet.trafficgen import KBPS, StepSchedule

LOAD = StepSchedule([(20.0, 200 * KBPS), (140.0, 0.0)])
RUN_UNTIL = 170.0


def run_with_interval(interval: float, seed: int = 0):
    scenario = Scenario(poll_interval=interval, seed=seed)
    label = scenario.watch("S1", "N1")
    scenario.add_load("L", "N1", LOAD)
    scenario.run(RUN_UNTIL)
    pair = scenario.series_pair(label, ["N1"])
    stable = stable_mask(pair.times, LOAD, window=interval, guard=1.0)
    stats = compute_table2(pair.measured_kbps, pair.generated_kbps, stable=stable)
    overhead = scenario.monitor.manager.requests_sent / RUN_UNTIL
    return stats, overhead


@pytest.mark.parametrize("interval", [1.0, 2.0, 4.0, 8.0])
def test_bench_polling_interval_sweep(benchmark, interval):
    stats, overhead = benchmark.pedantic(
        run_with_interval, args=(interval,), rounds=1, iterations=1
    )
    print(
        f"\ninterval {interval:4.1f}s: mean %err {stats.mean_pct_error:5.2f}, "
        f"max %err {stats.max_pct_error:5.1f}, "
        f"SNMP reqs/s {overhead:5.2f}, background {stats.background:.2f} KB/s"
    )
    # Accuracy of the averages holds at every interval...
    assert stats.mean_pct_error < 6.0
    # ...and overhead scales inversely with the interval.
    assert overhead == pytest.approx(6.0 / interval, rel=0.15)


def test_bench_polling_displacement_shrinks_with_interval(benchmark):
    """Relative worst-case error decreases as the interval grows."""

    def compare():
        return {
            interval: run_with_interval(interval)[0].max_pct_error
            for interval in (1.0, 8.0)
        }

    max_errs = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nmax %err: 1s poll {max_errs[1.0]:.1f} vs 8s poll {max_errs[8.0]:.1f}")
    assert max_errs[8.0] < max_errs[1.0]
