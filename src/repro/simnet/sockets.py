"""UDP socket API over the simulator, plus the DISCARD service.

The paper's load generator "sends data streams to a designated host ...
as UDP packets to the DISCARD port (UDP port number 9)".  Hosts in the
simulator therefore expose a tiny event-driven socket layer: a socket is
bound to a port and receives datagrams through a callback.  The SNMP agent
(port 161) and manager are built on the same API, which is what makes the
monitor's own polling traffic traverse -- and load -- the simulated
network, as it did the paper's testbed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple, Union

from repro.simnet.address import IPv4Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.host import Host

ECHO_PORT = 7  # RFC 862
DISCARD_PORT = 9  # RFC 863
SNMP_PORT = 161

EPHEMERAL_PORT_BASE = 49152
EPHEMERAL_PORT_MAX = 65535

# (payload bytes or None, payload size, source ip, source port)
ReceiveCallback = Callable[[Optional[bytes], int, IPv4Address, int], None]


class SocketError(RuntimeError):
    """Raised for port collisions, closed-socket use, and exhaustion."""


class UDPSocket:
    """A bound UDP endpoint on one host.

    Obtained via :meth:`repro.simnet.host.Host.create_socket`; never
    constructed directly.  ``sendto`` accepts either real payload bytes or
    a synthetic byte count, mirroring :class:`repro.simnet.packet.UDPDatagram`.
    """

    def __init__(self, host: "Host", port: int) -> None:
        self._host = host
        self.port = port
        self.on_receive: Optional[ReceiveCallback] = None
        self.closed = False
        # IPv4 ToS octet stamped on every outgoing packet (setsockopt
        # IP_TOS equivalent).  DSCP values occupy the top six bits.
        self.tos = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.octets_sent = 0
        self.octets_received = 0

    def sendto(
        self,
        payload: Union[bytes, int],
        dst: Tuple[IPv4Address, int],
    ) -> bool:
        """Send a datagram.  Returns False if it was dropped at the NIC."""
        if self.closed:
            raise SocketError(f"socket :{self.port} on {self._host.name} is closed")
        dst_ip, dst_port = dst
        if isinstance(payload, bytes):
            data: Optional[bytes] = payload
            size = len(payload)
        else:
            data = None
            size = int(payload)
        ok = self._host.send_udp(
            src_port=self.port,
            dst_ip=dst_ip,
            dst_port=dst_port,
            payload=data,
            payload_size=size,
            tos=self.tos,
        )
        if ok:
            self.datagrams_sent += 1
            self.octets_sent += size
        return ok

    def _deliver(
        self, payload: Optional[bytes], size: int, src_ip: IPv4Address, src_port: int
    ) -> None:
        if self.closed:
            return
        self.datagrams_received += 1
        self.octets_received += size
        if self.on_receive is not None:
            self.on_receive(payload, size, src_ip, src_port)

    def close(self) -> None:
        """Release the port.  Idempotent."""
        if not self.closed:
            self.closed = True
            self._host._release_port(self.port)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return f"<UDPSocket {self._host.name}:{self.port} {state}>"


class EchoService:
    """RFC 862 ECHO: bounce every datagram back to its sender.

    The latency-measurement extension (paper §5 future work) probes path
    round-trip times by timestamping datagrams to this service.
    """

    def __init__(self, host: "Host", port: int = ECHO_PORT) -> None:
        self.socket = host.create_socket(port)
        self.socket.on_receive = self._on_receive
        self.echoed = 0

    def _on_receive(
        self, payload: Optional[bytes], size: int, src_ip: IPv4Address, src_port: int
    ) -> None:
        self.echoed += 1
        self.socket.sendto(payload if payload is not None else size, (src_ip, src_port))


class DiscardService:
    """RFC 863 DISCARD: swallow every datagram, keeping statistics.

    This is the sink the paper's load generator targets.  The byte and
    datagram totals let experiments assert exactly how much traffic
    actually arrived end-to-end.
    """

    def __init__(self, host: "Host", port: int = DISCARD_PORT) -> None:
        self.socket = host.create_socket(port)
        self.socket.on_receive = self._on_receive
        self.datagrams = 0
        self.octets = 0

    def _on_receive(
        self, payload: Optional[bytes], size: int, src_ip: IPv4Address, src_port: int
    ) -> None:
        self.datagrams += 1
        self.octets += size
