"""Tests for repro.probe: trains, stats, scheduling, cross-validation."""

import numpy as np
import pytest

from repro import NetworkMonitor, build_network, parse_spec
from repro.experiments.testbed import build_testbed
from repro.probe import (
    PROBE_TOS,
    ProbeError,
    ProbeTrain,
    dispersion_bps,
    interarrival_jitter,
    mean_abs_consecutive,
    sequence_loss,
)
from repro.simnet.faults import AgentOutage, SpeedMisreport
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule
from repro.telemetry.events import (
    PROBE_DISAGREEMENT,
    PROBE_RECOVERED,
    PROBE_TRAIN_COMPLETED,
)

# The spec for the unmetered-bottleneck scenarios: an agentless switch
# (sw2) hides a hub pocket from every SNMP counter, so cross-traffic
# between N2 and N1 is invisible to the passive plane.
HUBDEMO_SPEC = """
network topology hubdemo {
    host L  { snmp community "public"; }
    host S1 { snmp community "public"; }
    host N1 { interface el0 { speed 10 Mbps; } }
    host N2 { interface el0 { speed 10 Mbps; } }
    switch sw1 { snmp community "public"; ports 4; }
    switch sw2 { ports 4; }
    hub hb { ports 4; }
    connect L.eth0 <-> sw1.port1;
    connect S1.eth0 <-> sw1.port2;
    connect sw1.port3 <-> sw2.port1;
    connect sw2.port2 <-> hb.port1;
    connect N1.el0 <-> hb.port2;
    connect N2.el0 <-> hb.port3;
}
"""

HUB_BYTES = 1.25e6  # the 10 Mb/s hub pocket, in bytes/s


def probed_testbed(watches=(("S1", "N1"),), **options):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_interval=2.0)
    for src, dst in watches:
        monitor.watch_path(src, dst)
    prober = monitor.enable_probing(**options)
    return build, monitor, prober


def probed_hubdemo(**options):
    build = build_network(parse_spec(HUBDEMO_SPEC))
    monitor = NetworkMonitor(build, "L", poll_interval=2.0)
    monitor.watch_path("S1", "N1")
    prober = monitor.enable_probing(**options)
    return build, monitor, prober


# ----------------------------------------------------------------------
# Shared statistics helpers
# ----------------------------------------------------------------------
class TestStats:
    def test_jitter_zero_for_constant_transit(self):
        assert interarrival_jitter([0.01] * 10) == 0.0

    def test_jitter_rfc3550_recursion(self):
        # J += (|D| - J) / 16 with D the transit difference.
        transits = [0.010, 0.012, 0.010]
        j1 = 0.002 / 16.0
        j2 = j1 + (0.002 - j1) / 16.0
        assert interarrival_jitter(transits) == pytest.approx(j2)

    def test_jitter_needs_two_transits(self):
        assert interarrival_jitter([]) == 0.0
        assert interarrival_jitter([0.5]) == 0.0

    def test_mean_abs_consecutive(self):
        assert mean_abs_consecutive([1.0, 3.0, 2.0]) == pytest.approx(1.5)
        assert mean_abs_consecutive([4.2]) == 0.0

    def test_sequence_loss_counts_gaps(self):
        loss, gaps = sequence_loss(8, [0, 1, 3, 4, 5])
        assert loss == pytest.approx(3.0 / 8.0)
        assert gaps == 1  # seq 2 is missing *below* the highest received

    def test_sequence_loss_tail_is_not_a_gap(self):
        loss, gaps = sequence_loss(4, [0, 1])
        assert loss == pytest.approx(0.5)
        assert gaps == 0

    def test_sequence_loss_nothing_received(self):
        loss, gaps = sequence_loss(5, [])
        assert loss == 1.0 and gaps == 0

    def test_dispersion(self):
        assert dispersion_bps([0.0, 0.001, 0.002], 1500) == pytest.approx(1.5e6)
        assert np.isnan(dispersion_bps([0.1], 1500))
        assert np.isnan(dispersion_bps([0.1, 0.1], 1500))


# ----------------------------------------------------------------------
# Probe trains
# ----------------------------------------------------------------------
class TestProbeTrain:
    def test_idle_path_measures_bottleneck_capacity(self):
        build = build_testbed()
        net = build.network
        done = []
        train = ProbeTrain(
            net.host("S1"), net.host("N1"), on_complete=done.append
        )
        train.start()
        net.run(2.0)
        assert len(done) == 1
        report = done[0]
        assert report.complete and report.delivered
        assert report.loss_rate == 0.0 and report.gaps == 0
        assert report.achievable_bps == pytest.approx(HUB_BYTES, rel=0.05)
        assert report.duration_s > 0.0
        assert report.delay_mean_s > 0.0

    def test_early_completion_beats_timeout(self):
        build = build_testbed()
        net = build.network
        done = []
        ProbeTrain(
            net.host("S1"), net.host("N1"), timeout=30.0, on_complete=done.append
        ).start()
        net.run(1.0)  # far less than the timeout
        assert len(done) == 1 and done[0].complete

    def test_probe_traffic_separable_by_tos(self):
        build = build_testbed()
        net = build.network
        load = StaircaseLoad(
            net.host("S1"),
            net.host("N1").primary_ip,
            StepSchedule.pulse(0.0, 1.0, 300_000.0),
        )
        load.start()
        ProbeTrain(net.host("S1"), net.host("N1")).start()
        net.run(2.0)
        tos_out = net.host("S1").interfaces[0].tos_out_octets
        assert tos_out.get(PROBE_TOS, 0) > 0
        assert tos_out.get(0, 0) > 0
        # Workload dwarfs a single 24 KB train at these rates.
        assert tos_out[0] > tos_out[PROBE_TOS]

    def test_parameter_validation(self):
        build = build_testbed()
        a, b = build.network.host("S1"), build.network.host("N1")
        with pytest.raises(ProbeError):
            ProbeTrain(a, b, count=1)
        with pytest.raises(ProbeError):
            ProbeTrain(a, b, payload_size=8)
        with pytest.raises(ProbeError):
            ProbeTrain(a, b, count=4, warmup=3)
        with pytest.raises(ProbeError):
            ProbeTrain(a, b, timeout=0.0)


# ----------------------------------------------------------------------
# Scheduler: budget, fairness, lifecycle
# ----------------------------------------------------------------------
class TestScheduler:
    def test_round_interval_enforces_budget(self):
        _, _, prober = probed_testbed()
        # train_bytes / (budget * narrowest) for the 10 Mb/s hub leg.
        assert prober.train_bytes == 16 * 1500
        expected = prober.train_bytes / (0.02 * HUB_BYTES)
        prober_interval = prober.required_interval("S1<->N1")
        assert prober_interval == pytest.approx(expected)

    def test_probe_load_stays_within_budget(self):
        build, monitor, prober = probed_testbed()
        net = build.network
        monitor.start()
        net.run(40.0)
        probe_octets = net.host("S1").interfaces[0].tos_out_octets[PROBE_TOS]
        # Framing overhead (Ethernet headers) rides on top of the IP-level
        # budget arithmetic; allow it, but nothing more.
        assert probe_octets / 40.0 <= 0.02 * HUB_BYTES * 1.10

    def test_round_robin_is_fair(self):
        build, monitor, prober = probed_testbed(
            watches=(("S1", "N1"), ("S1", "N2"), ("L", "N1"))
        )
        monitor.start()
        build.network.run(40.0)
        counts = prober.stats()["trains_per_path"]
        assert len(counts) == 3
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_degraded_paths_get_priority(self):
        build, monitor, prober = probed_testbed(
            watches=(("S1", "N1"), ("S1", "S2"))
        )
        # N1's agent dies: S1<->N1 goes stale/degraded and should draw
        # probe rounds away from the healthy S1<->S2 path.
        AgentOutage(
            build.network.sim, build.agents["N1"], at=6.0, until=40.0,
            events=monitor.telemetry.events,
        )
        monitor.start()
        build.network.run(40.0)
        counts = prober.stats()["trains_per_path"]
        assert counts["S1<->N1"] > counts["S1<->S2"]

    def test_enable_probing_is_idempotent(self):
        _, monitor, prober = probed_testbed()
        assert monitor.enable_probing() is prober

    def test_start_requires_watches(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_interval=2.0)
        monitor.enable_probing()
        with pytest.raises(ProbeError):
            monitor.prober.start()

    def test_stats_expose_probe_counters(self):
        build, monitor, _ = probed_testbed()
        monitor.start()
        build.network.run(20.0)
        stats = monitor.stats()
        assert stats["probe_trains"] > 0
        assert stats["probe_packets_sent"] >= 16 * stats["probe_trains"] - 16
        assert stats["probe_bytes_sent"] > 0
        assert stats["probe_disagreements"] == 0
        bus = monitor.telemetry.events
        assert bus.count(PROBE_TRAIN_COMPLETED) == stats["probe_trains"]


# ----------------------------------------------------------------------
# Cross-validation
# ----------------------------------------------------------------------
class TestCrossValidation:
    def test_no_false_disagreements_under_metered_load(self):
        build, monitor, prober = probed_testbed()
        StaircaseLoad(
            build.network.host("L"),
            build.network.host("N1").primary_ip,
            StepSchedule.pulse(10.0, 30.0, 600_000.0),
        ).start()
        monitor.start()
        build.network.run(40.0)
        stats = prober.stats()
        assert stats["comparisons"] > 10
        assert stats["disagreements"] == 0
        assert monitor.stats()["probe_disagreements"] == 0
        report = monitor.current_report("S1<->N1")
        assert report.confidence == 1.0 and not report.degraded

    def test_unmetered_hub_bottleneck_is_localized(self):
        build, monitor, prober = probed_hubdemo()
        net = build.network
        # Cross-traffic entirely inside the agentless hub pocket.
        StaircaseLoad(
            net.host("N2"),
            net.host("N1").primary_ip,
            StepSchedule.pulse(8.0, 40.0, 1_000_000.0),
        ).start()
        monitor.start()
        net.run(40.0)
        findings = prober.findings()
        assert len(findings) == 1
        finding = findings[0]
        assert finding.cause == "unmetered_segment"
        assert "hb" in finding.blamed
        assert finding.direction == "below"
        assert finding.probe_bps < finding.passive_bps
        # The disputed path's reports carry the confidence cap.
        report = monitor.current_report("S1<->N1")
        assert report.confidence == pytest.approx(0.4)
        assert report.degraded

    def test_detection_within_three_probe_rounds(self):
        build, monitor, prober = probed_hubdemo()
        net = build.network
        load_start = 10.0
        StaircaseLoad(
            net.host("N2"),
            net.host("N1").primary_ip,
            StepSchedule.pulse(load_start, 60.0, 1_000_000.0),
        ).start()
        monitor.start()
        net.run(60.0)
        bus = monitor.telemetry.events
        first = next(iter(bus.events(PROBE_DISAGREEMENT)))
        # Debounce is breach_count=2 rounds; allow one round of slack for
        # the passive plane's own polling latency.
        assert first.time - load_start <= 3 * prober.round_interval + 2.0

    def test_speed_misreport_liar_is_quarantined(self):
        build, monitor, prober = probed_testbed(watches=(("S1", "S2"),))
        net = build.network
        # The liar: S1's NIC negotiated 10 Mb/s, its agent claims the
        # spec's 100 Mb/s.  Passive speed validation sees claimed == spec
        # and stays quiet; only the wire knows.
        iface = net.host("S1").interfaces[0]
        link = iface.link
        iface.speed_bps = 10e6
        for end in (link.end_a, link.end_b):
            link.channel_from(end).bandwidth_bps = 10e6
        link.bandwidth_bps = 10e6
        SpeedMisreport(
            net.sim, build.agents["S1"], if_index=1, claimed_bps=100_000_000,
            at=0.0, events=monitor.telemetry.events,
        )
        monitor.start()
        net.run(30.0)
        # Passive integrity alone never fires: the claim matches the spec.
        assert monitor.stats()["integrity_violations"] == 0
        causes = {
            e.attrs["cause"]
            for e in monitor.telemetry.events.events(PROBE_DISAGREEMENT)
        }
        assert "quarantine_candidate_agent" in causes
        assert monitor.integrity.is_quarantined("S1", 1)
        report = monitor.current_report("S1<->S2")
        assert report.confidence <= 0.4

    def test_recovery_lifts_confidence_cap(self):
        build, monitor, prober = probed_hubdemo()
        net = build.network
        StaircaseLoad(
            net.host("N2"),
            net.host("N1").primary_ip,
            StepSchedule.pulse(8.0, 22.0, 1_000_000.0),
        ).start()
        monitor.start()
        net.run(45.0)
        assert monitor.stats()["probe_recoveries"] >= 1
        assert monitor.telemetry.events.count(PROBE_RECOVERED) >= 1
        assert prober.findings() == []
        report = monitor.current_report("S1<->N1")
        assert report.confidence == 1.0

    def test_disagreement_reaches_stream_subscribers(self):
        from repro.stream import ProbeDisagreement

        build, monitor, prober = probed_hubdemo()
        net = build.network
        monitor.enable_streaming()
        subscription = monitor.stream.manager.subscribe(
            "ops", pairs=[("S1", "N1")]
        )
        StaircaseLoad(
            net.host("N2"),
            net.host("N1").primary_ip,
            StepSchedule.pulse(8.0, 40.0, 1_000_000.0),
        ).start()
        monitor.start()
        net.run(40.0)
        events = [
            e for e in subscription.drain() if isinstance(e, ProbeDisagreement)
        ]
        assert events
        event = events[0]
        assert event.cause == "unmetered_segment"
        assert event.pair == ("N1", "S1")
        assert "PROBE DISAGREES" in str(event)
