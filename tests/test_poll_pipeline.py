"""Pipelined poll scheduling, delta shipping, and measurement equivalence.

The refactored poll path must change the *cost* of measurement, never
the measurement itself: GetBulk batching, windowed scheduling and
wire-level delta shipping all have equivalence tests against the
naive per-varbind / JSON baselines here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deltas import (
    DeltaBatch,
    DeltaDecoder,
    DeltaEncoder,
    is_delta,
    parse_delta,
)
from repro.core.distributed import DistributedMonitor, SampleShipper
from repro.core.poller import InterfaceRates, PollTarget, RateTable, SnmpPoller
from repro.experiments.testbed import MONITOR_HOST, build_testbed
from repro.simnet.network import Network
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.snmp.agent import SnmpAgent
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import build_mib2


def switch_poller(mode, ports=8, window=0, interval=2.0, with_agent=True):
    """Manager host M polling a managed ``ports``-port switch, with two
    bystander hosts T and D whose traffic crosses ports 2 and 3 only."""
    net = Network()
    mgr = net.add_host("M")
    sw = net.add_switch("sw", ports, managed=True)
    t = net.add_host("T")
    d = net.add_host("D")
    net.connect(mgr, sw)
    net.connect(t, sw)
    net.connect(d, sw)
    net.announce_hosts()
    if with_agent:
        SnmpAgent(net.endpoint("sw"), build_mib2(net.device("sw"), net.sim))
    manager = SnmpManager(mgr, timeout=0.5, retries=1)
    target = PollTarget("sw", net.endpoint("sw").primary_ip, list(range(1, ports + 1)))
    poller = SnmpPoller(
        manager, [target], interval=interval, jitter=0.0,
        poll_mode=mode, pipeline_window=window,
    )
    return net, poller, manager, t, d


class TestPollModes:
    def test_invalid_mode_rejected(self):
        net, poller, mgr, *_ = switch_poller("get")
        with pytest.raises(ValueError):
            SnmpPoller(mgr, [], poll_mode="telepathy")

    def test_bulk_slashes_exchange_count(self):
        """The headline economy: >= 5x fewer exchanges than per-varbind."""
        counts = {}
        for mode in ("bulk", "per-varbind"):
            net, poller, manager, *_ = switch_poller(mode, ports=8)
            poller.start()
            net.run(10.0)  # 5 cycles
            counts[mode] = manager.requests_sent
        assert counts["bulk"] * 5 <= counts["per-varbind"]

    def test_modes_measure_identically(self):
        """Identical background traffic must yield identical rates on
        interfaces that do not carry the poll traffic itself.

        Ports 2/3 carry only T->D load; only port 1 sees the manager's
        (mode-dependent) footprint.  Arrival timestamps differ by the
        modes' round-trip structure, so `time` is excluded; everything
        the measurement pipeline derives must match bit for bit.
        """
        results = {}
        for mode in ("get", "bulk", "per-varbind"):
            net, poller, manager, t, d = switch_poller(mode, ports=4)
            StaircaseLoad(
                t, d.primary_ip, StepSchedule.pulse(3.0, 15.0, 48 * KBPS)
            ).start()
            poller.start()
            net.run(16.0)
            results[mode] = {
                (node, i): (
                    s.interval, s.in_bytes_per_s, s.out_bytes_per_s,
                    s.in_pkts_per_s, s.out_pkts_per_s,
                )
                for (node, i) in poller.rates.keys()
                for s in [poller.rates.latest(node, i)]
                if i in (2, 3)
            }
        assert results["get"] == results["bulk"] == results["per-varbind"]
        assert ("sw", 2) in results["get"]  # the comparison is not vacuous
        assert results["get"][("sw", 2)][1] > 0  # and saw the load

    def test_bulk_mode_produces_samples(self):
        net, poller, manager, t, d = switch_poller("bulk", ports=6)
        poller.start()
        net.run(6.0)
        assert poller.samples_produced > 0
        assert manager.requests_sent <= 4  # one exchange per cycle


class TestPipelineWindow:
    def test_window_bounds_in_flight(self):
        net, poller, *_ = switch_poller("get", ports=4, window=1)
        # Three more targets (the same switch, split) to create a queue.
        ip = poller.targets[0].address
        poller.targets[:] = [
            PollTarget("sw", ip, [1]), PollTarget("sw", ip, [2]),
            PollTarget("sw", ip, [3]), PollTarget("sw", ip, [4]),
        ]
        poller.start()
        net.run(4.0)
        assert poller.window_peak == 1
        assert poller.window_deferred > 0
        assert poller.samples_produced > 0

    def test_unwindowed_launches_everything(self):
        net, poller, *_ = switch_poller("get", ports=4, window=0)
        poller.start()
        net.run(4.0)
        assert poller.window_deferred == 0
        assert poller.window_overruns == 0

    def test_stale_backlog_counts_overruns(self):
        """A unit still queued when the next cycle starts is an overrun."""
        net, poller, manager, *_ = switch_poller(
            "get", ports=4, window=1, interval=1.0, with_agent=False
        )
        # No agent: every exchange times out (~1s with retry), so the
        # window never frees within a cycle and the backlog goes stale.
        ip = poller.targets[0].address
        poller.targets[:] = [
            PollTarget("sw", ip, [1]), PollTarget("sw", ip, [2]),
            PollTarget("sw", ip, [3]),
        ]
        poller.start()
        net.run(6.0)
        assert poller.window_overruns > 0


SAMPLE_FLOATS = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


@st.composite
def sample_batches(draw):
    keys = draw(
        st.lists(
            st.tuples(st.sampled_from(["sw1", "sw2", "h3"]),
                      st.integers(min_value=1, max_value=6)),
            min_size=1, max_size=6, unique=True,
        )
    )
    n_batches = draw(st.integers(min_value=1, max_value=6))
    batches = []
    for _ in range(n_batches):
        batch = []
        for node, if_index in draw(st.permutations(keys)):
            batch.append(
                InterfaceRates(
                    node, if_index,
                    time=draw(SAMPLE_FLOATS), interval=draw(SAMPLE_FLOATS),
                    in_bytes_per_s=draw(SAMPLE_FLOATS),
                    out_bytes_per_s=draw(SAMPLE_FLOATS),
                    in_pkts_per_s=draw(SAMPLE_FLOATS),
                    out_pkts_per_s=draw(SAMPLE_FLOATS),
                )
            )
        batches.append(batch)
    return batches


class TestDeltaCodec:
    @settings(max_examples=60, deadline=None)
    @given(batches=sample_batches(), kf_every=st.integers(min_value=0, max_value=3))
    def test_round_trip_is_bit_identical(self, batches, kf_every):
        """Whatever mix of FULL/CHANGED/ADVANCE records the encoder
        picks, the decoder must reproduce the exact input samples."""
        encoder = DeltaEncoder("w1")
        decoder = DeltaDecoder()
        for seq, samples in enumerate(batches, start=1):
            keyframe = kf_every > 0 and seq % kf_every == 0
            payload = encoder.encode(1, seq, samples, keyframe=keyframe)
            assert is_delta(payload)
            batch = parse_delta(payload)
            assert (batch.worker, batch.incarnation, batch.seq) == ("w1", 1, seq)
            assert decoder.apply(batch) == samples

    def test_quiescent_stream_shrinks(self):
        """Unchanged rates ship as ADVANCE records, far below the JSON
        baseline's per-sample cost."""
        samples = [
            InterfaceRates("sw1", i, 10.0, 2.0, 100.0, 50.0, 10.0, 5.0)
            for i in range(1, 9)
        ]
        sent = []
        shipper = SampleShipper(
            "w1", sent.append, max_batch=8, delta=True, keyframe_every=0
        )
        for cycle in range(10):
            for s in samples:
                shipper.enqueue(
                    InterfaceRates(
                        s.node, s.if_index, 10.0 + 2.0 * cycle, 2.0,
                        s.in_bytes_per_s, s.out_bytes_per_s,
                        s.in_pkts_per_s, s.out_pkts_per_s,
                    )
                )
            shipper.flush()
        assert shipper.traffic_reduction > 0.8

    def test_desync_drops_advance_until_keyframe(self):
        encoder = DeltaEncoder("w1")
        decoder = DeltaDecoder()
        mk = lambda t: [InterfaceRates("sw1", 1, t, 2.0, 1.0, 2.0, 3.0, 4.0)]
        decoder.apply(parse_delta(encoder.encode(1, 1, mk(1.0))))
        decoder.mark_desync()  # an unfillable gap was abandoned
        delivered = decoder.apply(parse_delta(encoder.encode(1, 2, mk(3.0))))
        assert delivered == []  # ADVANCE-only batch: context is suspect
        assert decoder.needs_keyframe
        encoder.force_keyframe()
        delivered = decoder.apply(parse_delta(encoder.encode(1, 3, mk(5.0))))
        assert delivered == mk(5.0)
        assert not decoder.needs_keyframe

    def test_fresh_decoder_skips_unknown_ids(self):
        """A restarted receiver cannot interpret CHANGED/ADVANCE records
        for ids it never saw; it must skip them and ask for a keyframe."""
        encoder = DeltaEncoder("w1")
        mk = lambda t: [InterfaceRates("sw1", 1, t, 2.0, 1.0, 2.0, 3.0, 4.0)]
        encoder.encode(1, 1, mk(1.0))  # lost before the restart
        late = DeltaDecoder()
        delivered = late.apply(parse_delta(encoder.encode(1, 2, mk(3.0))))
        assert delivered == []
        assert late.needs_keyframe
        assert late.samples_skipped > 0


class TestShippedEquivalence:
    def _run(self, delta):
        build = build_testbed()
        dm = DistributedMonitor(
            build, MONITOR_HOST, ["L", "S1", "S2"], poll_interval=2.0,
            delta_shipping=delta, max_batch=4,
        )
        # The watch and the compared counters live on the hub side,
        # which the workers' report shipping (whose byte count is
        # exactly what delta encoding changes) never crosses -- the
        # remaining keys must then match bit for bit.
        dm.watch_path("N1", "N2")
        StaircaseLoad(
            build.network.host("S1"), build.network.ip_of("N1"),
            StepSchedule.pulse(4.0, 20.0, 64 * KBPS),
        ).start()
        dm.start()
        build.network.run(24.0)
        table = {
            key: dm.rates.latest(*key)
            for key in dm.rates.keys()
            if key[0] in ("N1", "N2")
        }
        reports = [
            (r.time, r.bottleneck.used_bps, r.bottleneck.capacity_bps,
             r.confidence)
            for r in dm.history.series("N1<->N2").reports
        ]
        stats = dm.stats()
        stats["_bytes_shipped"] = sum(
            w.shipper.bytes_shipped for w in dm.workers.values()
        )
        stats["_bytes_baseline"] = sum(
            w.shipper.bytes_baseline for w in dm.workers.values()
        )
        dm.stop()
        return table, reports, stats

    def test_delta_shipping_is_bit_identical(self):
        """Same polls, same samples: the delta wire encoding must land
        the exact same rate table and path reports as legacy JSON."""
        t_json, r_json, s_json = self._run(delta=False)
        t_delta, r_delta, s_delta = self._run(delta=True)
        assert t_json == t_delta
        assert r_json == r_delta
        assert s_delta["samples_received"] == s_json["samples_received"]

    def test_delta_shipping_saves_traffic(self):
        _, _, stats = self._run(delta=True)
        assert stats["decode_errors"] == 0
        assert stats["_bytes_shipped"] < stats["_bytes_baseline"]
