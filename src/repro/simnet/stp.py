"""Deterministic spanning-tree protocol for the simulated switches.

Redundant uplinks turn the layer-2 topology into a graph with cycles;
without a spanning tree a single broadcast circulates until the hop
guard kills it.  This module gives :class:`~repro.simnet.switch.Switch`
a compact, deterministic RSTP-flavoured protocol:

- **Bridge election** by (priority, name): the lexicographically
  smallest bridge ID is the root.  Names are unique per network, so
  election is total and reproducible run to run.
- **Priority vectors** per port: each port remembers the best config
  BPDU heard on its segment; root-path candidates add the port cost
  (derived from port speed, 802.1D-style) and the lexicographic minimum
  wins.  Root / designated / alternate roles follow directly.
- **Blocking/forwarding states** with a short ``forward_delay``:
  every port starts blocking and is only promoted ``forward_delay``
  after its role settles, so transient loops during (re)convergence
  cannot happen.  Demotion is immediate.
- **Hello + max-age timers**: designated ports refresh their segment
  every ``hello`` seconds; a vector not refreshed within ``max_age``
  expires and triggers re-convergence, bounding failover time even when
  the failure is remote.  Local link-down is observed through the
  interface state observers and re-converges immediately.
- **Topology-change flooding with a hop budget**: a local role/state
  change flushes the FDB and propagates a TC flag for ``TC_HOPS``
  hops so stale MAC bindings elsewhere cannot blackhole unicast
  traffic through the old path.

BPDUs are real frames on the wire (multicast to the IEEE bridge-group
address, consumed and never forwarded), so running STP costs the
bandwidth the monitor then measures -- the same honesty rule the SNMP
substrate follows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.nic import Interface
from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram

# IEEE 802.1D bridge group address: multicast, link-constrained.
STP_MULTICAST = MacAddress(0x0180C2000000)

DEFAULT_HELLO = 1.0
MAX_AGE_HELLOS = 3  # vectors expire after this many missed hellos
DEFAULT_FORWARD_DELAY = 0.5
TC_HOPS = 8  # how far a topology-change notification floods
_NULL_IP = IPv4Address(0)

# Port roles.
ROLE_ROOT = "root"
ROLE_DESIGNATED = "designated"
ROLE_ALTERNATE = "alternate"
ROLE_DISABLED = "disabled"

# Port states (the data-plane view; roles explain *why*).
STATE_FORWARDING = "forwarding"
STATE_BLOCKING = "blocking"

# RFC 1493 dot1dStpPortState values.
PORT_STATE_OIDS = {
    ROLE_DISABLED: 1,
    STATE_BLOCKING: 2,
    STATE_FORWARDING: 5,
}


def port_cost(speed_bps: float) -> int:
    """802.1D-1998 style path cost: inversely proportional to speed."""
    if speed_bps <= 0:
        return 65535
    return max(1, int(2e9 / speed_bps))


class Bpdu:
    """One configuration BPDU (priority vector + topology-change hops)."""

    __slots__ = (
        "root_priority", "root", "root_cost",
        "bridge_priority", "bridge", "port", "tc_hops",
    )

    def __init__(
        self,
        root_priority: int,
        root: str,
        root_cost: int,
        bridge_priority: int,
        bridge: str,
        port: int,
        tc_hops: int = 0,
    ) -> None:
        self.root_priority = root_priority
        self.root = root
        self.root_cost = root_cost
        self.bridge_priority = bridge_priority
        self.bridge = bridge
        self.port = port
        self.tc_hops = tc_hops

    def vector(self) -> Tuple:
        """The comparable priority vector (lexicographic min is best)."""
        return (
            self.root_priority, self.root, self.root_cost,
            self.bridge_priority, self.bridge, self.port,
        )

    def encode(self) -> bytes:
        return "|".join(
            str(f) for f in (
                "BPDU", self.root_priority, self.root, self.root_cost,
                self.bridge_priority, self.bridge, self.port, self.tc_hops,
            )
        ).encode()

    @classmethod
    def decode(cls, data: bytes) -> Optional["Bpdu"]:
        try:
            parts = data.decode().split("|")
            if parts[0] != "BPDU" or len(parts) != 8:
                return None
            return cls(
                int(parts[1]), parts[2], int(parts[3]),
                int(parts[4]), parts[5], int(parts[6]), int(parts[7]),
            )
        except (UnicodeDecodeError, ValueError):
            return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Bpdu root={self.root} cost={self.root_cost} via {self.bridge}:{self.port}>"


class _PortInfo:
    """Spanning-tree state of one switch port."""

    __slots__ = ("role", "state", "bpdu", "received_at", "saw_bpdu", "promote_at")

    def __init__(self) -> None:
        self.role = ROLE_DESIGNATED
        self.state = STATE_BLOCKING
        self.bpdu: Optional[Bpdu] = None  # best config heard on the segment
        self.received_at = 0.0
        self.saw_bpdu = False  # ever? (edge-port detection)
        self.promote_at: Optional[float] = None


class SpanningTree:
    """The spanning-tree instance of one switch.

    The owning :class:`~repro.simnet.switch.Switch` consults
    :meth:`forwarding` on every data frame and hands received BPDUs to
    :meth:`receive`; everything else runs off the hello timer and the
    interface state observers.
    """

    def __init__(
        self,
        switch,
        priority: int = 0x8000,
        hello: float = DEFAULT_HELLO,
        forward_delay: float = DEFAULT_FORWARD_DELAY,
        max_age: Optional[float] = None,
    ) -> None:
        self.switch = switch
        self.sim = switch.sim
        self.priority = priority
        self.hello = hello
        self.forward_delay = forward_delay
        self.max_age = max_age if max_age is not None else MAX_AGE_HELLOS * hello
        self.bridge = switch.name
        self.root = switch.name
        self.root_priority = priority
        self.root_cost = 0
        self.root_port: Optional[Interface] = None
        self._ports: Dict[Interface, _PortInfo] = {
            iface: _PortInfo() for iface in switch.interfaces
        }
        # Edge detection: during the probe window every port sends BPDUs;
        # afterwards only ports that ever heard one keep participating,
        # so host-facing ports stop paying the hello tax.
        self._probe_until = self.sim.now + 2 * MAX_AGE_HELLOS * hello
        self._tc_hops = 0
        self._tc_until = 0.0
        self.bpdus_sent = 0
        self.bpdus_received = 0
        self.topology_changes = 0
        self.reconverge_count = 0
        for iface in switch.interfaces:
            iface.state_observers.append(self._on_port_state)
        self._hello_task = self.sim.call_every(hello, self._on_hello, start=self.sim.now)

    # ------------------------------------------------------------------
    # Data-plane queries
    # ------------------------------------------------------------------
    def forwarding(self, iface: Interface) -> bool:
        """May data frames enter/leave through this port right now?"""
        info = self._ports.get(iface)
        if info is None:
            return True
        return info.state == STATE_FORWARDING

    def role_of(self, iface: Interface) -> str:
        if not iface.admin_up or iface.link is None:
            return ROLE_DISABLED
        return self._ports[iface].role

    def port_table(self) -> List[Tuple[int, str, str]]:
        """Per-port (ifIndex, role, state), the operator/MIB view."""
        rows = []
        for iface in self.switch.interfaces:
            info = self._ports[iface]
            role = self.role_of(iface)
            state = ROLE_DISABLED if role == ROLE_DISABLED else info.state
            rows.append((iface.if_index, role, state))
        return rows

    def port_state_value(self, if_index: int) -> int:
        """RFC 1493 dot1dStpPortState integer for one port."""
        iface = self.switch.port(if_index)
        if self.role_of(iface) == ROLE_DISABLED:
            return PORT_STATE_OIDS[ROLE_DISABLED]
        return PORT_STATE_OIDS[self._ports[iface].state]

    @property
    def is_root(self) -> bool:
        return self.root == self.bridge

    # ------------------------------------------------------------------
    # BPDU receive / transmit
    # ------------------------------------------------------------------
    def receive(self, in_port: Interface, frame: EthernetFrame) -> None:
        datagram = frame.payload.payload
        if datagram is None or not isinstance(datagram.payload, bytes):
            return
        bpdu = Bpdu.decode(datagram.payload)
        if bpdu is None:
            return
        self.bpdus_received += 1
        info = self._ports[in_port]
        info.saw_bpdu = True
        stored = info.bpdu
        # Keep the best (or refreshed-same-sender) config for the segment.
        if (
            stored is None
            or bpdu.vector() <= stored.vector()
            or (bpdu.bridge == stored.bridge and bpdu.port == stored.port)
        ):
            info.bpdu = bpdu
            info.received_at = self.sim.now
        if bpdu.tc_hops > 0:
            self._flush_fdb()
            self._propagate_tc(bpdu.tc_hops - 1)
        self._reconverge()

    def _send_bpdu(self, iface: Interface, info: _PortInfo) -> None:
        bpdu = Bpdu(
            self.root_priority, self.root, self.root_cost,
            self.priority, self.bridge, iface.if_index,
            tc_hops=self._tc_hops if self.sim.now < self._tc_until else 0,
        )
        frame = EthernetFrame(
            src=iface.mac,
            dst=STP_MULTICAST,
            payload=IPPacket(
                src=_NULL_IP, dst=_NULL_IP,
                payload=UDPDatagram(0, 0, payload=bpdu.encode()),
            ),
        )
        self.bpdus_sent += 1
        iface.transmit(frame)

    def _send_bpdus(self) -> None:
        """Originate config BPDUs on every port that owes its segment one."""
        now = self.sim.now
        for iface, info in self._ports.items():
            if not iface.admin_up or iface.link is None:
                continue
            # Designated ports own their segment; during the probe window
            # every port advertises so peers discover each other.
            if info.role == ROLE_DESIGNATED or now < self._probe_until:
                self._send_bpdu(iface, info)

    # ------------------------------------------------------------------
    # Timers and link events
    # ------------------------------------------------------------------
    def _on_hello(self) -> None:
        now = self.sim.now
        aged = False
        for iface, info in self._ports.items():
            if info.bpdu is not None and now - info.received_at > self.max_age:
                info.bpdu = None  # the designated bridge went silent
                aged = True
        if aged:
            self._reconverge()
        for iface, info in self._ports.items():
            if info.promote_at is not None and now >= info.promote_at:
                self._promote(iface, info)
        self._send_bpdus()

    def _on_port_state(self, iface: Interface, up: bool) -> None:
        info = self._ports.get(iface)
        if info is None:
            return
        if not up:
            info.bpdu = None
            info.promote_at = None
            if info.state == STATE_FORWARDING:
                info.state = STATE_BLOCKING
                self._note_topology_change()
        self._reconverge()

    def _promote(self, iface: Interface, info: _PortInfo) -> None:
        info.promote_at = None
        if info.role in (ROLE_ROOT, ROLE_DESIGNATED) and iface.admin_up and iface.link is not None:
            if info.state != STATE_FORWARDING:
                info.state = STATE_FORWARDING
                self._note_topology_change()

    # ------------------------------------------------------------------
    # Role computation
    # ------------------------------------------------------------------
    def _reconverge(self) -> None:
        """Recompute root, roles and states from current port vectors."""
        self.reconverge_count += 1
        now = self.sim.now
        my_vector = (self.priority, self.bridge, 0, self.priority, self.bridge, 0)
        best = my_vector
        best_port: Optional[Interface] = None
        for iface, info in self._ports.items():
            if not iface.admin_up or iface.link is None or info.bpdu is None:
                continue
            bpdu = info.bpdu
            if bpdu.bridge == self.bridge:
                continue  # own echo (self-looped segment): never a root path
            candidate = (
                bpdu.root_priority, bpdu.root,
                bpdu.root_cost + port_cost(iface.speed_bps),
                bpdu.bridge_priority, bpdu.bridge, bpdu.port,
            )
            # Port index tie-breaks parallel equal-cost uplinks.
            if (candidate, iface.if_index) < (best, best_port.if_index if best_port else 0):
                best = candidate
                best_port = iface
        old = (self.root, self.root_cost, self.root_port)
        if best_port is None:
            self.root = self.bridge
            self.root_priority = self.priority
            self.root_cost = 0
            self.root_port = None
        else:
            self.root_priority, self.root = best[0], best[1]
            self.root_cost = best[2]
            self.root_port = best_port

        changed_info = old != (self.root, self.root_cost, self.root_port)
        for iface, info in self._ports.items():
            if not iface.admin_up or iface.link is None:
                info.role = ROLE_DISABLED
                info.state = STATE_BLOCKING
                info.promote_at = None
                continue
            if iface is self.root_port:
                role = ROLE_ROOT
            elif info.bpdu is None:
                role = ROLE_DESIGNATED  # silent segment: we own it
            else:
                mine = (
                    self.root_priority, self.root, self.root_cost,
                    self.priority, self.bridge, iface.if_index,
                )
                role = (
                    ROLE_DESIGNATED
                    if mine < info.bpdu.vector()
                    else ROLE_ALTERNATE
                )
            if role != info.role:
                info.role = role
                changed_info = True
            if role in (ROLE_ROOT, ROLE_DESIGNATED):
                if info.state != STATE_FORWARDING and info.promote_at is None:
                    info.promote_at = now + self.forward_delay
                    self.sim.schedule(
                        self.forward_delay, self._maybe_promote, iface
                    )
            else:
                info.promote_at = None
                if info.state == STATE_FORWARDING:
                    info.state = STATE_BLOCKING
                    self._note_topology_change()
        if changed_info:
            self._send_bpdus()

    def _maybe_promote(self, iface: Interface) -> None:
        info = self._ports.get(iface)
        if info is None or info.promote_at is None:
            return
        if self.sim.now >= info.promote_at:
            self._promote(iface, info)

    # ------------------------------------------------------------------
    # Topology change handling
    # ------------------------------------------------------------------
    def _note_topology_change(self) -> None:
        self.topology_changes += 1
        self._flush_fdb()
        self._propagate_tc(TC_HOPS)

    def _propagate_tc(self, hops: int) -> None:
        if hops <= 0:
            return
        now = self.sim.now
        if hops > self._tc_hops or now >= self._tc_until:
            self._tc_hops = hops
            self._tc_until = now + 2 * self.hello
            self._send_bpdus()

    def _flush_fdb(self) -> None:
        self.switch.flush_fdb()

    def stats(self) -> Dict[str, int]:
        return {
            "bpdus_sent": self.bpdus_sent,
            "bpdus_received": self.bpdus_received,
            "topology_changes": self.topology_changes,
            "blocked_ports": sum(
                1 for _, _, state in self.port_table() if state == STATE_BLOCKING
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpanningTree {self.bridge} root={self.root} "
            f"cost={self.root_cost}>"
        )
