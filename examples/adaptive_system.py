#!/usr/bin/env python3
"""The full DeSiDeRaTa loop: specify, deploy, monitor, adapt.

This is the system the paper's monitor exists to serve, end to end:

1. the specification declares hardware (the Figure-3 LAN) **and**
   software: a *sensor* application on S1 streaming 2400 Kb/s of
   telemetry to a *tracker* application placed on N1, behind the 10 Mb/s
   hub;
2. the application runtime deploys the flow as real traffic and derives
   its QoS requirement from the declared rate;
3. at t=20 s a competing transfer saturates the shared hub -- the
   telemetry's available bandwidth collapses;
4. the monitor's reports trip the violation detector; the diagnosis
   blames the hub; the advisor finds a switch-connected host; and the
   runtime **executes the move**: the tracker is relocated, the stream
   re-targets, and QoS recovers within a polling interval or two.

Run:  python examples/adaptive_system.py
"""

from repro import NetworkMonitor
from repro.experiments.testbed import TESTBED_SPEC_TEXT
from repro.rm.applications import ApplicationRuntime
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec

SPEC_WITH_APPS = TESTBED_SPEC_TEXT.rstrip()[:-1] + """
    # The real-time system under management: a sensor feed.
    application sensor  { on S1; sends to tracker rate 2400 Kbps; }
    application tracker { on N1; }
}
"""


def main() -> None:
    spec = parse_spec(SPEC_WITH_APPS)
    build = build_network(spec)
    net = build.network
    monitor = NetworkMonitor(build, "L")
    runtime = ApplicationRuntime(build, monitor, auto_move=True)

    # The disturbance: a bulk transfer into the hub from t=20 s.
    StaircaseLoad(
        net.host("L"), net.ip_of("N2"), StepSchedule.pulse(20.0, 80.0, 800 * KBPS)
    ).start()

    print("sensor(S1) --2400 Kb/s--> tracker(N1, behind the 10 Mb/s hub)")
    print("t=20s: 800 KB/s of bulk traffic floods the hub\n")
    monitor.start()
    runtime.start()
    net.run(100.0)

    print("=== adaptation log ===")
    print(runtime.format_log())
    print()

    label = "sensor->tracker"
    series = monitor.history.series(label)
    print(f"tracker finally placed on: {runtime.placement_of('tracker')}")
    print(f"flow state: {runtime.state_of(label).value}")
    print(f"available bandwidth at the end: "
          f"{series.latest().available_bps / 1000:.0f} KB/s "
          f"(needed {runtime._flows[label].requirement.min_available_bps / 1000:.0f})")

    received = net.host(runtime.placement_of("tracker")).discard.octets
    print(f"telemetry delivered to the new placement: {received / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
