"""Link-state tracking from SNMP notifications.

Polling tells the monitor a link's *throughput*; traps tell it the link is
*gone*, interval-boundary fast.  :class:`LinkStateRegistry` maps incoming
linkDown/linkUp events -- identified by (agent address, ifIndex) -- onto
spec connections, and the bandwidth calculator consults it so that a
downed connection reports zero available bandwidth instead of looking
idle-and-healthy.

A linkDown trap may itself be lost (it often travels the very link that
died); the registry therefore also accepts poll-timeout hints, and the RM
middleware treats "no data" conservatively.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Tuple

from repro.core.counters import if_index_of
from repro.core.dataflow import EpochClock
from repro.simnet.address import IPv4Address
from repro.snmp.trap import TrapEvent
from repro.topology.model import ConnectionSpec, InterfaceRef, TopologySpec

logger = logging.getLogger("repro.monitor")


class LinkStateRegistry:
    """Tracks which spec connections are operationally down."""

    def __init__(self, spec: TopologySpec, address_of: Dict[str, IPv4Address]) -> None:
        """``address_of`` maps SNMP node names to their agent addresses."""
        self.spec = spec
        self._node_by_address: Dict[IPv4Address, str] = {
            addr: node for node, addr in address_of.items()
        }
        # (node, ifIndex) -> connection touching that exact interface.
        self._conn_by_interface: Dict[Tuple[str, int], ConnectionSpec] = {}
        for conn in spec.connections:
            for end in conn.endpoints():
                node = spec.node(end.node)
                self._conn_by_interface[(end.node, if_index_of(node, end.interface))] = conn
        self._down: set = set()
        # Epochs bump only on actual up<->down flips, never on redundant
        # notifications, so downstream caches stay warm through trap spam.
        self._epochs = EpochClock()
        # Newest notification uptime seen per (reporting node, connection):
        # a retransmitted (inform) linkDown that arrives *after* the
        # linkUp it predates must not re-mark the connection down.  Keyed
        # per reporting node because an inter-switch uplink is observed
        # from both ends, and the two agents' sysUpTime clocks are not
        # comparable -- one end's high uptime must never suppress the
        # other end's genuinely-new notification.
        self._last_uptime: Dict[Tuple, int] = {}
        self.events_applied = 0
        self.events_unmapped = 0
        self.events_stale = 0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def apply_trap(self, event: TrapEvent) -> Optional[ConnectionSpec]:
        """Digest a link trap; returns the affected connection, if mapped."""
        if not (event.is_link_down or event.is_link_up):
            return None
        node = self._node_by_address.get(event.source_ip)
        if_index = event.if_index()
        if node is None or if_index is None:
            self.events_unmapped += 1
            return None
        conn = self._conn_by_interface.get((node, if_index))
        if conn is None:
            self.events_unmapped += 1
            return None
        key = conn.endpoints()
        uptime_key = (node, key)
        previous = self._last_uptime.get(uptime_key)
        if previous is not None and event.uptime.value <= previous:
            self.events_stale += 1
            logger.info(
                "ignoring stale link notification for %s (uptime %d <= %d)",
                conn, event.uptime.value, previous,
            )
            return None
        self._last_uptime[uptime_key] = event.uptime.value
        self.events_applied += 1
        if event.is_link_down:
            if key not in self._down:
                self._down.add(key)
                self._epochs.bump(key)
            logger.warning(
                "linkDown: connection %s is operationally down (trap from %s)",
                conn, event.source_ip,
            )
        else:
            if key in self._down:
                self._down.discard(key)
                self._epochs.bump(key)
            logger.info("linkUp: connection %s recovered", conn)
        return conn

    def apply_oper_status(self, node: str, if_index: int, up: bool) -> None:
        """Poll-based backstop: fold an ifOperStatus reading in.

        Traps can be lost (often over the very link that died); the
        poller's next cycle reads the status column and lands here.
        """
        conn = self._conn_by_interface.get((node, if_index))
        if conn is None:
            self.events_unmapped += 1
            return
        key = conn.endpoints()
        if up:
            if key in self._down:
                logger.info("ifOperStatus: connection %s recovered", conn)
                self._down.discard(key)
                self._epochs.bump(key)
        else:
            if key not in self._down:
                logger.warning(
                    "ifOperStatus: connection %s is operationally down "
                    "(observed at %s ifIndex %d)", conn, node, if_index,
                )
                self._down.add(key)
                self._epochs.bump(key)

    def mark_down(self, conn: ConnectionSpec) -> None:
        key = conn.endpoints()
        if key not in self._down:
            self._down.add(key)
            self._epochs.bump(key)

    def mark_up(self, conn: ConnectionSpec) -> None:
        key = conn.endpoints()
        if key in self._down:
            self._down.discard(key)
            self._epochs.bump(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Global link-state clock: increases on every up<->down flip."""
        return self._epochs.clock

    def epoch_of(self, conn: ConnectionSpec) -> int:
        """Flip epoch of one connection (0: never flipped)."""
        return self._epochs.epoch(conn.endpoints())

    def is_down(self, conn: ConnectionSpec) -> bool:
        return conn.endpoints() in self._down

    def down_connections(self) -> List[ConnectionSpec]:
        return [c for c in self.spec.connections if self.is_down(c)]

    def __len__(self) -> int:
        return len(self._down)
