"""Unit tests for the OID value type."""

import pytest

from repro.snmp.oid import Oid, OidError


class TestConstruction:
    def test_from_string(self):
        assert Oid("1.3.6.1").arcs == (1, 3, 6, 1)

    def test_leading_dot_tolerated(self):
        assert Oid(".1.3.6") == Oid("1.3.6")

    def test_from_iterable(self):
        assert Oid([1, 3, 6]).arcs == (1, 3, 6)
        assert Oid((1, 3)) == Oid("1.3")

    def test_copy(self):
        oid = Oid("1.2.3")
        assert Oid(oid) == oid

    @pytest.mark.parametrize("bad", ["", ".", "1..2", "1.x.2"])
    def test_malformed_strings(self, bad):
        with pytest.raises(OidError):
            Oid(bad)

    def test_negative_arc_rejected(self):
        with pytest.raises(OidError):
            Oid([1, -2])

    def test_empty_iterable_rejected(self):
        with pytest.raises(OidError):
            Oid([])


class TestOrdering:
    def test_lexicographic(self):
        assert Oid("1.3.6.1.2") < Oid("1.3.6.1.3")

    def test_prefix_sorts_before_extension(self):
        """GETNEXT semantics depend on this: parent < parent.child."""
        assert Oid("1.3.6") < Oid("1.3.6.0")

    def test_sorted_table_column_order(self):
        """ifInOctets.1 < ifInOctets.2 < ifOutOctets.1 (column-major)."""
        in1 = Oid("1.3.6.1.2.1.2.2.1.10.1")
        in2 = Oid("1.3.6.1.2.1.2.2.1.10.2")
        out1 = Oid("1.3.6.1.2.1.2.2.1.16.1")
        assert sorted([out1, in2, in1]) == [in1, in2, out1]

    def test_hash_equality(self):
        assert len({Oid("1.2.3"), Oid([1, 2, 3])}) == 1


class TestStructure:
    def test_str_roundtrip(self):
        text = "1.3.6.1.2.1.1.3.0"
        assert str(Oid(text)) == text

    def test_concatenation(self):
        assert Oid("1.3") + "6.1" == Oid("1.3.6.1")
        assert Oid("1.3").extend(6, 1) == Oid("1.3.6.1")

    def test_startswith(self):
        oid = Oid("1.3.6.1.2.1.2.2.1.10.3")
        assert oid.startswith("1.3.6.1.2.1.2")
        assert oid.startswith(oid)
        assert not oid.startswith("1.3.6.1.4")

    def test_strip_prefix(self):
        oid = Oid("1.3.6.1.2.1.2.2.1.10.3")
        assert oid.strip_prefix("1.3.6.1.2.1.2.2.1.10") == (3,)
        with pytest.raises(OidError):
            oid.strip_prefix("9.9")

    def test_parent(self):
        assert Oid("1.3.6").parent == Oid("1.3")
        with pytest.raises(OidError):
            Oid("1").parent

    def test_indexing_and_slicing(self):
        oid = Oid("1.3.6.1")
        assert oid[0] == 1
        assert oid[-1] == 1
        assert oid[:2] == Oid("1.3")
        assert len(oid) == 4
        assert list(oid) == [1, 3, 6, 1]

    def test_empty_slice_rejected(self):
        with pytest.raises(OidError):
            Oid("1.3")[2:2]
