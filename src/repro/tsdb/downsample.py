"""Windowed downsampling: min/max/mean/last aggregates over time windows.

Two uses:

- **Queries**: :func:`window_aggregate` turns any (times, values) pair
  into per-window aggregates -- the ``repro tsdb`` CLI and the analysis
  layer call it on decoded arrays.
- **Retention**: when a retention policy ages a sealed chunk out of a
  series, :class:`DownsampledSeries` absorbs it first, so hours-old
  history survives as one row per window instead of one per sample.

Windows are aligned to multiples of the window length (``floor(t/w)``),
so aggregates from different chunks of the same series land in the same
buckets and merge associatively (min/max/mean-via-sum/last all do).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tsdb.chunk import SealedChunk

AGGREGATES = ("min", "max", "mean", "last")


def window_aggregate(
    times: np.ndarray,
    values: np.ndarray,
    window: float,
    agg: str = "mean",
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate ``values`` into ``window``-second buckets.

    Returns ``(window_starts, aggregates)``.  Empty windows are absent
    rather than NaN-filled; NaN samples propagate into their window
    (a degraded report taints its bucket, deliberately).
    """
    if agg not in AGGREGATES:
        raise ValueError(f"unknown aggregate {agg!r}, want one of {AGGREGATES}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window!r}")
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times) == 0:
        empty = np.empty(0, dtype=float)
        return empty, empty.copy()
    buckets = np.floor(times / window).astype(np.int64)
    # Samples are time-ordered, so each bucket is one contiguous run.
    starts = np.flatnonzero(np.r_[True, buckets[1:] != buckets[:-1]])
    ends = np.r_[starts[1:], len(buckets)]
    window_starts = buckets[starts] * window
    out = np.empty(len(starts), dtype=float)
    for i, (lo, hi) in enumerate(zip(starts, ends)):
        chunk = values[lo:hi]
        if agg == "min":
            out[i] = chunk.min()
        elif agg == "max":
            out[i] = chunk.max()
        elif agg == "mean":
            out[i] = chunk.mean()
        else:  # last
            out[i] = chunk[-1]
    return window_starts.astype(float), out


class DownsampledSeries:
    """Per-window min/max/mean/last for every field of aged-out chunks.

    Rows are keyed by window start; absorbing two chunks that touch the
    same window merges their aggregates exactly (the mean carries its
    sample count).
    """

    __slots__ = ("fields", "window", "_rows")

    def __init__(self, fields: Sequence[str], window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.fields = tuple(fields)
        self.window = window
        # window_start -> field -> [min, max, sum, count, last, last_t]
        self._rows: Dict[float, Dict[str, List[float]]] = {}

    def absorb(self, chunk: SealedChunk, predictors=None) -> None:
        """Fold one sealed chunk's samples into the window rows."""
        times, values = chunk.arrays(predictors)
        buckets = np.floor(times / self.window) * self.window
        for name in self.fields:
            column = values[name]
            for t, start, v in zip(times, buckets, column):
                row = self._rows.setdefault(float(start), {})
                acc = row.get(name)
                if acc is None:
                    row[name] = [v, v, v, 1, v, t]
                else:
                    # NaN-poisoning min/max/sum is intentional: a window
                    # holding any untrusted sample reads as untrusted.
                    acc[0] = min(acc[0], v)
                    acc[1] = max(acc[1], v)
                    acc[2] += v
                    acc[3] += 1
                    if t >= acc[5]:
                        acc[4] = v
                        acc[5] = t

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def samples_absorbed(self) -> int:
        if not self._rows:
            return 0
        first_field = self.fields[0]
        return int(sum(row[first_field][3] for row in self._rows.values()))

    def arrays(
        self,
        field: str,
        agg: str = "mean",
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(window_starts, aggregate)`` for one field over a window range."""
        if agg not in AGGREGATES:
            raise ValueError(f"unknown aggregate {agg!r}, want one of {AGGREGATES}")
        if field not in self.fields:
            raise KeyError(f"no field {field!r} (have {self.fields})")
        starts = sorted(
            s for s in self._rows
            if (t_start is None or s + self.window > t_start)
            and (t_end is None or s < t_end)
        )
        out = np.empty(len(starts), dtype=float)
        for i, s in enumerate(starts):
            acc = self._rows[s][field]
            if agg == "min":
                out[i] = acc[0]
            elif agg == "max":
                out[i] = acc[1]
            elif agg == "mean":
                out[i] = acc[2] / acc[3]
            else:
                out[i] = acc[4]
        return np.array(starts, dtype=float), out

    @property
    def nbytes(self) -> int:
        """Approximate footprint: 6 floats per field per window row."""
        return len(self._rows) * len(self.fields) * 6 * 8
