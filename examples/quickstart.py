#!/usr/bin/env python3
"""Quickstart: specify a LAN, monitor a path, watch bandwidth move.

This is the smallest end-to-end use of the library:

1. describe a network in the DeSiDeRaTa-style specification language;
2. build it (simulated devices + SNMP agents start automatically);
3. attach the network QoS monitor to one host and watch a path;
4. drive a UDP load across the path and print the monitor's reports.

Run:  python examples/quickstart.py
"""

from repro import NetworkMonitor, StepSchedule, build_network, parse_spec
from repro.simnet.trafficgen import KBPS, StaircaseLoad

SPEC = """
network topology quickstart {
    host alice { os "Linux";   snmp community "public"; }
    host bob   { os "Solaris"; snmp community "public"; }
    host carol { os "Linux";   snmp community "public"; }
    switch sw1 { snmp community "public"; ports 4 speed 100 Mbps; }

    connect alice.eth0 <-> sw1.port1;
    connect bob.eth0   <-> sw1.port2;
    connect carol.eth0 <-> sw1.port3;
}
"""


def main() -> None:
    # 1-2. Parse, validate and instantiate the network.
    build = build_network(parse_spec(SPEC))
    net = build.network

    # 3. The monitor runs on alice and watches the bob <-> carol path.
    monitor = NetworkMonitor(build, "alice", poll_interval=2.0)
    label = monitor.watch_path("bob", "carol")
    monitor.subscribe(lambda report: print(report.summary()))

    # 4. bob sends carol 300 KB/s between t=5s and t=25s.
    load = StaircaseLoad(
        net.host("bob"),
        net.ip_of("carol"),
        StepSchedule.pulse(5.0, 25.0, 300 * KBPS),
    )
    load.start()

    monitor.start()
    net.run(35.0)

    series = monitor.history.series(label)
    print(f"\n{len(series)} reports collected on {label}")
    print(f"peak used bandwidth:   {series.used().max() / 1000:8.1f} KB/s")
    print(f"min available:         {series.available().min() / 1000:8.1f} KB/s")
    print(f"monitor SNMP traffic:  {monitor.manager.requests_sent} requests, "
          f"{monitor.manager.timeouts} timeouts")


if __name__ == "__main__":
    main()
