"""Shared probe result model: loss, jitter, and dispersion arithmetic.

Both probing modalities -- the RTT :class:`~repro.core.latency.PathProber`
(ECHO-based, paper §5 future work) and the one-way probe trains of
:mod:`repro.probe.train` -- reduce raw per-packet observations with the
same primitives, kept here so the two report identical numbers for
identical observations:

- **Sequence-gap loss accounting** (:func:`sequence_loss`): probes carry
  sequence numbers; loss is ``1 - received/sent`` with mid-train *gaps*
  (missing sequence numbers below the highest received one) separated
  from tail loss, which distinguishes congestive drops from a train cut
  short by a link failure.
- **RFC 3550 interarrival jitter** (:func:`interarrival_jitter`): the
  RTP receiver estimator ``J += (|D| - J) / 16`` over transit-time
  differences -- the figure iperf-style tools report for UDP flows.
- **Mean absolute consecutive difference**
  (:func:`mean_abs_consecutive`): the simpler RTT-jitter estimator the
  latency prober has always reported (kept for API stability).
- **Dispersion throughput** (:func:`dispersion_bps`): achievable
  bandwidth from a back-to-back packet train as bytes-after-the-first
  over the first..last arrival span, the packet-pair/train estimator.

All byte figures are *wire* bytes per second (payload + UDP/IP headers),
the same unit as the passive monitor's ``available_bps``, so the two
modalities are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

#: RFC 3550 §6.4.1 gain: each transit difference moves the estimate 1/16.
RFC3550_GAIN = 1.0 / 16.0


def interarrival_jitter(
    transits_s: Sequence[float], gain: float = RFC3550_GAIN
) -> float:
    """RFC 3550 interarrival jitter over one-way transit times.

    ``J_i = J_{i-1} + (|D_{i-1,i}| - J_{i-1}) * gain`` where ``D`` is the
    difference of consecutive transit times.  Returns 0.0 with fewer than
    two observations.
    """
    jitter = 0.0
    previous: Optional[float] = None
    for transit in transits_s:
        if previous is not None:
            jitter += (abs(transit - previous) - jitter) * gain
        previous = transit
    return jitter


def mean_abs_consecutive(values_s: Sequence[float]) -> float:
    """Mean absolute difference of consecutive values (RTT jitter)."""
    arr = np.asarray(values_s, dtype=float)
    if len(arr) < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(arr))))


def sequence_loss(sent: int, received_seqs: Sequence[int]) -> Tuple[float, int]:
    """(loss_rate, mid-train gap count) from sequence-number accounting.

    ``gaps`` counts distinct missing sequence numbers *below* the highest
    received one -- losses the network ate mid-train, as opposed to a
    tail the train never delivered (timeout, link down).
    """
    if sent <= 0:
        return 0.0, 0
    distinct = set(int(s) for s in received_seqs)
    received = len(distinct)
    loss_rate = 1.0 - received / sent
    gaps = 0
    if distinct:
        highest = max(distinct)
        gaps = sum(1 for seq in range(highest) if seq not in distinct)
    return loss_rate, gaps


def dispersion_bps(
    arrivals_s: Sequence[float], wire_bytes_per_packet: int
) -> float:
    """Achievable throughput from a train's receiver-side dispersion.

    Bytes of every packet *after* the first divided by the first..last
    arrival span: the first packet opens the measurement window, the
    remaining ones fill it at the bottleneck's service rate.  NaN with
    fewer than two arrivals or a zero span.
    """
    if len(arrivals_s) < 2:
        return float("nan")
    span = max(arrivals_s) - min(arrivals_s)
    if span <= 0:
        return float("nan")
    return (len(arrivals_s) - 1) * wire_bytes_per_packet / span


@dataclass
class ProbeStats:
    """RTT statistics from one probing session."""

    sent: int
    received: int
    rtts_s: np.ndarray

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def min_s(self) -> float:
        return float(np.min(self.rtts_s)) if len(self.rtts_s) else float("nan")

    @property
    def mean_s(self) -> float:
        return float(np.mean(self.rtts_s)) if len(self.rtts_s) else float("nan")

    @property
    def max_s(self) -> float:
        return float(np.max(self.rtts_s)) if len(self.rtts_s) else float("nan")

    @property
    def jitter_s(self) -> float:
        """Mean absolute difference of consecutive RTTs (RFC 3550 style)."""
        return mean_abs_consecutive(self.rtts_s)


@dataclass(frozen=True)
class ProbeReport:
    """One probe train's end-to-end measurements for a path.

    The active-modality sibling of :class:`~repro.core.report.PathReport`:
    where the passive report infers per-connection figures from counters,
    this one states what a real train of packets *achieved* end to end.
    ``achievable_bps`` is wire bytes/second (same unit as the passive
    ``available_bps``); delays are one-way (the simulation's clocks are
    perfectly synchronised, so ``arrival - send`` needs no NTP caveats).
    """

    src: str
    dst: str
    time: float  # completion (sim seconds)
    sent: int
    received: int
    train_bytes: int  # wire bytes offered (payload + UDP/IP headers)
    warmup: int  # leading arrivals excluded from throughput/jitter
    achievable_bps: float  # receiver-side dispersion, wire bytes/s
    loss_rate: float
    gaps: int  # mid-train sequence gaps (vs tail loss)
    jitter_s: float  # RFC 3550 interarrival jitter
    delay_min_s: float
    delay_mean_s: float
    delay_max_s: float
    duration_s: float  # first..last arrival span

    @property
    def label(self) -> str:
        return f"{self.src}<->{self.dst}"

    @property
    def complete(self) -> bool:
        """True when every probe of the train arrived."""
        return self.received == self.sent

    @property
    def delivered(self) -> bool:
        """True when enough probes arrived to measure throughput."""
        return not np.isnan(self.achievable_bps)

    def summary(self) -> str:
        """One-line human-readable rendering for logs and examples."""
        if not self.delivered:
            return (
                f"[{self.time:9.3f}s] {self.label}: probe ABANDONED "
                f"({self.received}/{self.sent} arrived, loss {self.loss_rate:.0%})"
            )
        return (
            f"[{self.time:9.3f}s] {self.label}: probe achievable "
            f"{self.achievable_bps / 1000:8.1f} KB/s, loss {self.loss_rate:5.1%} "
            f"({self.gaps} gaps), jitter {self.jitter_s * 1e6:7.1f}us, "
            f"delay {self.delay_mean_s * 1e3:.3f}ms"
        )
