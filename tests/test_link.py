"""Unit tests for duplex links: serialisation, queueing, drops."""

import pytest

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.engine import Simulator
from repro.simnet.link import Link, LinkError
from repro.simnet.nic import Interface
from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram


class Sink:
    """Minimal device: records delivered frames with their arrival time."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.received = []

    def on_frame(self, iface, frame):
        self.received.append((self.sim.now, frame))


def make_iface(sim, name, speed=100e6, promiscuous=True):
    sink = Sink(sim, name)
    iface = Interface(
        device=sink,
        local_name="eth0",
        mac=MacAddress(hash_tag(name)),
        speed_bps=speed,
        promiscuous=promiscuous,
    )
    return iface, sink


def hash_tag(name: str) -> int:
    return sum(ord(c) for c in name) + 1


def make_frame(size_payload=972, src=1, dst=2):
    packet = IPPacket(
        src=IPv4Address("10.0.0.1"),
        dst=IPv4Address("10.0.0.2"),
        payload=UDPDatagram(1, 2, payload_size=size_payload),
    )
    return EthernetFrame(MacAddress(src), MacAddress(dst), packet)  # size = payload + 28


class TestWiring:
    def test_min_speed_rule(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a", speed=100e6)
        b, _ = make_iface(sim, "b", speed=10e6)
        link = Link(sim, a, b)
        assert link.bandwidth_bps == 10e6

    def test_explicit_bandwidth_overrides(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        assert Link(sim, a, b, bandwidth_bps=5e6).bandwidth_bps == 5e6

    def test_self_connection_rejected(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        with pytest.raises(LinkError):
            Link(sim, a, a)

    def test_double_attach_rejected(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        c, _ = make_iface(sim, "c")
        Link(sim, a, b)
        with pytest.raises(LinkError):
            Link(sim, a, c)

    def test_peer_of(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        link = Link(sim, a, b)
        assert link.peer_of(a) is b
        assert link.peer_of(b) is a
        c, _ = make_iface(sim, "c")
        with pytest.raises(LinkError):
            link.peer_of(c)

    def test_connected_peer_property(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        assert a.connected_peer is None
        Link(sim, a, b)
        assert a.connected_peer is b

    def test_non_positive_bandwidth_rejected(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        with pytest.raises(LinkError):
            Link(sim, a, b, bandwidth_bps=0)


class TestTransmission:
    def test_delivery_after_tx_plus_prop(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, sink = make_iface(sim, "b")
        Link(sim, a, b, bandwidth_bps=1e6, prop_delay=0.001)
        frame = make_frame(972)  # 1000 wire bytes = 8000 bits = 8 ms at 1 Mb/s
        assert a.transmit(frame)
        sim.run(1.0)
        assert len(sink.received) == 1
        t, got = sink.received[0]
        assert got is frame
        assert t == pytest.approx(0.008 + 0.001)

    def test_fifo_serialisation(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, sink = make_iface(sim, "b")
        Link(sim, a, b, bandwidth_bps=1e6, prop_delay=0.0)
        for _ in range(3):
            a.transmit(make_frame(972))
        sim.run(1.0)
        times = [t for t, _f in sink.received]
        assert times == pytest.approx([0.008, 0.016, 0.024])

    def test_duplex_directions_independent(self):
        sim = Simulator()
        a, sink_a = make_iface(sim, "a")
        b, sink_b = make_iface(sim, "b")
        Link(sim, a, b, bandwidth_bps=1e6, prop_delay=0.0)
        a.transmit(make_frame(972, src=1, dst=2))
        b.transmit(make_frame(972, src=2, dst=1))
        sim.run(1.0)
        # Both arrive at 8 ms: no shared serialiser between directions.
        assert sink_a.received[0][0] == pytest.approx(0.008)
        assert sink_b.received[0][0] == pytest.approx(0.008)

    def test_queue_overflow_drops(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, sink = make_iface(sim, "b")
        link = Link(sim, a, b, bandwidth_bps=1e6, max_queue_bytes=2500)
        sent = [a.transmit(make_frame(972)) for _ in range(5)]
        # First frame starts transmitting immediately (leaves the queue),
        # then the 2500-byte queue fits two more 1000-byte frames.
        assert sent == [True, True, True, False, False]
        assert link.total_drops == 2
        assert a.counters.out_discards == 2
        sim.run(1.0)
        assert len(sink.received) == 3

    def test_drops_not_counted_as_sent_octets(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        Link(sim, a, b, bandwidth_bps=1e6, max_queue_bytes=1000)
        for _ in range(5):
            a.transmit(make_frame(972))
        # 1 transmitting + 1 queued accepted; 3 dropped.
        assert a.counters.out_octets == 2000

    def test_channel_stats(self):
        sim = Simulator()
        a, _ = make_iface(sim, "a")
        b, _ = make_iface(sim, "b")
        link = Link(sim, a, b, bandwidth_bps=1e6)
        a.transmit(make_frame(972))
        sim.run(1.0)
        chan = link.channel_from(a)
        assert chan.frames_delivered == 1
        assert chan.octets_delivered == 1000
