"""SNMPv2c notifications (traps): linkDown / linkUp and friends.

Polling discovers a dead link only at the next cycle; traps tell the
manager *now*.  RFC 1905 SNMPv2-Trap PDUs are ordinary PDUs (tag 0xA7)
whose first two varbinds are, by convention, ``sysUpTime.0`` and
``snmpTrapOID.0``; the interesting payload (here: the ``ifIndex`` of the
affected interface) follows.

:meth:`SnmpAgent.enable_link_traps` (in :mod:`repro.snmp.agent`) hooks
interface state observers and emits these through the normal socket path,
so trap datagrams are real traffic like everything else.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.snmp import ber
from repro.snmp.datatypes import Integer, ObjectIdentifier, SnmpValue, TimeTicks
from repro.snmp.message import VERSION_2C, Message
from repro.snmp.mib import IF_INDEX, SYS_UPTIME
from repro.snmp.oid import Oid
from repro.snmp.pdu import Pdu, VarBind
from repro.simnet.address import IPv4Address

TRAP_PORT = 162  # standard notification-receiver port

# snmpTrapOID.0 (RFC 3418) and the generic trap identities (RFC 1907).
SNMP_TRAP_OID = Oid("1.3.6.1.6.3.1.1.4.1.0")
TRAP_COLD_START = Oid("1.3.6.1.6.3.1.1.5.1")
TRAP_LINK_DOWN = Oid("1.3.6.1.6.3.1.1.5.3")
TRAP_LINK_UP = Oid("1.3.6.1.6.3.1.1.5.4")

_trap_request_ids = itertools.count(0x7000)

# SNMPv1 generic-trap codes (RFC 1157 §4.1.6).
GENERIC_COLD_START = 0
GENERIC_LINK_DOWN = 2
GENERIC_LINK_UP = 3
GENERIC_ENTERPRISE_SPECIFIC = 6

# RFC 2576 §3.1: v1 generic traps map to these v2 notification identities.
_GENERIC_TO_V2 = {
    GENERIC_COLD_START: TRAP_COLD_START,
    GENERIC_LINK_DOWN: TRAP_LINK_DOWN,
    GENERIC_LINK_UP: TRAP_LINK_UP,
}


def build_trap_pdu(
    uptime: TimeTicks,
    trap_oid: Oid,
    varbinds: Optional[List[VarBind]] = None,
    confirmed: bool = False,
) -> Pdu:
    """An SNMPv2-Trap (or, with ``confirmed``, InformRequest) PDU.

    Both notification forms share the mandated leading varbinds
    (sysUpTime.0, snmpTrapOID.0); an inform additionally expects a
    Response from the receiver, giving delivery the retry semantics a
    plain trap lacks.
    """
    payload: List[VarBind] = [
        VarBind(SYS_UPTIME, uptime),
        VarBind(SNMP_TRAP_OID, ObjectIdentifier(trap_oid)),
    ]
    if varbinds:
        payload.extend(varbinds)
    tag = ber.TAG_INFORM_REQUEST if confirmed else ber.TAG_SNMPV2_TRAP
    return Pdu(tag, next(_trap_request_ids), varbinds=payload)


def link_trap_pdu(uptime: TimeTicks, if_index: int, up: bool) -> Pdu:
    """The linkUp/linkDown notification for one interface."""
    trap_oid = TRAP_LINK_UP if up else TRAP_LINK_DOWN
    return build_trap_pdu(
        uptime, trap_oid, [VarBind(IF_INDEX + str(if_index), Integer(if_index))]
    )


@dataclass
class TrapV1Pdu:
    """The RFC 1157 Trap-PDU (tag 0xA4) -- a different shape entirely.

    The 2002-era devices of the paper's testbed emitted these rather than
    SNMPv2-Traps: enterprise OID, the agent's own address, generic/
    specific trap codes and a timestamp, then the varbinds.
    """

    enterprise: Oid
    agent_addr: "IpAddress"
    generic_trap: int
    specific_trap: int
    timestamp: TimeTicks
    varbinds: List[VarBind]

    kind = "trap-v1"

    def encode(self) -> bytes:
        body = (
            ber.encode_oid(self.enterprise)
            + self.agent_addr.encode()
            + ber.encode_integer(self.generic_trap)
            + ber.encode_integer(self.specific_trap)
            + self.timestamp.encode()
            + ber.encode_sequence(*[vb.encode() for vb in self.varbinds])
        )
        return ber.encode_tlv(ber.TAG_TRAP_V1, body)

    @staticmethod
    def decode(data: bytes, offset: int = 0) -> tuple:
        from repro.snmp.datatypes import IpAddress, decode_value

        tag, content, new_offset = ber.decode_tlv(data, offset)
        ber.expect_tag(tag, ber.TAG_TRAP_V1, "v1 Trap-PDU")
        pos = 0
        t, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(t, ber.TAG_OID, "enterprise")
        enterprise = ber.decode_oid_content(c)
        agent_addr, pos = decode_value(content, pos)
        if not isinstance(agent_addr, IpAddress):
            raise ber.BerError("v1 trap agent-addr must be an IpAddress")
        t, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(t, ber.TAG_INTEGER, "generic-trap")
        generic = ber.decode_integer_content(c)
        t, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(t, ber.TAG_INTEGER, "specific-trap")
        specific = ber.decode_integer_content(c)
        timestamp, pos = decode_value(content, pos)
        if not isinstance(timestamp, TimeTicks):
            raise ber.BerError("v1 trap time-stamp must be TimeTicks")
        vb_content, pos = ber.decode_sequence(content, pos)
        if pos != len(content):
            raise ber.BerError("trailing bytes inside v1 Trap-PDU")
        varbinds: List[VarBind] = []
        vpos = 0
        while vpos < len(vb_content):
            vb, vpos = VarBind.decode(vb_content, vpos)
            varbinds.append(vb)
        return (
            TrapV1Pdu(enterprise, agent_addr, generic, specific, timestamp, varbinds),
            new_offset,
        )

    def v2_identity(self) -> Oid:
        """The equivalent snmpTrapOID (RFC 2576 mapping)."""
        mapped = _GENERIC_TO_V2.get(self.generic_trap)
        if mapped is not None:
            return mapped
        # enterpriseSpecific: enterprise.0.specific
        return self.enterprise.extend(0, self.specific_trap)


@dataclass(frozen=True)
class TrapEvent:
    """A decoded notification as seen by the receiver."""

    source_ip: IPv4Address
    uptime: TimeTicks
    trap_oid: Oid
    varbinds: tuple  # the payload varbinds (after the two mandated ones)
    received_at: float

    @property
    def is_link_down(self) -> bool:
        return self.trap_oid == TRAP_LINK_DOWN

    @property
    def is_link_up(self) -> bool:
        return self.trap_oid == TRAP_LINK_UP

    def if_index(self) -> Optional[int]:
        """The ifIndex payload of a link trap, if present."""
        for vb in self.varbinds:
            if vb.oid.startswith(IF_INDEX) and isinstance(vb.value, Integer):
                return vb.value.value
        return None


class TrapReceiver:
    """Listens on UDP :162 for traps and informs.

    Informs are acknowledged (a Response PDU echoing the request-id goes
    back to the sender) and de-duplicated by (source, request-id), since
    a lost acknowledgement makes the sender retransmit.
    """

    def __init__(
        self,
        endpoint,
        community: str = "public",
        port: int = TRAP_PORT,
        callback: Optional[Callable[[TrapEvent], None]] = None,
    ) -> None:
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.community = community
        self.socket = endpoint.create_socket(port)
        self.socket.on_receive = self._on_datagram
        self.callback = callback
        self.events: List[TrapEvent] = []
        self.malformed = 0
        self.bad_community = 0
        self.informs_acked = 0
        self.duplicate_informs = 0
        self._seen_informs: set = set()

    def _on_datagram(self, payload, size, src_ip, src_port) -> None:
        if payload is None:
            self.malformed += 1
            return
        try:
            message = Message.decode(payload)
        except ber.BerError:
            self.malformed += 1
            return
        if message.community != self.community:
            self.bad_community += 1
            return
        pdu = message.pdu
        if isinstance(pdu, TrapV1Pdu):
            # Translate per RFC 2576 and deliver like any notification.
            event = TrapEvent(
                source_ip=src_ip,
                uptime=pdu.timestamp,
                trap_oid=pdu.v2_identity(),
                varbinds=tuple(pdu.varbinds),
                received_at=self.sim.now,
            )
            self.events.append(event)
            if self.callback is not None:
                self.callback(event)
            return
        if pdu.kind not in ("trap", "inform") or len(pdu.varbinds) < 2:
            self.malformed += 1
            return
        if pdu.kind == "inform":
            # Acknowledge first -- even duplicates, whose original ack
            # evidently never made it back.
            response = pdu.response(pdu.varbinds)
            self.socket.sendto(
                Message(message.version, self.community, response).encode(),
                (src_ip, src_port),
            )
            self.informs_acked += 1
            dedup_key = (src_ip, pdu.request_id)
            if dedup_key in self._seen_informs:
                self.duplicate_informs += 1
                return
            self._seen_informs.add(dedup_key)
        uptime_vb, trapoid_vb = pdu.varbinds[0], pdu.varbinds[1]
        if not isinstance(uptime_vb.value, TimeTicks) or not isinstance(
            trapoid_vb.value, ObjectIdentifier
        ):
            self.malformed += 1
            return
        event = TrapEvent(
            source_ip=src_ip,
            uptime=uptime_vb.value,
            trap_oid=trapoid_vb.value.value,
            varbinds=tuple(pdu.varbinds[2:]),
            received_at=self.sim.now,
        )
        self.events.append(event)
        if self.callback is not None:
            self.callback(event)


class InformSender:
    """Reliable notification delivery: retransmit until acknowledged.

    The classic trap failure mode -- "the linkDown died with the link" --
    is exactly what informs fix: the sender keeps retrying on a timer, so
    the notification arrives once connectivity returns, preserving the
    event history even for outages the receiver never saw live.
    """

    def __init__(
        self,
        endpoint,
        destination: IPv4Address,
        community: str = "public",
        port: int = TRAP_PORT,
        timeout: float = 2.0,
        max_attempts: int = 30,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.destination = destination
        self.community = community
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.socket = endpoint.create_socket()
        self.socket.on_receive = self._on_datagram
        self._pending: dict = {}  # request_id -> (payload bytes, attempts, timer)
        self.sent = 0
        self.retransmissions = 0
        self.acked = 0
        self.abandoned = 0

    def send(self, pdu: Pdu) -> int:
        """Queue an inform PDU for reliable delivery; returns request id."""
        if pdu.kind != "inform":
            raise ValueError("InformSender only sends inform PDUs")
        payload = Message(VERSION_2C, self.community, pdu).encode()
        self._pending[pdu.request_id] = [payload, 0, None]
        self._transmit(pdu.request_id)
        return pdu.request_id

    def _transmit(self, request_id: int) -> None:
        entry = self._pending.get(request_id)
        if entry is None:
            return
        payload, attempts, _timer = entry
        if attempts >= self.max_attempts:
            del self._pending[request_id]
            self.abandoned += 1
            return
        entry[1] = attempts + 1
        if attempts > 0:
            self.retransmissions += 1
        self.sent += 1
        self.socket.sendto(payload, (self.destination, self.port))
        entry[2] = self.sim.schedule(self.timeout, self._transmit, request_id)

    def _on_datagram(self, payload, size, src_ip, src_port) -> None:
        if payload is None:
            return
        try:
            message = Message.decode(payload)
        except ber.BerError:
            return
        if message.pdu.kind != "response":
            return
        entry = self._pending.pop(message.pdu.request_id, None)
        if entry is None:
            return
        if entry[2] is not None:
            entry[2].cancel()
        self.acked += 1

    @property
    def outstanding(self) -> int:
        return len(self._pending)
