"""Tests for the library's structured logging."""

import logging

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import LinkFailure


class TestMonitorLogging:
    def test_watch_and_start_logged(self, caplog):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        with caplog.at_level(logging.INFO, logger="repro.monitor"):
            monitor.watch_path("S1", "N1")
            monitor.start()
        messages = [r.message for r in caplog.records]
        assert any("watching path S1<->N1" in m for m in messages)
        assert any("monitor on L starting" in m for m in messages)

    def test_link_state_transitions_logged(self, caplog):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        monitor.watch_path("S1", "N1")
        monitor.enable_trap_listener()
        net = build.network
        LinkFailure(net.sim, net.host("S1").interfaces[0].link, at=5.0, until=10.0)
        monitor.start()
        with caplog.at_level(logging.INFO, logger="repro.monitor"):
            net.run(15.0)
        messages = [r.message for r in caplog.records]
        assert any("linkDown" in m for m in messages)
        assert any("linkUp" in m for m in messages)
        down_records = [r for r in caplog.records if "linkDown" in r.message]
        assert down_records[0].levelno == logging.WARNING

    def test_reallocation_logged(self, caplog):
        from repro.experiments.testbed import TESTBED_SPEC_TEXT
        from repro.rm.applications import ApplicationRuntime
        from repro.spec.builder import build_network
        from repro.spec.parser import parse_spec

        text = TESTBED_SPEC_TEXT.rstrip()[:-1] + """
            application sensor  { on S1; sends to tracker rate 100 Kbps; }
            application tracker { on N1; }
        }
        """
        build = build_network(parse_spec(text))
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        runtime = ApplicationRuntime(build, monitor)
        runtime.start()
        with caplog.at_level(logging.WARNING, logger="repro.rm"):
            runtime.move("tracker", "S3", reason="test move")
        assert any("reallocation executed" in r.message for r in caplog.records)
        assert any("tracker" in r.message for r in caplog.records)

    def test_quiet_by_default(self, caplog):
        """No output unless the application configures logging (library
        etiquette: loggers propagate, handlers are the caller's job)."""
        logger = logging.getLogger("repro.monitor")
        assert logger.handlers == []
