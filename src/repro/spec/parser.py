"""Recursive-descent parser for the network specification language.

Grammar (EBNF; keywords are case-sensitive identifiers)::

    spec        := "network" "topology" IDENT "{" item* "}" EOF
    item        := host | switch | hub | connect | qospath
    host        := "host" IDENT "{" host_stmt* "}"
    host_stmt   := "os" STRING ";"
                 | "snmp" ("community" STRING | "off") ";"
                 | "interface" IDENT "{" if_stmt* "}"
                 | IDENT STRING ";"                      # free attribute
    if_stmt     := "speed" rate ";" | "mtu" NUMBER ";"
    switch      := "switch" IDENT "{" device_stmt* "}"
    hub         := "hub" IDENT "{" device_stmt* "}"
    device_stmt := "ports" NUMBER ["speed" rate] ";"
                 | "snmp" ("community" STRING | "off") ";"
                 | IDENT STRING ";"
    connect     := "connect" endpoint "<->" endpoint
                   ["[" "bandwidth" rate "]"] ";"
    endpoint    := IDENT "." IDENT
    qospath     := "qospath" IDENT "{" qos_stmt* "}"
    qos_stmt    := "from" IDENT "to" IDENT ";"
                 | "min_available" rate ";"
                 | "max_utilization" NUMBER ";"
    application := "application" IDENT "{" app_stmt* "}"
    app_stmt    := "on" IDENT ";"
                 | "sends" "to" IDENT "rate" rate ";"
    rate        := NUMBER unit
    unit        := "bps" | "Kbps" | "Mbps" | "Gbps"      # bits/second
                 | "Bps" | "KBps" | "MBps" | "GBps"      # bytes/second

Rates use decimal multipliers (the paper's "Kbytes/second" is 1000
bytes/second).  ``ports N`` on a switch/hub expands into interfaces named
``port1..portN``, matching the simulator's port naming.
"""

from __future__ import annotations

from typing import List, Optional

from repro.spec.lexer import Token, TokenType, tokenize
from repro.topology.model import (
    AppFlowSpec,
    ApplicationSpec,
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    QosPathSpec,
    TopologySpec,
)

RATE_UNITS = {
    "bps": 1.0,
    "Kbps": 1e3,
    "Mbps": 1e6,
    "Gbps": 1e9,
    "Bps": 8.0,
    "KBps": 8e3,
    "MBps": 8e6,
    "GBps": 8e9,
}


class ParseError(ValueError):
    """Raised with token position context on any syntax error."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.column}")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def expect(self, ttype: TokenType, what: str = "") -> Token:
        token = self.peek()
        if token.type is not ttype:
            raise ParseError(f"expected {what or ttype.value}, found {token}", token)
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        token = self.peek()
        if token.type is not TokenType.IDENT or token.value != keyword:
            raise ParseError(f"expected keyword {keyword!r}, found {token}", token)
        return self.advance()

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token.type is TokenType.IDENT and token.value == keyword

    def ident(self, what: str = "name") -> str:
        return str(self.expect(TokenType.IDENT, what).value)

    def string(self, what: str = "string") -> str:
        return str(self.expect(TokenType.STRING, what).value)

    def number(self, what: str = "number") -> float:
        return float(self.expect(TokenType.NUMBER, what).value)

    def semicolon(self) -> None:
        self.expect(TokenType.SEMICOLON, "';'")

    def rate(self) -> float:
        """A number followed by a unit identifier; returns bits/second."""
        value = self.number("rate value")
        unit_token = self.expect(TokenType.IDENT, "rate unit")
        unit = str(unit_token.value)
        if unit not in RATE_UNITS:
            raise ParseError(
                f"unknown rate unit {unit!r} (expected one of {sorted(RATE_UNITS)})",
                unit_token,
            )
        return value * RATE_UNITS[unit]

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse(self) -> TopologySpec:
        self.expect_keyword("network")
        self.expect_keyword("topology")
        name = self.ident("topology name")
        self.expect(TokenType.LBRACE, "'{'")
        spec = TopologySpec(name=name)
        while self.peek().type is not TokenType.RBRACE:
            token = self.peek()
            if token.type is not TokenType.IDENT:
                raise ParseError(f"expected a declaration, found {token}", token)
            keyword = str(token.value)
            if keyword == "host":
                spec.nodes.append(self._parse_host())
            elif keyword == "switch":
                spec.nodes.append(self._parse_device(DeviceKind.SWITCH))
            elif keyword == "hub":
                spec.nodes.append(self._parse_device(DeviceKind.HUB))
            elif keyword == "connect":
                spec.connections.append(self._parse_connect())
            elif keyword == "qospath":
                spec.qos_paths.append(self._parse_qospath())
            elif keyword == "application":
                spec.applications.append(self._parse_application())
            else:
                raise ParseError(f"unknown declaration {keyword!r}", token)
        self.expect(TokenType.RBRACE, "'}'")
        self.expect(TokenType.EOF, "end of file")
        return spec

    def _parse_host(self) -> NodeSpec:
        self.expect_keyword("host")
        name = self.ident("host name")
        self.expect(TokenType.LBRACE, "'{'")
        node = NodeSpec(name=name, kind=DeviceKind.HOST)
        while self.peek().type is not TokenType.RBRACE:
            if self.at_keyword("os"):
                self.advance()
                node.os_label = self.string("OS label")
                self.semicolon()
            elif self.at_keyword("snmp"):
                self._parse_snmp(node)
            elif self.at_keyword("interface"):
                node.interfaces.append(self._parse_interface())
            else:
                key = self.ident("attribute name")
                node.attributes[key] = self.string("attribute value")
                self.semicolon()
        self.expect(TokenType.RBRACE, "'}'")
        if not node.interfaces:
            # A host with no explicit interfaces gets a default NIC, the
            # common case in hand-written specs.
            node.interfaces.append(InterfaceSpec("eth0"))
        return NodeSpec(  # re-validate with final interface list
            name=node.name,
            kind=node.kind,
            interfaces=node.interfaces,
            os_label=node.os_label,
            snmp_enabled=node.snmp_enabled,
            snmp_community=node.snmp_community,
            attributes=node.attributes,
        )

    def _parse_interface(self) -> InterfaceSpec:
        self.expect_keyword("interface")
        name = self.ident("interface name")
        speed = 100e6
        mtu = 1500
        self.expect(TokenType.LBRACE, "'{'")
        while self.peek().type is not TokenType.RBRACE:
            if self.at_keyword("speed"):
                self.advance()
                speed = self.rate()
                self.semicolon()
            elif self.at_keyword("mtu"):
                self.advance()
                mtu = int(self.number("MTU"))
                self.semicolon()
            else:
                raise ParseError(f"unknown interface statement {self.peek()}", self.peek())
        self.expect(TokenType.RBRACE, "'}'")
        return InterfaceSpec(name, speed_bps=speed, mtu=mtu)

    def _parse_device(self, kind: DeviceKind) -> NodeSpec:
        self.expect_keyword(kind.value)
        name = self.ident(f"{kind.value} name")
        self.expect(TokenType.LBRACE, "'{'")
        node = NodeSpec(name=name, kind=kind)
        ports: Optional[int] = None
        port_speed = 100e6 if kind is DeviceKind.SWITCH else 10e6
        while self.peek().type is not TokenType.RBRACE:
            if self.at_keyword("ports"):
                self.advance()
                ports = int(self.number("port count"))
                if self.at_keyword("speed"):
                    self.advance()
                    port_speed = self.rate()
                self.semicolon()
            elif self.at_keyword("snmp"):
                self._parse_snmp(node)
            else:
                key = self.ident("attribute name")
                node.attributes[key] = self.string("attribute value")
                self.semicolon()
        close = self.expect(TokenType.RBRACE, "'}'")
        if ports is None:
            raise ParseError(f"{kind.value} {name!r} needs a 'ports N;' statement", close)
        if ports < 2:
            raise ParseError(f"{kind.value} {name!r} needs at least 2 ports", close)
        interfaces = [InterfaceSpec(f"port{i + 1}", speed_bps=port_speed) for i in range(ports)]
        return NodeSpec(
            name=node.name,
            kind=kind,
            interfaces=interfaces,
            snmp_enabled=node.snmp_enabled,
            snmp_community=node.snmp_community,
            attributes=node.attributes,
        )

    def _parse_snmp(self, node: NodeSpec) -> None:
        self.expect_keyword("snmp")
        if self.at_keyword("off"):
            self.advance()
            node.snmp_enabled = False
        else:
            self.expect_keyword("community")
            node.snmp_community = self.string("community string")
            node.snmp_enabled = True
        self.semicolon()

    def _parse_endpoint(self) -> InterfaceRef:
        node = self.ident("device name")
        self.expect(TokenType.DOT, "'.'")
        iface = self.ident("interface name")
        return InterfaceRef(node, iface)

    def _parse_connect(self) -> ConnectionSpec:
        self.expect_keyword("connect")
        end_a = self._parse_endpoint()
        self.expect(TokenType.ARROW, "'<->'")
        end_b = self._parse_endpoint()
        bandwidth: Optional[float] = None
        if self.peek().type is TokenType.LBRACKET:
            self.advance()
            self.expect_keyword("bandwidth")
            bandwidth = self.rate()
            self.expect(TokenType.RBRACKET, "']'")
        self.semicolon()
        return ConnectionSpec(end_a, end_b, bandwidth_bps=bandwidth)

    def _parse_qospath(self) -> QosPathSpec:
        self.expect_keyword("qospath")
        name = self.ident("QoS path name")
        self.expect(TokenType.LBRACE, "'{'")
        src: Optional[str] = None
        dst: Optional[str] = None
        min_available: Optional[float] = None
        max_utilization: Optional[float] = None
        while self.peek().type is not TokenType.RBRACE:
            if self.at_keyword("from"):
                self.advance()
                src = self.ident("source host")
                self.expect_keyword("to")
                dst = self.ident("destination host")
                self.semicolon()
            elif self.at_keyword("min_available"):
                self.advance()
                min_available = self.rate()
                self.semicolon()
            elif self.at_keyword("max_utilization"):
                self.advance()
                max_utilization = self.number("utilization fraction")
                self.semicolon()
            else:
                raise ParseError(f"unknown qospath statement {self.peek()}", self.peek())
        close = self.expect(TokenType.RBRACE, "'}'")
        if src is None or dst is None:
            raise ParseError(f"qospath {name!r} needs a 'from X to Y;' statement", close)
        return QosPathSpec(
            name=name,
            src=src,
            dst=dst,
            min_available_bps=min_available,
            max_utilization=max_utilization,
        )

    def _parse_application(self) -> ApplicationSpec:
        self.expect_keyword("application")
        name = self.ident("application name")
        self.expect(TokenType.LBRACE, "'{'")
        host: Optional[str] = None
        flows: List[AppFlowSpec] = []
        while self.peek().type is not TokenType.RBRACE:
            if self.at_keyword("on"):
                self.advance()
                host = self.ident("host name")
                self.semicolon()
            elif self.at_keyword("sends"):
                self.advance()
                self.expect_keyword("to")
                dst_app = self.ident("destination application")
                self.expect_keyword("rate")
                rate = self.rate()
                self.semicolon()
                flows.append(AppFlowSpec(dst_app=dst_app, rate_bps=rate))
            else:
                raise ParseError(
                    f"unknown application statement {self.peek()}", self.peek()
                )
        close = self.expect(TokenType.RBRACE, "'}'")
        if host is None:
            raise ParseError(f"application {name!r} needs an 'on HOST;' statement", close)
        return ApplicationSpec(name=name, host=host, flows=flows)


def parse_spec(text: str) -> TopologySpec:
    """Parse specification ``text`` into a :class:`TopologySpec`."""
    return _Parser(tokenize(text)).parse()


def parse_file(path) -> TopologySpec:
    """Parse the specification file at ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_spec(fh.read())
