"""The Network container: builds and wires a simulated LAN.

A :class:`Network` owns the simulator clock, deterministic MAC/IP
allocators, the device inventory and the IP->MAC resolution registry (the
ARP substitute described in :mod:`repro.simnet.host`).  Experiments and the
spec-language builder construct their topologies through this API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.simnet.address import (
    BROADCAST_MAC,
    IPv4Address,
    IPv4Allocator,
    MacAddress,
    MacAllocator,
)
from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.hub import Hub
from repro.simnet.link import Link
from repro.simnet.mgmt import ManagementStack
from repro.simnet.nic import Interface
from repro.simnet.switch import Switch

BROADCAST_IP = IPv4Address("255.255.255.255")

Device = Union[Host, Switch, Hub]


class NetworkError(RuntimeError):
    """Raised for wiring/naming mistakes while building a network."""


class Network:
    """A complete simulated LAN."""

    def __init__(self, sim: Optional[Simulator] = None, subnet: str = "10.0.0.0") -> None:
        self.sim = sim if sim is not None else Simulator()
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.hubs: Dict[str, Hub] = {}
        self.links: List[Link] = []
        self.management: Dict[str, ManagementStack] = {}
        self._mac_alloc = MacAllocator()
        self._ip_alloc = IPv4Allocator(subnet, 16)
        self._arp: Dict[IPv4Address, MacAddress] = {}
        self._ip_owner: Dict[IPv4Address, object] = {}

    # ------------------------------------------------------------------
    # Device construction
    # ------------------------------------------------------------------
    def add_host(
        self,
        name: str,
        speed_bps: float = 100e6,
        os_label: str = "generic",
        n_interfaces: int = 1,
        with_discard: bool = True,
    ) -> Host:
        """Create a host with ``n_interfaces`` addressed NICs."""
        self._check_name(name)
        host = Host(self.sim, name, os_label=os_label)
        host.network = self
        for i in range(n_interfaces):
            self.add_host_interface(host, f"eth{i}", speed_bps)
        if with_discard:
            host.start_discard_service()
        self.hosts[name] = host
        return host

    def add_host_interface(
        self, host: Host, local_name: str, speed_bps: float = 100e6
    ) -> Interface:
        """Add a further NIC to ``host`` (multi-homed hosts, Figure 1)."""
        mac = self._mac_alloc.allocate()
        ip = self._ip_alloc.allocate()
        iface = host.add_interface(local_name, mac, ip, speed_bps)
        self._register(ip, mac, host)
        return iface

    def add_switch(
        self,
        name: str,
        n_ports: int,
        port_speed_bps: float = 100e6,
        managed: bool = True,
        stp: bool = False,
        stp_priority: int = 0x8000,
    ) -> Switch:
        """Create a switch; ``managed`` gives it an SNMP-ready stack.

        ``stp`` runs the deterministic spanning-tree protocol on it,
        making redundant (cyclic) wiring legal.
        """
        self._check_name(name)
        switch = Switch(
            self.sim, name, n_ports, port_speed_bps, stp=stp, stp_priority=stp_priority
        )
        switch.network = self
        self.switches[name] = switch
        if managed:
            mac = self._mac_alloc.allocate()
            ip = self._ip_alloc.allocate()
            stack = ManagementStack(switch, ip, mac)
            stack.network = self
            self.management[name] = stack
            self._register(ip, mac, switch)
        return switch

    def add_hub(self, name: str, n_ports: int, speed_bps: float = 10e6) -> Hub:
        """Create a (dumb, unmanaged) hub."""
        self._check_name(name)
        hub = Hub(self.sim, name, n_ports, speed_bps)
        hub.network = self
        self.hubs[name] = hub
        return hub

    def _check_name(self, name: str) -> None:
        if name in self.hosts or name in self.switches or name in self.hubs:
            raise NetworkError(f"duplicate device name {name!r}")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(
        self,
        a: Union[Interface, Device],
        b: Union[Interface, Device],
        **link_kwargs,
    ) -> Link:
        """Connect two interfaces (or devices, using their free ports)."""
        iface_a = self._as_interface(a)
        iface_b = self._as_interface(b)
        link = Link(self.sim, iface_a, iface_b, **link_kwargs)
        self.links.append(link)
        return link

    @staticmethod
    def _as_interface(obj: Union[Interface, Device]) -> Interface:
        if isinstance(obj, Interface):
            return obj
        if isinstance(obj, (Switch, Hub)):
            return obj.free_port()
        if isinstance(obj, Host):
            for iface in obj.interfaces:
                if iface.link is None:
                    return iface
            raise NetworkError(f"host {obj.name} has no free interface")
        raise NetworkError(f"cannot connect object of type {type(obj).__name__}")

    # ------------------------------------------------------------------
    # Lookup / resolution
    # ------------------------------------------------------------------
    def device(self, name: str) -> Device:
        for table in (self.hosts, self.switches, self.hubs):
            if name in table:
                return table[name]
        raise NetworkError(f"no device named {name!r}")

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"no host named {name!r}") from None

    def endpoint(self, name: str):
        """An SNMP-capable endpoint: a host, or a switch's mgmt stack."""
        if name in self.hosts:
            return self.hosts[name]
        if name in self.management:
            return self.management[name]
        raise NetworkError(f"{name!r} is not an addressable endpoint")

    def ip_of(self, name: str) -> IPv4Address:
        return self.endpoint(name).primary_ip

    def _register(self, ip: IPv4Address, mac: MacAddress, owner: object) -> None:
        if ip in self._arp:
            raise NetworkError(f"IP {ip} registered twice")
        self._arp[ip] = mac
        self._ip_owner[ip] = owner

    def resolve_mac(self, ip: IPv4Address) -> MacAddress:
        """ARP substitute: map an IP to its MAC (broadcast-aware)."""
        if ip == BROADCAST_IP:
            return BROADCAST_MAC
        try:
            return self._arp[ip]
        except KeyError:
            raise NetworkError(f"no device owns IP {ip}") from None

    def owner_of(self, ip: IPv4Address) -> object:
        try:
            return self._ip_owner[ip]
        except KeyError:
            raise NetworkError(f"no device owns IP {ip}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def broadcast_ip(self) -> IPv4Address:
        return BROADCAST_IP

    def announce_hosts(self, at: float = 0.0, stagger: float = 1e-4) -> None:
        """Schedule every host's gratuitous announcement.

        Announcements are staggered by ``stagger`` seconds so that the
        hub's shared medium never sees two at the same instant, keeping
        runs deterministic.
        """
        for i, host in enumerate(sorted(self.hosts.values(), key=lambda h: h.name)):
            self.sim.schedule_at(max(at, self.sim.now) + i * stagger, host.announce)

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: float) -> None:
        self.sim.run(until)

    def all_interfaces(self) -> List[Interface]:
        out: List[Interface] = []
        for host in self.hosts.values():
            out.extend(host.interfaces)
        for switch in self.switches.values():
            out.extend(switch.interfaces)
        for hub in self.hubs.values():
            out.extend(hub.interfaces)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switches)} "
            f"hubs={len(self.hubs)} links={len(self.links)} t={self.sim.now:.3f}>"
        )
