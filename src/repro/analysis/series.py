"""Time-series utilities for aligning measurements with load schedules.

A bandwidth sample reported at time ``t`` covers roughly the preceding
polling interval, so samples that straddle a load-schedule breakpoint mix
two levels and belong to neither.  :func:`stable_mask` identifies the
samples safely inside one level -- the paper's per-level statistics
implicitly do the same by averaging within each 60-second step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simnet.trafficgen import StepSchedule


def stable_mask(
    times: np.ndarray,
    schedule: StepSchedule,
    window: float,
    guard: float = 0.0,
) -> np.ndarray:
    """True where the whole interval ``[t - window - guard, t + guard]``
    sits inside a single schedule level.

    ``window`` is the measurement interval (poll period); ``guard`` adds
    slack for polling jitter and agent counter staleness.
    """
    times = np.asarray(times, dtype=float)
    mask = np.ones(len(times), dtype=bool)
    for breakpoint in schedule.breakpoints:
        straddles = (times - window - guard < breakpoint) & (times + guard >= breakpoint)
        mask &= ~straddles
    return mask


def combined_stable_mask(
    times: np.ndarray,
    schedules: Sequence[StepSchedule],
    window: float,
    guard: float = 0.0,
) -> np.ndarray:
    """Stable with respect to *every* schedule (multi-load experiments)."""
    mask = np.ones(len(times), dtype=bool)
    for schedule in schedules:
        mask &= stable_mask(times, schedule, window, guard)
    return mask


def windowed(
    times: np.ndarray,
    values: np.ndarray,
    window: float,
    agg: str = "mean",
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-window aggregates of a sample series.

    Thin wrapper over :func:`repro.tsdb.downsample.window_aggregate`
    (windows aligned to multiples of ``window``; empty windows absent;
    ``agg`` one of min/max/mean/last) so analysis code summarises decoded
    history arrays with the same bucketing the storage engine's retention
    downsampler uses -- a chart of live data and one of aged-out data
    line up bucket for bucket.
    """
    from repro.tsdb.downsample import window_aggregate

    return window_aggregate(times, values, window, agg)


def percent_errors(
    measured: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Elementwise |measured - reference| / reference * 100 (ref > 0 only).

    Entries with a non-positive reference yield NaN so that callers can
    drop them explicitly instead of dividing by zero.
    """
    measured = np.asarray(measured, dtype=float)
    reference = np.asarray(reference, dtype=float)
    out = np.full(measured.shape, np.nan)
    ok = reference > 0
    out[ok] = np.abs(measured[ok] - reference[ok]) / reference[ok] * 100.0
    return out
