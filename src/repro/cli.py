"""Command-line interface.

Installed as the ``repro`` console script::

    repro validate topology.net              # parse + validate a spec file
    repro show topology.net                  # normalised spec + graph facts
    repro experiment fig4 --seed 1           # regenerate a paper artefact
    repro monitor topology.net --host L --watch S1:N1 \\
          --load L:N1:200:10:40 --until 60 --chart
    repro tsdb --load L:N1:200:10:40         # storage stats + range queries
    repro integrity --corrupt S1:random:10 --until 30   # trust + quarantine
    repro stream --load L:N1:300:5:30 --threshold S1:N1:500   # push events
    repro discover topology.net --host L     # SNMP topology discovery
    repro topology redundant.net --host A --fail-uplink sw1:sw2
                                             # STP view + uplink failover

Every subcommand works on simulated time and returns a conventional exit
code (0 ok, 1 failure, 2 usage), so the tool scripts cleanly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.charts import render_pair
from repro.core.monitor import MonitorError, NetworkMonitor
from repro.simnet.network import NetworkError
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import ParseError, parse_file
from repro.spec.lexer import LexError
from repro.spec.validate import SpecValidationError, validate_spec
from repro.spec.writer import write_spec
from repro.topology.graph import TopologyGraph
from repro.topology.model import TopologyError

EXPERIMENTS = ("fig4", "fig5", "fig6", "table2")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNMP network-QoS monitor (IPPS 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="validate a topology spec file")
    p_validate.add_argument("specfile")

    p_show = sub.add_parser("show", help="print the normalised spec and graph facts")
    p_show.add_argument("specfile")

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("name", choices=EXPERIMENTS)
    p_exp.add_argument("--seed", type=int, default=0)

    p_mon = sub.add_parser("monitor", help="monitor paths on a specified network")
    p_mon.add_argument("specfile")
    p_mon.add_argument("--host", required=True, help="host running the monitor")
    p_mon.add_argument(
        "--watch", action="append", default=[], metavar="SRC:DST",
        help="host pair to watch (repeatable)",
    )
    p_mon.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_mon.add_argument("--until", type=float, default=60.0, help="simulated seconds")
    p_mon.add_argument("--interval", type=float, default=2.0, help="poll interval")
    p_mon.add_argument("--chart", action="store_true", help="render ASCII charts")

    p_tel = sub.add_parser(
        "telemetry",
        help="run a monitoring scenario and print the monitor's own telemetry",
    )
    p_tel.add_argument(
        "specfile", nargs="?", default=None,
        help="topology spec (default: the paper's Figure-3 testbed)",
    )
    p_tel.add_argument(
        "--host", default=None,
        help="host running the monitor (default: L on the built-in testbed)",
    )
    p_tel.add_argument(
        "--watch", action="append", default=[], metavar="SRC:DST",
        help="host pair to watch (default on the testbed: S1:N1)",
    )
    p_tel.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_tel.add_argument(
        "--qos", action="append", default=[], metavar="SRC:DST:MIN_KBPS",
        help="QoS floor on a path; enables the RM middleware (repeatable)",
    )
    p_tel.add_argument("--until", type=float, default=60.0, help="simulated seconds")
    p_tel.add_argument("--interval", type=float, default=2.0, help="poll interval")
    p_tel.add_argument(
        "--format", choices=("text", "prometheus", "json"), default="text",
        help="output format (text includes a Prometheus section)",
    )

    p_tsdb = sub.add_parser(
        "tsdb",
        help="run a monitoring scenario and inspect the embedded time-series store",
    )
    p_tsdb.add_argument(
        "specfile", nargs="?", default=None,
        help="topology spec (default: the paper's Figure-3 testbed)",
    )
    p_tsdb.add_argument(
        "--host", default=None,
        help="host running the monitor (default: L on the built-in testbed)",
    )
    p_tsdb.add_argument(
        "--watch", action="append", default=[], metavar="SRC:DST",
        help="host pair to watch (default on the testbed: S1:N1)",
    )
    p_tsdb.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_tsdb.add_argument("--until", type=float, default=60.0, help="simulated seconds")
    p_tsdb.add_argument("--interval", type=float, default=2.0, help="poll interval")
    p_tsdb.add_argument(
        "--retention", type=float, default=None, metavar="S",
        help="drop raw history older than S simulated seconds",
    )
    p_tsdb.add_argument(
        "--downsample", type=float, default=None, metavar="S",
        help="downsample aged-out chunks into S-second windows (needs --retention)",
    )
    p_tsdb.add_argument(
        "--range", dest="range_", default=None, metavar="SRC:DST",
        help="print the stored samples for one watched path",
    )
    p_tsdb.add_argument("--start", type=float, default=None, help="range start time")
    p_tsdb.add_argument("--end", type=float, default=None, help="range end time")
    p_tsdb.add_argument(
        "--field", default="used_bps",
        help="column for --window aggregation (default used_bps)",
    )
    p_tsdb.add_argument(
        "--window", type=float, default=None, metavar="S",
        help="aggregate the --range query into S-second windows",
    )
    p_tsdb.add_argument(
        "--agg", choices=("min", "max", "mean", "last"), default="mean",
        help="aggregate for --window (default mean)",
    )

    p_int = sub.add_parser(
        "integrity",
        help="run a monitoring scenario and report measurement-integrity state",
    )
    p_int.add_argument(
        "specfile", nargs="?", default=None,
        help="topology spec (default: the paper's Figure-3 testbed)",
    )
    p_int.add_argument(
        "--host", default=None,
        help="host running the monitor (default: L on the built-in testbed)",
    )
    p_int.add_argument(
        "--watch", action="append", default=[], metavar="SRC:DST",
        help="host pair to watch (default on the testbed: S1:N1)",
    )
    p_int.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_int.add_argument(
        "--corrupt", action="append", default=[], metavar="AGENT:MODE:T0[:T1]",
        help="inject counter corruption on an agent "
             "(mode: random, stuck, or scaled; repeatable)",
    )
    p_int.add_argument(
        "--cross-check", action="store_true",
        help="poll both ends of two-ended connections and compare",
    )
    p_int.add_argument("--until", type=float, default=60.0, help="simulated seconds")
    p_int.add_argument("--interval", type=float, default=2.0, help="poll interval")
    p_int.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )

    p_dist = sub.add_parser(
        "distributed",
        help="run the fault-tolerant distributed monitoring plane",
    )
    p_dist.add_argument(
        "specfile", nargs="?", default=None,
        help="topology spec (default: the paper's Figure-3 testbed)",
    )
    p_dist.add_argument(
        "--coordinator", default=None,
        help="host receiving worker reports (default: L on the testbed)",
    )
    p_dist.add_argument(
        "--worker", action="append", default=[], metavar="HOST",
        help="polling worker host (repeatable; default on the testbed: "
             "L, S1 and S2)",
    )
    p_dist.add_argument(
        "--watch", action="append", default=[], metavar="SRC:DST",
        help="host pair to watch (default on the testbed: S1:N1)",
    )
    p_dist.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_dist.add_argument(
        "--crash", action="append", default=[], metavar="WORKER:T0[:T1]",
        help="crash a worker at T0, restarting at T1 (repeatable)",
    )
    p_dist.add_argument(
        "--hierarchy", type=int, default=0, metavar="PODS",
        help="run the two-level coordinator tree over a generated "
             "PODS-pod campus topology instead of a flat plane "
             "(ignores specfile/--coordinator/--worker)",
    )
    p_dist.add_argument(
        "--pod-switches", type=int, default=2, metavar="N",
        help="switches per pod with --hierarchy (default 2)",
    )
    p_dist.add_argument(
        "--pod-hosts", type=int, default=4, metavar="N",
        help="hosts per switch with --hierarchy (default 4)",
    )
    p_dist.add_argument(
        "--mode", choices=("get", "bulk", "per-varbind"), default=None,
        help="SNMP poll mode (default: bulk with --hierarchy, get otherwise)",
    )
    p_dist.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="max in-flight poll units per worker, 0 = unbounded "
             "(default: 8 with --hierarchy, 0 otherwise)",
    )
    p_dist.add_argument(
        "--delta", choices=("on", "off"), default=None,
        help="delta-encode shipped sample batches "
             "(default: on with --hierarchy, off otherwise)",
    )
    p_dist.add_argument("--until", type=float, default=40.0, help="simulated seconds")
    p_dist.add_argument("--interval", type=float, default=2.0, help="poll interval")

    p_stream = sub.add_parser(
        "stream",
        help="subscribe to streaming matrix events and continuous queries",
    )
    p_stream.add_argument(
        "specfile", nargs="?", default=None,
        help="topology spec (default: the paper's Figure-3 testbed)",
    )
    p_stream.add_argument(
        "--host", default=None,
        help="host running the monitor (default: L on the built-in testbed)",
    )
    p_stream.add_argument(
        "--pair", action="append", default=[], metavar="SRC:DST",
        help="host pair to subscribe to (repeatable; default: every pair)",
    )
    p_stream.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_stream.add_argument(
        "--policy", choices=("drop_oldest", "conflate", "block"),
        default="drop_oldest", help="queue overflow policy",
    )
    p_stream.add_argument(
        "--bound", type=int, default=256, help="subscriber queue bound"
    )
    p_stream.add_argument(
        "--significance",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="adaptive significance filtering (--no-significance delivers "
        "every change on every dirty pair)",
    )
    p_stream.add_argument(
        "--threshold", action="append", default=[],
        metavar="SRC:DST:MIN_KBPS[:SAMPLES]",
        help="continuous query: fire when available < MIN_KBPS for "
        ">= SAMPLES consecutive samples (default 2; repeatable)",
    )
    p_stream.add_argument(
        "--percentile", action="append", default=[],
        metavar="SRC:DST:P:UTIL",
        help="continuous query: fire when the pP utilization estimate "
        "over --window exceeds UTIL (0..1; repeatable)",
    )
    p_stream.add_argument(
        "--window", type=float, default=60.0,
        help="percentile query look-back window in seconds",
    )
    p_stream.add_argument(
        "--events", type=int, default=40,
        help="print at most this many events (the rest are summarised)",
    )
    p_stream.add_argument("--until", type=float, default=40.0, help="simulated seconds")
    p_stream.add_argument("--interval", type=float, default=2.0, help="poll interval")

    p_probe = sub.add_parser(
        "probe",
        help="active probe trains cross-validated against passive reports",
    )
    p_probe.add_argument(
        "specfile", nargs="?", default=None,
        help="topology spec (default: the paper's Figure-3 testbed)",
    )
    p_probe.add_argument(
        "--host", default=None,
        help="host running the monitor (default: L on the built-in testbed)",
    )
    p_probe.add_argument(
        "--watch", action="append", default=[], metavar="SRC:DST",
        help="host pair to watch and probe (repeatable; default on the "
        "testbed: S1:N1)",
    )
    p_probe.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_probe.add_argument(
        "--budget", type=float, default=0.02,
        help="probe load ceiling as a fraction of the narrowest link",
    )
    p_probe.add_argument("--count", type=int, default=16, help="probes per train")
    p_probe.add_argument(
        "--payload", type=int, default=1472, help="probe payload bytes"
    )
    p_probe.add_argument(
        "--timeout", type=float, default=1.0,
        help="seconds before an incomplete train is abandoned",
    )
    p_probe.add_argument(
        "--rtt", action="store_true",
        help="also run an RTT probe session (UDP echo) over each watch",
    )
    p_probe.add_argument("--until", type=float, default=40.0, help="simulated seconds")
    p_probe.add_argument("--interval", type=float, default=2.0, help="poll interval")

    p_disc = sub.add_parser("discover", help="SNMP topology discovery + verification")
    p_disc.add_argument("specfile")
    p_disc.add_argument("--host", required=True, help="host running discovery")
    p_disc.add_argument("--until", type=float, default=60.0)

    p_topo = sub.add_parser(
        "topology",
        help="live topology view: STP port roles/states, active paths, failover",
    )
    p_topo.add_argument("specfile")
    p_topo.add_argument("--host", required=True, help="host running the monitor")
    p_topo.add_argument("--until", type=float, default=12.0)
    p_topo.add_argument(
        "--fail-uplink",
        metavar="A:B[:AT]",
        default=None,
        help="kill the currently active uplink between switches A and B "
        "(at time AT, default halfway through the run) and show the "
        "re-converged state",
    )

    p_matrix = sub.add_parser("matrix", help="all-pairs bandwidth matrix")
    p_matrix.add_argument("specfile")
    p_matrix.add_argument("--host", required=True, help="host running the monitor")
    p_matrix.add_argument(
        "--load", action="append", default=[], metavar="SRC:DST:KBPS:T0:T1",
        help="UDP load to generate (repeatable)",
    )
    p_matrix.add_argument("--until", type=float, default=20.0)
    p_matrix.add_argument(
        "--metric", choices=("available", "used", "utilization"), default="available"
    )
    p_matrix.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="epoch-cached recomputation (--no-incremental recomputes "
        "every pair from the raw tables; the outputs must match)",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_validate(args) -> int:
    try:
        spec = parse_file(args.specfile)
    except (ParseError, LexError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    issues = validate_spec(spec, strict=False)
    for issue in issues:
        print(issue)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        print(f"{len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(spec.nodes)} nodes, {len(spec.connections)} connections, "
          f"{len(issues)} warning(s)")
    return 0


def cmd_show(args) -> int:
    try:
        spec = parse_file(args.specfile)
        validate_spec(spec, strict=True)
    except (ParseError, LexError, SpecValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(write_spec(spec), end="")
    graph = TopologyGraph(spec)
    print(f"# hosts: {', '.join(n.name for n in spec.hosts())}")
    print(f"# devices: {', '.join(n.name for n in spec.devices()) or '(none)'}")
    print(f"# connected: {graph.is_connected()}, loops: {graph.has_cycle()}")
    snmp = [n.name for n in spec.nodes if n.snmp_enabled]
    print(f"# snmp-enabled: {', '.join(snmp) or '(none)'}")
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import fig4, fig5, fig6, table2

    module = {"fig4": fig4, "fig5": fig5, "fig6": fig6, "table2": table2}[args.name]
    module.main(seed=args.seed)
    return 0


def _parse_watch(text: str):
    parts = text.split(":")
    if len(parts) != 2 or not all(parts):
        raise ValueError(f"--watch wants SRC:DST, got {text!r}")
    return parts[0], parts[1]


def _parse_load(text: str):
    parts = text.split(":")
    if len(parts) != 5:
        raise ValueError(f"--load wants SRC:DST:KBPS:T0:T1, got {text!r}")
    src, dst, rate, t0, t1 = parts
    return src, dst, float(rate), float(t0), float(t1)


def cmd_monitor(args) -> int:
    try:
        spec = parse_file(args.specfile)
        build = build_network(spec)
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.watch:
        print("error: at least one --watch SRC:DST is required", file=sys.stderr)
        return 2
    try:
        monitor = NetworkMonitor(build, args.host, poll_interval=args.interval)
        labels = [monitor.watch_path(*_parse_watch(w)) for w in args.watch]
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
    except (ValueError, TopologyError, KeyError, NetworkError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor.start()
    build.network.run(args.until)
    for label in labels:
        series = monitor.history.series(label)
        used = series.used()
        avail = series.available()
        print(f"{label}: {len(series)} reports; used max "
              f"{used.max() / 1000:.1f} KB/s, available min "
              f"{avail.min() / 1000:.1f} KB/s")
        if args.chart:
            from repro.experiments.scenarios import SeriesPair
            import numpy as np

            pair = SeriesPair(
                label=label,
                times=series.times(),
                measured_kbps=used / 1000.0,
                generated_kbps=np.zeros(len(series)),
            )
            print(render_pair(pair, title=f"measured used bandwidth on {label}"))
    stats = monitor.stats()
    print(f"snmp: {stats['snmp_requests']:.0f} requests, "
          f"{stats['snmp_timeouts']:.0f} timeouts")
    return 0


def _parse_qos(text: str):
    parts = text.split(":")
    if len(parts) != 3 or not all(parts):
        raise ValueError(f"--qos wants SRC:DST:MIN_KBPS, got {text!r}")
    return parts[0], parts[1], float(parts[2])


def _print_histogram_table(family, unit_scale: float, unit: str) -> None:
    header = (
        f"{'':>12} {'count':>7} {'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}"
    )
    print(header)
    for label_values, child in family.children():
        who = label_values[0] if label_values else "(all)"
        qs = child.quantiles()
        cells = " ".join(
            f"{qs[q] * unit_scale:>8.3f}{unit}" for q in (0.5, 0.9, 0.99)
        )
        peak = child.max * unit_scale if child.count else float("nan")
        print(f"{who:>12} {child.count:>7d} {cells} {peak:>8.3f}{unit}")


def cmd_telemetry(args) -> int:
    from repro.experiments.testbed import MONITOR_HOST, build_testbed
    from repro.rm.middleware import RmMiddleware
    from repro.rm.qos import QosRequirement
    from repro.telemetry import json_snapshot, prometheus_text

    try:
        if args.specfile is None:
            build = build_testbed()
            host = args.host or MONITOR_HOST
            watches = args.watch or ["S1:N1"]
        else:
            spec = parse_file(args.specfile)
            build = build_network(spec)
            host = args.host
            watches = args.watch
            if host is None:
                print("error: --host is required with a spec file", file=sys.stderr)
                return 2
            if not watches and not args.qos:
                print(
                    "error: at least one --watch SRC:DST (or --qos) is required",
                    file=sys.stderr,
                )
                return 2
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        monitor = NetworkMonitor(build, host, poll_interval=args.interval)
        for watch in watches:
            monitor.watch_path(*_parse_watch(watch))
        requirements = [
            QosRequirement(
                name=f"{src}->{dst}", src=src, dst=dst,
                min_available_bps=kbps * 1000.0,
            )
            for src, dst, kbps in (_parse_qos(q) for q in args.qos)
        ]
        if requirements:
            RmMiddleware(monitor, requirements)
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
    except (ValueError, TopologyError, KeyError, NetworkError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor.start()
    build.network.run(args.until)

    telemetry = monitor.telemetry
    if args.format == "prometheus":
        print(prometheus_text(telemetry.registry), end="")
        return 0
    if args.format == "json":
        print(json_snapshot(telemetry))
        return 0

    registry = telemetry.registry
    print(f"telemetry after {build.network.now:.1f} simulated seconds\n")
    print("SNMP round-trip time per agent:")
    _print_histogram_table(registry.get("snmp_rtt_seconds"), 1000.0, "ms")
    print("\nPoll cycle duration:")
    _print_histogram_table(registry.get("poll_cycle_seconds"), 1000.0, "ms")
    if "report_staleness_seconds" in registry:
        print("\nReport staleness:")
        _print_histogram_table(registry.get("report_staleness_seconds"), 1.0, "s ")
    print("\nEvent counts:")
    print(telemetry.events.format_counts())
    if telemetry.tracer.slow:
        print("\nSlow spans (> poll interval):")
        print(telemetry.tracer.format_slow())
    print("\nMonitor stats:")
    for key, value in monitor.stats().items():
        print(f"{key:>24}: {value:.0f}")
    hits = monitor.calculator.cache_hits
    recomputes = monitor.calculator.recomputes
    total = hits + recomputes
    if total:
        print(f"\nDataflow cache: {hits}/{total} measurement(s) served "
              f"from cache ({hits / total * 100.0:.1f}% hit rate)")
    print("\n--- Prometheus export ---")
    print(prometheus_text(registry), end="")
    return 0


def cmd_tsdb(args) -> int:
    from repro.experiments.testbed import MONITOR_HOST, build_testbed

    try:
        if args.specfile is None:
            build = build_testbed()
            host = args.host or MONITOR_HOST
            watches = args.watch or ["S1:N1"]
        else:
            spec = parse_file(args.specfile)
            build = build_network(spec)
            host = args.host
            watches = args.watch
            if host is None:
                print("error: --host is required with a spec file", file=sys.stderr)
                return 2
            if not watches:
                print("error: at least one --watch SRC:DST is required",
                      file=sys.stderr)
                return 2
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        monitor = NetworkMonitor(
            build, host, poll_interval=args.interval,
            history_retention_s=args.retention,
            history_downsample_s=args.downsample,
        )
        for watch in watches:
            monitor.watch_path(*_parse_watch(watch))
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
    except (ValueError, TopologyError, KeyError, NetworkError, MonitorError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor.start()
    build.network.run(args.until)

    db = monitor.history.db
    db.flush()  # seal head chunks so the byte counts reflect compression
    print(f"storage after {build.network.now:.1f} simulated seconds\n")
    header = (f"{'series':>14} {'samples':>8} {'dropped':>8} {'chunks':>7} "
              f"{'bytes':>9} {'raw':>9} {'ratio':>7}")
    print(header)

    def _row(name: str, s) -> None:
        print(f"{name:>14} {s.samples:>8d} {s.samples_dropped:>8d} "
              f"{s.chunks:>7d} {s.nbytes:>9d} {s.raw_nbytes:>9d} "
              f"{s.compression_ratio:>6.1f}x")

    for label in db.labels():
        _row(label, db.series_stats(label))
    total = db.stats()
    _row("(total)", total)
    down = total.downsampled_windows
    if down:
        print(f"\n{down} downsampled window(s) retained from "
              f"{total.samples_dropped} dropped sample(s)")

    if args.range_ is not None:
        label = args.range_
        if label not in db and ":" in label:
            src, dst = _parse_watch(label)
            label = f"{src}<->{dst}"
        if label not in db:
            print(f"error: no series {label!r} (have {db.labels()})",
                  file=sys.stderr)
            return 2
        if args.field not in db.fields:
            print(f"error: no field {args.field!r} (have {list(db.fields)})",
                  file=sys.stderr)
            return 2
        print(f"\n{label}:")
        if args.window is not None:
            starts, values = db.aggregate(
                label, args.field, args.window, args.agg,
                t_start=args.start, t_end=args.end,
            )
            print(f"{'window':>10} {args.agg + '(' + args.field + ')':>24}")
            for t, v in zip(starts, values):
                print(f"{t:>10.1f} {v:>24.1f}")
        else:
            times, columns = db.range(label, args.start, args.end)
            names = list(db.fields)
            print(f"{'time':>10} " + " ".join(f"{n:>14}" for n in names))
            for i, t in enumerate(times):
                cells = " ".join(f"{columns[n][i]:>14.1f}" for n in names)
                print(f"{t:>10.2f} {cells}")
    return 0


def _parse_corrupt(text: str):
    parts = text.split(":")
    if len(parts) not in (3, 4) or not all(parts):
        raise ValueError(f"--corrupt wants AGENT:MODE:T0[:T1], got {text!r}")
    agent, mode = parts[0], parts[1]
    t0 = float(parts[2])
    t1 = float(parts[3]) if len(parts) == 4 else None
    return agent, mode, t0, t1


def cmd_integrity(args) -> int:
    import json as json_module

    from repro.experiments.testbed import MONITOR_HOST, build_testbed
    from repro.simnet.faults import CounterCorruption, FaultError, StuckCounters
    from repro.telemetry.events import (
        COUNTER_WRAP_RISK,
        CROSS_CHECK_MISMATCH,
        INTEGRITY_VIOLATION,
        QUARANTINE_ENTER,
        QUARANTINE_EXIT,
    )

    try:
        if args.specfile is None:
            build = build_testbed()
            host = args.host or MONITOR_HOST
            watches = args.watch or ["S1:N1"]
        else:
            spec = parse_file(args.specfile)
            build = build_network(spec)
            host = args.host
            watches = args.watch
            if host is None:
                print("error: --host is required with a spec file", file=sys.stderr)
                return 2
            if not watches:
                print("error: at least one --watch SRC:DST is required",
                      file=sys.stderr)
                return 2
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        monitor = NetworkMonitor(
            build, host, poll_interval=args.interval,
            cross_check=args.cross_check,
        )
        for watch in watches:
            monitor.watch_path(*_parse_watch(watch))
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
        for corrupt_text in args.corrupt:
            agent_name, mode, t0, t1 = _parse_corrupt(corrupt_text)
            if agent_name not in build.agents:
                raise ValueError(f"no SNMP agent on {agent_name!r}")
            agent = build.agents[agent_name]
            if mode == "stuck":
                StuckCounters(
                    build.network.sim, agent, at=t0, until=t1,
                    events=monitor.telemetry.events,
                )
            else:
                CounterCorruption(
                    build.network.sim, agent, at=t0, until=t1, mode=mode,
                    events=monitor.telemetry.events,
                )
    except (ValueError, TopologyError, KeyError, NetworkError,
            FaultError, MonitorError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor.start()
    build.network.run(args.until)

    pipeline = monitor.integrity
    if pipeline is None:
        print("error: integrity pipeline is disabled", file=sys.stderr)
        return 1
    status = pipeline.status()
    bus = monitor.telemetry.events
    event_counts = {
        kind: bus.count(kind)
        for kind in (INTEGRITY_VIOLATION, CROSS_CHECK_MISMATCH,
                     QUARANTINE_ENTER, QUARANTINE_EXIT, COUNTER_WRAP_RISK)
    }
    stats = monitor.stats()
    integrity_stats = {
        key: stats[key]
        for key in ("integrity_violations", "integrity_rejected",
                    "integrity_quarantined", "cross_check_mismatches", "samples")
    }

    if args.format == "json":
        print(json_module.dumps(
            {"status": status, "events": event_counts, "stats": integrity_stats},
            indent=2,
        ))
        return 0

    print(f"integrity after {build.network.now:.1f} simulated seconds\n")
    if status["interfaces"]:
        print(f"{'interface':>14} {'trust':>7} {'state':>12} "
              f"{'violations':>11} {'suspects':>9}")
        for row in status["interfaces"]:
            name = f"{row['node']}:{row['if_index']}"
            state = "QUARANTINED" if row["quarantined"] else (
                "wrap-risk" if row["wrap_risk"] else "ok")
            print(f"{name:>14} {row['trust']:>7.2f} {state:>12} "
                  f"{row['violations']:>11d} {row['suspects']:>9d}")
    else:
        print("no integrity verdicts recorded (all samples clean)")
    if status["pairs"]:
        print("\ncross-checked pairs:")
        for row in status["pairs"]:
            streak = row["mismatch_streak"]
            tail = f"  [mismatch streak {streak}]" if streak else ""
            print(f"  {row['pair']}{tail}")
    print("\nintegrity events:")
    for kind, count in event_counts.items():
        print(f"{kind:>24}: {count}")
    print("\nintegrity stats:")
    for key, value in integrity_stats.items():
        print(f"{key:>24}: {value:.0f}")
    return 0


def cmd_discover(args) -> int:
    from repro.core.discovery import TopologyDiscoverer
    from repro.simnet.network import BROADCAST_IP
    from repro.snmp.manager import SnmpManager

    try:
        spec = parse_file(args.specfile)
        build = build_network(spec)
    except (ParseError, LexError, SpecValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    net = build.network
    net.run(1.0)
    for host in net.hosts.values():
        host.create_socket().sendto(10, (BROADCAST_IP, 520))
    net.run(2.0)
    try:
        manager = SnmpManager(net.host(args.host))
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    candidates = [
        (node.name, net.ip_of(node.name))
        for node in spec.nodes
        if node.snmp_enabled and node.name in build.agents
    ]
    box = {}
    TopologyDiscoverer(manager, candidates).discover(
        lambda result: box.update(result=result)
    )
    net.run(net.now + args.until)
    if "result" not in box:
        print("error: discovery did not complete in time", file=sys.stderr)
        return 1
    result = box["result"]
    for att in result.attachments:
        stations = list(att.known_nodes) + [str(m) for m in att.unknown_macs]
        shared = " [shared]" if att.shared_segment else ""
        print(f"{att.switch} port {att.port}: {', '.join(stations)}{shared}")
    findings = result.verify_against(spec)
    for finding in findings:
        print(finding)
    mismatches = [f for f in findings if f.startswith(("missing", "mismatch"))]
    return 1 if mismatches else 0


def cmd_topology(args) -> int:
    from itertools import combinations

    from repro.core.traversal import NoPathError, find_path, pair_redundant
    from repro.simnet.faults import FaultError, LinkFailure
    from repro.telemetry.events import PATH_REROUTED, TOPOLOGY_CHANGED

    fail_between = None
    fail_at = None
    if args.fail_uplink is not None:
        parts = args.fail_uplink.split(":")
        if len(parts) not in (2, 3) or not all(parts):
            print(
                f"error: --fail-uplink wants A:B[:AT], got {args.fail_uplink!r}",
                file=sys.stderr,
            )
            return 2
        fail_between = (parts[0], parts[1])
        fail_at = float(parts[2]) if len(parts) == 3 else args.until / 2.0
    try:
        spec = parse_file(args.specfile)
        build = build_network(spec)
        monitor = NetworkMonitor(build, args.host, poll_jitter=0.0)
        monitor.enable_topology_sync()
    except (ParseError, LexError, SpecValidationError, TopologyError,
            NetworkError, MonitorError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    net = build.network
    graph = monitor.graph
    hosts = [n.name for n in spec.hosts()]
    for a, b in combinations(hosts, 2):
        monitor.watch_path(a, b)  # watched pairs get reroute events
    net.announce_hosts(at=1.0)
    monitor.start(at=2.0)
    if fail_between is not None:
        a, b = fail_between
        net.run(max(fail_at - 0.1, net.now))
        uplinks = [
            c
            for c in spec.connections
            if {c.end_a.node, c.end_b.node} == {a, b}
        ]
        blocked = graph.blocked_connections()
        active = [c for c in uplinks if c not in blocked]
        if not active:
            print(f"error: no active uplink between {a!r} and {b!r}",
                  file=sys.stderr)
            return 1
        try:
            LinkFailure.between(
                net, a, b, at=fail_at,
                index=uplinks.index(active[0]),
                events=monitor.telemetry.events,
            )
        except FaultError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"failing active uplink {active[0]} at {fail_at:.1f}s")
    net.run(args.until)

    print(f"\n== spanning tree at {net.now:.1f}s ==")
    stp_switches = [
        (name, net.switches[name])
        for name in sorted(net.switches)
        if net.switches[name].stp is not None
    ]
    if not stp_switches:
        print("(no STP-enabled switches)")
    for name, switch in stp_switches:
        root = " (root bridge)" if switch.stp.is_root else ""
        print(f"{name}{root}:")
        for if_index, role, state in switch.stp.port_table():
            print(f"  port{if_index}: {role:<10} {state}")
    blocked = graph.blocked_connections()
    print(
        "blocked connections: "
        + (", ".join(str(c) for c in blocked) if blocked else "none")
    )

    print(f"\n== active paths (topology epoch {graph.topology_epoch}) ==")
    for a, b in combinations(hosts, 2):
        try:
            path = find_path(graph, a, b)
        except NoPathError:
            print(f"{a} <-> {b}: UNREACHABLE")
            continue
        flag = "redundant" if pair_redundant(graph, a, b) else "single-path"
        print(f"{a} <-> {b} [{flag}]: " + " | ".join(str(c) for c in path))

    events = monitor.telemetry.events
    changes = events.count(TOPOLOGY_CHANGED)
    reroutes = events.count(PATH_REROUTED)
    print(f"\n{changes} topology change(s), {reroutes} path reroute(s)")
    for event in events.events(PATH_REROUTED):
        attrs = event.attrs
        print(
            f"  [{event.time:.1f}s] {attrs['watch']}: {attrs['old_path']}"
            f" ==> {attrs['new_path']}"
        )
    return 0


def cmd_matrix(args) -> int:
    from repro.core.matrix import BandwidthMatrix, MatrixError

    try:
        spec = parse_file(args.specfile)
        build = build_network(spec)
        monitor = NetworkMonitor(build, args.host)
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
        monitor.calculator.incremental = args.incremental
        matrix = BandwidthMatrix(
            spec,
            monitor.calculator,
            incremental=args.incremental,
            graph=monitor.graph,
        )
    except (ParseError, LexError, SpecValidationError, TopologyError,
            NetworkError, MatrixError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    monitor.start()
    build.network.run(args.until)
    snapshot = matrix.snapshot(time=build.network.now)
    print(snapshot.format_table(args.metric))
    worst = snapshot.worst_pair()
    if worst is not None:
        a, b, available = worst
        print(f"\ntightest pair: {a} <-> {b} "
              f"({available / 1000:.1f} KB/s available)")
    if args.incremental:
        calc = monitor.calculator
        total = calc.cache_hits + calc.recomputes
        rate = (calc.cache_hits / total * 100.0) if total else 0.0
        print(f"\ndataflow: {calc.cache_hits} cache hit(s), "
              f"{calc.recomputes} recompute(s) ({rate:.1f}% hit rate), "
              f"{matrix.dirty_pairs_last} dirty pair(s) in last snapshot")
    return 0


def _parse_threshold(text: str):
    parts = text.split(":")
    if len(parts) not in (3, 4) or not all(parts):
        raise ValueError(
            f"--threshold wants SRC:DST:MIN_KBPS[:SAMPLES], got {text!r}"
        )
    samples = int(parts[3]) if len(parts) == 4 else 2
    return parts[0], parts[1], float(parts[2]), samples


def _parse_percentile(text: str):
    parts = text.split(":")
    if len(parts) != 4 or not all(parts):
        raise ValueError(f"--percentile wants SRC:DST:P:UTIL, got {text!r}")
    return parts[0], parts[1], float(parts[2]), float(parts[3])


def cmd_stream(args) -> int:
    from repro.experiments.testbed import MONITOR_HOST, build_testbed
    from repro.stream import (
        OverflowPolicy,
        PercentileQuery,
        QueryError,
        StreamError,
        ThresholdQuery,
    )

    try:
        if args.specfile is None:
            build = build_testbed()
            host = args.host or MONITOR_HOST
        else:
            spec = parse_file(args.specfile)
            build = build_network(spec)
            host = args.host
            if host is None:
                print("error: --host is required with a spec file", file=sys.stderr)
                return 2
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        monitor = NetworkMonitor(build, host, poll_interval=args.interval)
        publisher = monitor.enable_streaming(significance=args.significance)
        pairs = [_parse_watch(p) for p in args.pair] or None
        subscription = publisher.manager.subscribe(
            "cli",
            pairs=pairs,
            policy=OverflowPolicy(args.policy),
            bound=args.bound,
        )
        for i, text in enumerate(args.threshold):
            src, dst, kbps, samples = _parse_threshold(text)
            publisher.register_query(
                ThresholdQuery(
                    f"threshold{i}:{src}<->{dst}",
                    metric="available",
                    op="<",
                    threshold=kbps * 1000.0,
                    for_samples=samples,
                    pairs=[(src, dst)],
                ),
                "cli",
            )
        for i, text in enumerate(args.percentile):
            src, dst, p, util = _parse_percentile(text)
            publisher.register_query(
                PercentileQuery(
                    f"p{round(p * 100)}:{src}<->{dst}",
                    p=p,
                    metric="utilization",
                    window_s=args.window,
                    interval_s=args.interval,
                    threshold=util,
                    op=">",
                    pairs=[(src, dst)],
                ),
                "cli",
            )
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
    except (ValueError, TopologyError, KeyError, NetworkError,
            StreamError, QueryError, MonitorError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor.start()
    build.network.run(args.until)

    events = subscription.drain()
    print(f"stream after {build.network.now:.1f} simulated seconds: "
          f"{len(events)} pending event(s) "
          f"[policy {args.policy}, bound {args.bound}]\n")
    for event in events[: args.events]:
        print(event)
    if len(events) > args.events:
        print(f"... and {len(events) - args.events} more")
    stats = publisher.stats()
    print("\nstream counters:")
    for key in ("subscribers", "delivered", "suppressed", "dropped",
                "cycles", "epoch", "queries", "filter_resets"):
        print(f"{key:>16}: {stats[key]}")
    sub_stats = subscription.stats()
    print("\nsubscription 'cli': "
          f"delivered {sub_stats['delivered']}, dropped {sub_stats['dropped']}, "
          f"conflated {sub_stats['conflated']}, "
          f"high watermark {sub_stats['high_watermark']}")
    return 0


def _parse_crash(text: str):
    parts = text.split(":")
    if len(parts) not in (2, 3) or not parts[0]:
        raise ValueError(f"--crash wants WORKER:T0[:T1], got {text!r}")
    worker = parts[0]
    t0 = float(parts[1])
    t1 = float(parts[2]) if len(parts) == 3 else None
    return worker, t0, t1


def cmd_distributed(args) -> int:
    from repro.core.distributed import DistributedMonitor
    from repro.experiments.testbed import MONITOR_HOST, build_testbed
    from repro.simnet.faults import WorkerCrash

    hierarchy = args.hierarchy
    mode = args.mode or ("bulk" if hierarchy else "get")
    window = args.window if args.window is not None else (8 if hierarchy else 0)
    delta = (args.delta == "on") if args.delta else bool(hierarchy)
    try:
        if hierarchy:
            from repro.core.hierarchy import HierarchicalMonitor
            from repro.experiments.scale import hierarchy_plan, scale_spec

            spec = scale_spec(
                hierarchical=hierarchy,
                switches=args.pod_switches,
                hosts_per_switch=args.pod_hosts,
                host_agents=False,
            )
            plan = hierarchy_plan(
                hierarchy,
                switches=args.pod_switches,
                hosts_per_switch=args.pod_hosts,
            )
            build = build_network(spec)
            coordinator = plan["root"]
            watches = args.watch or [
                f"p0h0_0:p{hierarchy - 1}"
                f"h{args.pod_switches - 1}_{args.pod_hosts - 1}"
            ]
        elif args.specfile is None:
            build = build_testbed()
            coordinator = args.coordinator or MONITOR_HOST
            workers = args.worker or ["L", "S1", "S2"]
            watches = args.watch or ["S1:N1"]
        else:
            spec = parse_file(args.specfile)
            build = build_network(spec)
            coordinator = args.coordinator
            workers = args.worker
            watches = args.watch
            if coordinator is None or not workers:
                print(
                    "error: --coordinator and at least one --worker are "
                    "required with a spec file",
                    file=sys.stderr,
                )
                return 2
            if not watches:
                print("error: at least one --watch SRC:DST is required",
                      file=sys.stderr)
                return 2
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if hierarchy:
            dm = HierarchicalMonitor(
                build,
                plan,
                poll_interval=args.interval,
                poll_mode=mode,
                pipeline_window=window,
                delta_shipping=delta,
            )
        else:
            dm = DistributedMonitor(
                build,
                coordinator,
                workers,
                poll_interval=args.interval,
                poll_mode=mode,
                pipeline_window=window,
                delta_shipping=delta,
            )
        labels = [dm.watch_path(*_parse_watch(w)) for w in watches]
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
        for crash_text in args.crash:
            worker, t0, t1 = _parse_crash(crash_text)
            WorkerCrash(
                build.network.sim, dm.workers[worker], at=t0, until=t1,
                events=dm.telemetry.events,
            )
    except (ValueError, TopologyError, KeyError, NetworkError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dm.start()
    build.network.run(args.until)

    print(f"distributed plane after {build.network.now:.1f} simulated seconds")
    print(f"coordinator {coordinator}; workers: "
          + ", ".join(f"{w} [{s}]" for w, s in sorted(dm.worker_states().items())))
    print("\nassignments:")
    for worker in sorted(dm.workers):
        targets = ", ".join(dm.targets_of(worker)) or "(spare)"
        print(f"  {worker:>8}: {targets}")
    if dm.leases.transitions:
        print("\nlease transitions:")
        for transition in dm.leases.transitions:
            print(f"  {transition}")
    if hierarchy:
        print("\nshard economics:")
        for name in sorted(dm.leaves):
            leaf = dm.leaves[name]
            shipper = leaf.shipper
            ratio = (
                f"{shipper.keyframes_shipped}/{shipper.batches_shipped}"
                if shipper.batches_shipped else "0/0"
            )
            print(f"  {name:>8}: {leaf.requests_sent} SNMP exchanges, "
                  f"uplink keyframes/batches {ratio}, "
                  f"delta reduction {shipper.traffic_reduction:.1%}, "
                  f"pipeline window peak {leaf.window_peak}")
    elif window:
        print("\npipeline windows:")
        for name in sorted(dm.workers):
            poller = dm.workers[name].poller
            print(f"  {name:>8}: peak {poller.window_peak}, "
                  f"deferred {poller.window_deferred}, "
                  f"overruns {poller.window_overruns}")
    print("\nwatched paths:")
    for label in labels:
        series = dm.history.series(label)
        trusted = sum(1 for r in series.reports if r.trusted)
        used = series.used()
        print(f"  {label}: {len(series)} reports ({trusted} trusted), "
              f"used max {used.max() / 1000:.1f} KB/s")
    print("\nplane counters:")
    for key, value in sorted(dm.stats().items()):
        print(f"  {key:<32} {value:g}")
    return 0


def cmd_probe(args) -> int:
    from repro.core.latency import PathProber
    from repro.experiments.testbed import MONITOR_HOST, build_testbed
    from repro.probe import ProbeError
    from repro.simnet.sockets import EchoService

    try:
        if args.specfile is None:
            build = build_testbed()
            host = args.host or MONITOR_HOST
            watches = args.watch or ["S1:N1"]
        else:
            spec = parse_file(args.specfile)
            build = build_network(spec)
            host = args.host
            watches = args.watch
            if host is None:
                print("error: --host is required with a spec file", file=sys.stderr)
                return 2
            if not watches:
                print("error: at least one --watch SRC:DST is required",
                      file=sys.stderr)
                return 2
    except (ParseError, LexError, SpecValidationError, TopologyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rtt_sessions = []
    try:
        monitor = NetworkMonitor(build, host, poll_interval=args.interval)
        labels = [monitor.watch_path(*_parse_watch(w)) for w in watches]
        prober = monitor.enable_probing(
            budget_fraction=args.budget,
            count=args.count,
            payload_size=args.payload,
            timeout=args.timeout,
        )
        for load_text in args.load:
            src, dst, rate, t0, t1 = _parse_load(load_text)
            StaircaseLoad(
                build.network.host(src),
                build.network.ip_of(dst),
                StepSchedule.pulse(t0, t1, rate * KBPS),
            ).start()
        if args.rtt:
            for watch in watches:
                src, dst = _parse_watch(watch)
                EchoService(build.network.host(dst))
                session = PathProber(
                    build.network.host(src), build.network.ip_of(dst)
                )
                rtt_sessions.append((f"{src}<->{dst}", session))
                session.start()
    except (ValueError, TopologyError, KeyError, NetworkError,
            ProbeError, MonitorError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor.start()
    build.network.run(args.until)

    print(f"probe plane after {build.network.now:.1f} simulated seconds "
          f"[budget {args.budget:.1%}, "
          f"round interval {prober.round_interval:.2f}s]\n")
    print("latest trains:")
    for label in labels:
        report = prober.reports.get(label)
        print(f"  {report.summary()}" if report is not None
              else f"  {label}: no train completed")
    if args.rtt:
        print("\nrtt sessions:")
        for label, session in rtt_sessions:
            stats = session.stats
            if stats is None or not len(stats.rtts_s):
                print(f"  {label}: no echoes returned")
            else:
                print(f"  {label}: rtt min/mean/max "
                      f"{stats.min_s * 1000:.2f}/{stats.mean_s * 1000:.2f}/"
                      f"{stats.max_s * 1000:.2f} ms, loss {stats.loss_rate:.0%}, "
                      f"jitter {stats.jitter_s * 1e6:.0f}us")
    print("\ncross-validation:")
    findings = prober.findings()
    if not findings:
        print("  active and passive planes agree on every watched path")
    for finding in findings:
        print(f"  {finding}")
    print("\nprobe counters:")
    for key, value in sorted(prober.stats().items()):
        if key in ("trains_per_path", "active_disagreements"):
            continue
        print(f"  {key:<24} {value}")
    return 0


_COMMANDS = {
    "validate": cmd_validate,
    "show": cmd_show,
    "experiment": cmd_experiment,
    "monitor": cmd_monitor,
    "telemetry": cmd_telemetry,
    "tsdb": cmd_tsdb,
    "integrity": cmd_integrity,
    "distributed": cmd_distributed,
    "discover": cmd_discover,
    "topology": cmd_topology,
    "matrix": cmd_matrix,
    "stream": cmd_stream,
    "probe": cmd_probe,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
