"""Incremental dataflow: epoch stamping and incremental ≡ full recompute.

The cache-coherence contract (see ``src/repro/core/dataflow.py``): the
incremental pipeline may only ever change how much work is done, never a
single output bit.  The hypothesis test at the bottom drives randomized
sample / link-flap / health / quarantine sequences through an incremental
matrix and a naive from-scratch one and requires exact report equality
after every operation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import BandwidthCalculator
from repro.core.health import AgentHealthTracker
from repro.core.linkstate import LinkStateRegistry
from repro.core.matrix import BandwidthMatrix, MatrixError, MatrixSnapshot
from repro.core.poller import InterfaceRates, RateTable
from repro.core.traversal import NoPathError, find_all_paths, find_path
from repro.experiments.scale import populate_rates, scale_spec
from repro.integrity.quarantine import QuarantineManager
from repro.integrity.validators import IntegrityVerdict, Severity
from repro.topology.graph import TopologyGraph


def sample(node, if_index, time, bps=1e6):
    return InterfaceRates(
        node=node,
        if_index=if_index,
        time=time,
        interval=2.0,
        in_bytes_per_s=bps / 2.0,
        out_bytes_per_s=bps / 2.0,
        in_pkts_per_s=bps / 1500.0,
        out_pkts_per_s=bps / 1500.0,
    )


# ----------------------------------------------------------------------
# Epoch sources
# ----------------------------------------------------------------------
class TestEpochSources:
    def test_rate_table_bumps_per_ingest(self):
        rates = RateTable()
        assert rates.clock == 0
        assert rates.epoch("A", 1) == 0
        rates.update(sample("A", 1, 0.0))
        assert rates.epoch("A", 1) == 1
        rates.update(sample("B", 2, 0.0))
        assert rates.epoch("B", 2) == 2
        assert rates.epoch("A", 1) == 1  # untouched key keeps its stamp
        rates.update(sample("A", 1, 2.0))
        assert rates.epoch("A", 1) == 3
        assert rates.clock == 3

    def test_link_state_bumps_only_on_flips(self):
        spec = scale_spec(switches=1, hosts_per_switch=2)
        ls = LinkStateRegistry(spec, {})
        conn = spec.connections[0]
        assert ls.epoch_of(conn) == 0
        ls.mark_down(conn)
        first = ls.epoch_of(conn)
        assert first == 1
        ls.mark_down(conn)  # redundant: no flip, no bump
        assert ls.epoch_of(conn) == first
        ls.mark_up(conn)
        assert ls.epoch_of(conn) == 2
        ls.mark_up(conn)
        assert ls.epoch_of(conn) == 2
        assert ls.clock == 2

    def test_oper_status_bumps_only_on_flips(self):
        spec = scale_spec(switches=1, hosts_per_switch=2)
        ls = LinkStateRegistry(spec, {})
        conn = spec.connections[0]
        end = conn.end_a
        node = spec.node(end.node)
        from repro.core.counters import if_index_of

        idx = if_index_of(node, end.interface)
        ls.apply_oper_status(end.node, idx, up=True)  # already up
        assert ls.clock == 0
        ls.apply_oper_status(end.node, idx, up=False)
        assert ls.clock == 1
        ls.apply_oper_status(end.node, idx, up=False)
        assert ls.clock == 1

    def test_health_bumps_on_transitions_only(self):
        health = AgentHealthTracker(suspect_after=2, dead_after=3)
        assert health.epoch_of("A") == 0
        health.record_success("A", 1.0)  # HEALTHY -> HEALTHY: no bump
        assert health.epoch_of("A") == 0
        health.record_failure("A", 2.0)  # -> DEGRADED
        assert health.epoch_of("A") == 1
        health.record_failure("A", 3.0)  # -> SUSPECT
        assert health.epoch_of("A") == 2
        health.record_failure("A", 4.0)  # -> DEAD
        assert health.epoch_of("A") == 3
        health.record_failure("A", 5.0)  # DEAD -> DEAD: no bump
        assert health.epoch_of("A") == 3
        assert health.clock == 3

    def test_quarantine_bumps_on_enter_and_release_only(self):
        qm = QuarantineManager()

        def violate(t):
            qm.apply(
                "A",
                1,
                [IntegrityVerdict("rate_bound", Severity.VIOLATION, "A", 1, t)],
                t,
            )

        violate(1.0)  # score 0.5: not yet quarantined
        assert qm.epoch_of("A", 1) == 0
        violate(2.0)  # score 0.25 < 0.3: enters quarantine
        assert qm.is_quarantined("A", 1)
        assert qm.epoch_of("A", 1) == 1
        violate(3.0)  # deeper, but already quarantined: no bump
        assert qm.epoch_of("A", 1) == 1
        for i in range(8):  # recover to >= 0.8: releases once
            qm.record_clean("A", 1, 4.0 + i)
        assert not qm.is_quarantined("A", 1)
        assert qm.epoch_of("A", 1) == 2
        assert qm.clock == 2


# ----------------------------------------------------------------------
# Traversal: iterative DFS + path memoization
# ----------------------------------------------------------------------
class TestTraversal:
    def test_deep_chain_does_not_hit_recursion_limit(self):
        # 1200 chained switches: the old recursive DFS would raise
        # RecursionError well before reaching the far end.
        spec = scale_spec(switches=1200, hosts_per_switch=1, arity=1)
        path = find_path(spec, "h0_0", "h1199_0")
        assert len(path) == 1201  # host leg + 1199 inter-switch + host leg

    def test_find_all_paths_iterative_matches_semantics(self):
        spec = scale_spec(switches=3, hosts_per_switch=2, arity=1)
        paths = find_all_paths(spec, "h0_0", "h2_1")
        assert len(paths) == 1  # trees have exactly one simple path
        assert paths[0] == find_path(spec, "h0_0", "h2_1")

    def test_graph_path_cache_hit_and_invalidate(self):
        spec = scale_spec(switches=2, hosts_per_switch=2, arity=1)
        graph = TopologyGraph(spec)
        first = find_path(graph, "h0_0", "h1_1")
        hit, stored = graph.cached_path("h0_0", "h1_1")
        assert hit and list(stored) == first
        again = find_path(graph, "h0_0", "h1_1")
        assert again == first
        assert again is not first  # callers get their own list
        epoch = graph.topology_epoch
        graph.invalidate_paths()
        assert graph.topology_epoch == epoch + 1
        assert graph.cached_path("h0_0", "h1_1") == (False, None)

    def test_disconnection_is_memoized_as_no_path(self):
        from repro.topology.model import (
            InterfaceSpec,
            NodeSpec,
            TopologySpec,
        )

        spec = TopologySpec(
            "islands",
            [
                NodeSpec("a", interfaces=[InterfaceSpec("eth0")]),
                NodeSpec("b", interfaces=[InterfaceSpec("eth0")]),
            ],
            [],
        )
        graph = TopologyGraph(spec)
        with pytest.raises(NoPathError):
            find_path(graph, "a", "b")
        hit, stored = graph.cached_path("a", "b")
        assert hit and stored is None
        with pytest.raises(NoPathError):  # served from the memo
            find_path(graph, "a", "b")

    def test_bare_spec_calls_do_not_populate_any_cache(self):
        spec = scale_spec(switches=2, hosts_per_switch=2, arity=1)
        find_path(spec, "h0_0", "h1_1")  # builds a throwaway graph


# ----------------------------------------------------------------------
# Vectorized MatrixSnapshot.values()
# ----------------------------------------------------------------------
class TestMatrixValues:
    def _snapshot(self):
        spec = scale_spec(switches=2, hosts_per_switch=3, arity=1, hub_pockets=1)
        rates = RateTable()
        populate_rates(spec, rates, time=0.0)
        calc = BandwidthCalculator(spec, rates)
        return BandwidthMatrix(spec, calc).snapshot(2.0)

    def test_matches_scalar_reference(self):
        snap = self._snapshot()
        for metric in ("available", "used", "utilization"):
            got = snap.values(metric)
            n = len(snap.hosts)
            want = np.full((n, n), np.nan)
            for i, a in enumerate(snap.hosts):
                for j, b in enumerate(snap.hosts):
                    if i >= j:
                        continue
                    report = snap.report(a, b)
                    if report is None:
                        continue
                    if metric == "available":
                        value = report.available_bps
                    elif metric == "used":
                        value = report.used_bps
                    else:
                        bn = report.bottleneck
                        value = bn.utilization if bn else 0.0
                    want[i, j] = want[j, i] = value
            assert np.array_equal(got, want, equal_nan=True)

    def test_diagonal_and_disconnected_stay_nan(self):
        snap = self._snapshot()
        values = snap.values()
        assert np.all(np.isnan(np.diag(values)))
        disconnected = MatrixSnapshot(
            hosts=["a", "b"], time=0.0, reports={("a", "b"): None}
        )
        assert np.all(np.isnan(disconnected.values()))

    def test_unknown_metric_raises(self):
        snap = self._snapshot()
        with pytest.raises(MatrixError):
            snap.values("latency")

    def test_returned_array_is_a_private_copy(self):
        snap = self._snapshot()
        first = snap.values()
        first[0, 1] = -1.0
        assert snap.values()[0, 1] != -1.0


# ----------------------------------------------------------------------
# Incremental matrix bookkeeping
# ----------------------------------------------------------------------
class TestIncrementalMatrix:
    def test_same_time_snapshot_reuses_reports_verbatim(self):
        spec = scale_spec(switches=2, hosts_per_switch=3, arity=1)
        rates = RateTable()
        populate_rates(spec, rates, time=0.0)
        calc = BandwidthCalculator(spec, rates)
        matrix = BandwidthMatrix(spec, calc)
        s1 = matrix.snapshot(2.0)
        s2 = matrix.snapshot(2.0)
        for key, report in s1.reports.items():
            assert s2.reports[key] is report
        assert matrix.pair_cache_hits == len(s1.reports)

    def test_dirty_connection_recomputes_only_crossing_pairs(self):
        spec = scale_spec(switches=2, hosts_per_switch=3, arity=1)
        rates = RateTable()
        populate_rates(spec, rates, time=0.0)
        calc = BandwidthCalculator(spec, rates)
        matrix = BandwidthMatrix(spec, calc)
        matrix.snapshot(2.0)
        # Touch one host leg: pairs involving that host are dirty, the
        # rest reuse verbatim at the same instant.
        conn = spec.connections[0]  # h0_0 <-> sw0
        from repro.core.counters import resolve_counter_source

        source = resolve_counter_source(spec, conn)
        rates.update(sample(source.node, source.if_index, 2.0, bps=5e6))
        before_hits = matrix.pair_cache_hits
        snap = matrix.snapshot(2.0)
        n = len(matrix.hosts)
        dirty = matrix.dirty_pairs_last
        assert dirty == n - 1  # every pair touching h0_0
        assert matrix.pair_cache_hits - before_hits == len(snap.reports) - dirty

    def test_topology_invalidation_rebuilds_paths(self):
        spec = scale_spec(switches=2, hosts_per_switch=3, arity=1)
        rates = RateTable()
        populate_rates(spec, rates, time=0.0)
        calc = BandwidthCalculator(spec, rates)
        matrix = BandwidthMatrix(spec, calc)
        s1 = matrix.snapshot(2.0)
        matrix.graph.invalidate_paths()
        s2 = matrix.snapshot(2.0)  # must not reuse pre-invalidation state
        assert s1.reports == s2.reports
        for key in s1.reports:
            assert s2.reports[key] is not s1.reports[key]


# ----------------------------------------------------------------------
# Property: incremental ≡ full recompute, bit-identical
# ----------------------------------------------------------------------
# Small-but-complete topology: two switches, a hub pocket, switch and hub
# rules, shared inter-switch uplink on most paths.
_SPEC = scale_spec(
    switches=2, hosts_per_switch=2, arity=1, hub_pockets=1, hub_hosts=2,
    redundant_uplinks=1,  # a parallel uplink so topology churn can reroute
)
_SOURCES = []
for _conn in _SPEC.connections:
    from repro.core.counters import resolve_counter_source as _rcs

    _src = _rcs(_SPEC, _conn)
    if _src is not None and _src.key() not in {s.key() for s in _SOURCES}:
        _SOURCES.append(_src)
_NODES = sorted({s.node for s in _SOURCES})

_OPS = st.one_of(
    st.tuples(
        st.just("sample"),
        st.integers(0, len(_SOURCES) - 1),
        st.floats(0.0, 1e7, allow_nan=False),
    ),
    st.tuples(st.just("advance"), st.just(0), st.just(0.0)),
    st.tuples(st.just("down"), st.integers(0, len(_SPEC.connections) - 1), st.just(0.0)),
    st.tuples(st.just("up"), st.integers(0, len(_SPEC.connections) - 1), st.just(0.0)),
    st.tuples(st.just("fail"), st.integers(0, len(_NODES) - 1), st.just(0.0)),
    st.tuples(st.just("ok"), st.integers(0, len(_NODES) - 1), st.just(0.0)),
    st.tuples(st.just("violate"), st.integers(0, len(_SOURCES) - 1), st.just(0.0)),
    st.tuples(st.just("clean"), st.integers(0, len(_SOURCES) - 1), st.just(0.0)),
    # Topology churn: spanning-tree blocking/unblocking connections in
    # the shared graph's active view, plus a bare epoch bump.  Paths
    # re-resolve (possibly to "disconnected"); the incremental matrix
    # must still match the naive one bit for bit.
    st.tuples(st.just("block"), st.integers(0, len(_SPEC.connections) - 1), st.just(0.0)),
    st.tuples(st.just("unblock"), st.integers(0, len(_SPEC.connections) - 1), st.just(0.0)),
    st.tuples(st.just("rewire"), st.just(0), st.just(0.0)),
)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_OPS, min_size=1, max_size=40))
def test_incremental_equals_full_recompute(ops):
    rates = RateTable()
    ls = LinkStateRegistry(_SPEC, {})
    health = AgentHealthTracker()
    qm = QuarantineManager()
    calc = BandwidthCalculator(
        _SPEC,
        rates,
        link_state=ls,
        stale_after=4.0,
        dead_after=12.0,
        health=health,
        integrity=qm,
        incremental=True,
    )
    incremental = BandwidthMatrix(_SPEC, calc, incremental=True)
    naive = BandwidthMatrix(_SPEC, calc, incremental=False, graph=incremental.graph)
    graph = incremental.graph  # shared: both matrices see one active view
    blocked_idx = set()
    t = 0.0
    for op, index, arg in ops:
        if op == "sample":
            source = _SOURCES[index]
            rates.update(sample(source.node, source.if_index, t, bps=arg))
        elif op == "advance":
            t += 2.0
        elif op == "down":
            ls.mark_down(_SPEC.connections[index])
        elif op == "up":
            ls.mark_up(_SPEC.connections[index])
        elif op == "fail":
            health.record_failure(_NODES[index], t)
        elif op == "ok":
            health.record_success(_NODES[index], t)
        elif op == "violate":
            source = _SOURCES[index]
            qm.apply(
                source.node,
                source.if_index,
                [
                    IntegrityVerdict(
                        "rate_bound", Severity.VIOLATION, source.node,
                        source.if_index, t,
                    )
                ],
                t,
            )
        elif op == "clean":
            source = _SOURCES[index]
            qm.record_clean(source.node, source.if_index, t)
        elif op == "block":
            blocked_idx.add(index)
            graph.set_blocked([_SPEC.connections[i] for i in sorted(blocked_idx)])
        elif op == "unblock":
            blocked_idx.discard(index)
            graph.set_blocked([_SPEC.connections[i] for i in sorted(blocked_idx)])
        elif op == "rewire":
            graph.invalidate_paths()
        got = incremental.snapshot(t)
        want = naive.snapshot(t)
        # Exact equality, field by field: confidence, trusted/degraded
        # flags, freshness, every ConnectionMeasurement.  Caching must be
        # invisible in the output.
        assert got.reports == want.reports
        assert np.array_equal(got.values(), want.values(), equal_nan=True)
        assert np.array_equal(
            got.values("utilization"), want.values("utilization"), equal_nan=True
        )
