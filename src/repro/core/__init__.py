"""The network QoS monitor -- the paper's primary contribution.

Pipeline (paper §3):

1. :mod:`repro.core.traversal` -- traverse the communication path between
   two hosts over the spec topology (recursive, with infinite-loop
   detection), yielding the series of network connections.
2. :mod:`repro.core.poller`    -- poll every SNMP-enabled component
   periodically for the Table-1 MIB-II objects and convert cumulative
   counters into per-interval byte/packet rates using sysUpTime deltas.
3. :mod:`repro.core.counters`  -- decide, per connection, which polled
   interface supplies its traffic figure (host end, switch end, or the
   switch port facing an SNMP-less host).
4. :mod:`repro.core.bandwidth` -- per-connection used/available bandwidth
   with the switch rule (u_i = t_i) and the hub rule (u_i = Σ t_j, clamped
   to the hub speed); path available bandwidth A = min_i (m_i - u_i).
5. :mod:`repro.core.monitor`   -- :class:`NetworkMonitor` orchestrates the
   above and emits :class:`~repro.core.report.PathReport` records into
   :mod:`repro.core.history` and to subscribers (the RM middleware).

Extensions implementing the paper's §5 future work:

- :mod:`repro.core.latency`     -- path latency estimation + UDP probes.
- :mod:`repro.core.discovery`   -- dynamic topology discovery from the
  switches' bridge-MIB forwarding tables.
- :mod:`repro.core.distributed` -- cooperating monitors with a merger.
"""

from repro.core.bandwidth import BandwidthCalculator, ConnectionMeasurement
from repro.core.counters import CounterSource, resolve_counter_sources
from repro.core.discovery import DiscoveryResult, TopologyDiscoverer
from repro.core.distributed import DistributedMonitor
from repro.core.health import (
    AgentHealth,
    AgentHealthTracker,
    HealthState,
    HealthTransition,
)
from repro.core.history import MeasurementHistory, PathSeries
from repro.core.latency import LatencyEstimator, PathProber
from repro.core.linkstate import LinkStateRegistry
from repro.core.matrix import BandwidthMatrix, MatrixSnapshot
from repro.core.monitor import NetworkMonitor
from repro.core.poller import InterfaceRates, RateTable, SnmpPoller
from repro.core.report import PathReport
from repro.core.traversal import NoPathError, PathLoopError, find_all_paths, find_path

__all__ = [
    "AgentHealth",
    "AgentHealthTracker",
    "BandwidthCalculator",
    "BandwidthMatrix",
    "ConnectionMeasurement",
    "CounterSource",
    "DiscoveryResult",
    "DistributedMonitor",
    "HealthState",
    "HealthTransition",
    "InterfaceRates",
    "LatencyEstimator",
    "LinkStateRegistry",
    "MatrixSnapshot",
    "MeasurementHistory",
    "NetworkMonitor",
    "NoPathError",
    "PathLoopError",
    "PathProber",
    "PathReport",
    "PathSeries",
    "RateTable",
    "SnmpPoller",
    "TopologyDiscoverer",
    "find_all_paths",
    "find_path",
    "resolve_counter_sources",
]
