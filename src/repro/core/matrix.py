"""All-pairs bandwidth matrix.

The paper's testbed claim: "Such a network arrangement is sufficient for
monitoring the bandwidth between any pair of hosts in the system."  This
module makes that operational: one traversal per host pair (cached), one
measurement pass over the shared rate table, and a rendered matrix of
available bandwidth / utilisation that an operator (or the RM's placement
search) can read at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bandwidth import BandwidthCalculator
from repro.core.report import PathReport
from repro.core.traversal import NoPathError, find_path
from repro.topology.model import DeviceKind, TopologySpec

_METRICS = ("available", "used", "utilization")


class MatrixError(ValueError):
    """Raised for unknown hosts or metrics."""


@dataclass
class MatrixSnapshot:
    """One instant's all-pairs measurements."""

    hosts: List[str]
    time: float
    reports: Dict[Tuple[str, str], Optional[PathReport]]  # unordered pairs

    def report(self, a: str, b: str) -> Optional[PathReport]:
        if a == b:
            raise MatrixError("a host has no path to itself in the matrix")
        key = (a, b) if (a, b) in self.reports else (b, a)
        try:
            return self.reports[key]
        except KeyError:
            raise MatrixError(f"pair ({a}, {b}) not in this matrix") from None

    def values(self, metric: str = "available") -> np.ndarray:
        """A symmetric matrix of the chosen metric (NaN on the diagonal
        and for disconnected pairs).  Units: bytes/second, or a fraction
        for "utilization"."""
        if metric not in _METRICS:
            raise MatrixError(f"unknown metric {metric!r}; pick from {_METRICS}")
        n = len(self.hosts)
        out = np.full((n, n), np.nan)
        for i, a in enumerate(self.hosts):
            for j, b in enumerate(self.hosts):
                if i >= j:
                    continue
                report = self.report(a, b)
                if report is None:
                    continue
                if metric == "available":
                    value = report.available_bps
                elif metric == "used":
                    value = report.used_bps
                else:
                    bottleneck = report.bottleneck
                    value = bottleneck.utilization if bottleneck else 0.0
                out[i, j] = out[j, i] = value
        return out

    def format_table(self, metric: str = "available") -> str:
        """Render the matrix; bandwidth cells in KB/s, utilisation in %."""
        values = self.values(metric)
        unit = "%" if metric == "utilization" else "KB/s"
        width = max(8, max(len(h) for h in self.hosts) + 1)
        header = " " * width + "".join(f"{h:>{width}}" for h in self.hosts)
        lines = [f"path {metric} ({unit}) at t={self.time:.1f}s", header]
        for i, row_host in enumerate(self.hosts):
            cells = []
            for j in range(len(self.hosts)):
                if i == j:
                    cells.append(f"{'-':>{width}}")
                elif np.isnan(values[i, j]):
                    cells.append(f"{'n/a':>{width}}")
                elif metric == "utilization":
                    cells.append(f"{values[i, j] * 100:>{width}.1f}")
                else:
                    cells.append(f"{values[i, j] / 1000:>{width}.1f}")
            lines.append(f"{row_host:>{width}}" + "".join(cells))
        return "\n".join(lines)

    def worst_pair(self) -> Optional[Tuple[str, str, float]]:
        """The host pair with the least available bandwidth."""
        worst: Optional[Tuple[str, str, float]] = None
        for (a, b), report in self.reports.items():
            if report is None:
                continue
            if worst is None or report.available_bps < worst[2]:
                worst = (a, b, report.available_bps)
        return worst


class BandwidthMatrix:
    """Computes :class:`MatrixSnapshot` from a calculator's live state."""

    def __init__(
        self,
        spec: TopologySpec,
        calculator: BandwidthCalculator,
        hosts: Optional[Sequence[str]] = None,
    ) -> None:
        self.spec = spec
        self.calculator = calculator
        if hosts is None:
            hosts = [n.name for n in spec.hosts()]
        for host in hosts:
            if spec.node(host).kind is not DeviceKind.HOST:
                raise MatrixError(f"{host!r} is not a host")
        self.hosts = list(hosts)
        # Paths traversed once, up front (topology is static, paper §3.2).
        self._paths: Dict[Tuple[str, str], Optional[list]] = {}
        for i, a in enumerate(self.hosts):
            for b in self.hosts[i + 1:]:
                try:
                    self._paths[(a, b)] = find_path(spec, a, b)
                except NoPathError:
                    self._paths[(a, b)] = None

    def snapshot(self, time: float) -> MatrixSnapshot:
        reports: Dict[Tuple[str, str], Optional[PathReport]] = {}
        for (a, b), path in self._paths.items():
            if path is None:
                reports[(a, b)] = None
            else:
                reports[(a, b)] = self.calculator.measure_path(
                    path, a, b, time=time, name=f"matrix:{a}<->{b}"
                )
        return MatrixSnapshot(hosts=list(self.hosts), time=time, reports=reports)
