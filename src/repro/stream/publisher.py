"""The matrix publisher: dirty-pair recomputation becomes typed events.

:class:`MatrixPublisher` closes the gap between PR 5's incremental
dataflow and the consumers who need its output: the epoch machinery
already knows exactly which (A, B) pairs crossed a dirty connection in
each cycle, and the publisher turns precisely that set -- never the full
O(hosts squared) matrix -- into :class:`~repro.stream.events.PairChanged`
/ ``PathDegraded`` / ``PathRestored`` events, filters them for
significance, evaluates continuous queries, and fans out through the
:class:`~repro.stream.manager.SubscriptionManager`.

Per :meth:`publish` cycle:

1. advance the :class:`~repro.core.dataflow.PublishClock` (all events
   this cycle share the new epoch -- the coherence guarantee);
2. take an (incremental) matrix snapshot and read the dirty-pair hook;
3. for each dirty pair: route the raw value to continuous queries,
   emit trust-status transitions unconditionally, and emit a
   ``PairChanged`` only if the significance filter agrees;
4. serve ``deliver_unchanged`` subscriptions (the RM heartbeat mode)
   and ``block``-policy resyncs from the same snapshot.

A topology rebuild (the matrix re-traversed its paths) resets the
significance filters and query state: the distribution of moves on a
rewired network is a new distribution (see
:mod:`repro.stream.significance`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.dataflow import PublishClock
from repro.core.matrix import BandwidthMatrix, MatrixSnapshot
from repro.core.report import PathReport
from repro.stream.events import (
    PairChanged,
    PathDegraded,
    PathRestored,
    QueryCleared,
    QueryFired,
    StreamEvent,
    pair_key,
)
from repro.stream.manager import SubscriptionManager
from repro.stream.queries import ContinuousQuery
from repro.stream.significance import SignificanceFilter

__all__ = ["MatrixPublisher"]

PairKey = Tuple[str, str]

_STATUS_RANK = {"fresh": 0, "degraded": 1, "unavailable": 2}


class MatrixPublisher:
    """Publishes one matrix's dirty-pair changes as stream events."""

    def __init__(
        self,
        matrix: BandwidthMatrix,
        manager: Optional[SubscriptionManager] = None,
        significance: Optional[SignificanceFilter] = None,
        telemetry=None,
    ) -> None:
        """``significance``: the publisher-wide filter applied before
        enqueue (None: every change on a dirty pair is an event).
        Status transitions, query events, heartbeats and resyncs are
        never filtered."""
        self.matrix = matrix
        self.manager = manager if manager is not None else SubscriptionManager(telemetry)
        self.significance = significance
        self.clock = PublishClock()
        self._queries: Dict[str, ContinuousQuery] = {}
        self._query_owner: Dict[str, str] = {}
        self._last_status: Dict[PairKey, str] = {}
        self._last_snapshot: Optional[MatrixSnapshot] = None
        self.cycles = 0
        self.filter_resets = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def register_query(self, query: ContinuousQuery, subscriber: str) -> None:
        """Attach a standing query; its events land in ``subscriber``'s
        queue (which must already exist)."""
        if query.name in self._queries:
            raise ValueError(f"query {query.name!r} already registered")
        self.manager.get(subscriber)  # raises StreamError if unknown
        self._queries[query.name] = query
        self._query_owner[query.name] = subscriber

    def unregister_query(self, name: str) -> None:
        del self._queries[name]
        del self._query_owner[name]

    def queries(self) -> List[ContinuousQuery]:
        return [self._queries[name] for name in sorted(self._queries)]

    # ------------------------------------------------------------------
    # The publish cycle
    # ------------------------------------------------------------------
    def publish(self, time: float) -> MatrixSnapshot:
        """Snapshot the matrix and emit this cycle's events."""
        snapshot = self.matrix.snapshot(time)
        epoch = self.clock.advance()
        self.cycles += 1
        if self.matrix.last_snapshot_rebuilt:
            self._rebaseline()
        dirty = self.matrix.last_dirty_pairs
        if dirty is None:
            # Naive matrix (or first cycle): dirtiness unknown, consider
            # every measurable pair.  The significance filter still keeps
            # unchanged pairs from becoming events.
            candidates = [
                pair for pair, report in snapshot.reports.items() if report is not None
            ]
        else:
            candidates = [
                pair
                for pair in dirty
                if snapshot.reports.get(pair) is not None
            ]
            candidates.sort()
        for pair in candidates:
            self._publish_pair(pair, snapshot.reports[pair], time, epoch)
        self._serve_heartbeats(snapshot, time, epoch)
        self._serve_resyncs(snapshot, time, epoch)
        self._last_snapshot = snapshot
        return snapshot

    def _rebaseline(self) -> None:
        """Topology changed: learned baselines describe a dead network."""
        if self.significance is not None:
            self.significance.reset()
        for query in self._queries.values():
            query.reset()
        self._last_status.clear()
        self.filter_resets += 1

    def _publish_pair(
        self, pair: PairKey, report: PathReport, time: float, epoch: int
    ) -> None:
        key = pair_key(*pair)
        # 1. Continuous queries see the raw, unfiltered value.
        for name, query in self._queries.items():
            if not query.wants(key):
                continue
            outcome = query.offer(key, report)
            if outcome is None:
                continue
            what, value = outcome
            owner = self._query_owner[name]
            if what == "fired":
                describe = getattr(query, "describe", None)
                event: StreamEvent = QueryFired(
                    pair=key, time=time, epoch=epoch, query=name, value=value,
                    detail=describe() if describe is not None else None,
                )
            else:
                event = QueryCleared(
                    pair=key, time=time, epoch=epoch, query=name, value=value
                )
            self.manager.deliver_to(self.manager.get(owner), event)
        # 2. Trust-status transitions are always events.
        status = report.status
        previous_status = self._last_status.get(key)
        if previous_status is not None and status != previous_status:
            if _STATUS_RANK[status] > _STATUS_RANK[previous_status]:
                self.manager.deliver(
                    PathDegraded(
                        pair=key, time=time, epoch=epoch, report=report,
                        status=status, previous_status=previous_status,
                    )
                )
            else:
                self.manager.deliver(
                    PathRestored(
                        pair=key, time=time, epoch=epoch, report=report,
                        status=status, previous_status=previous_status,
                    )
                )
        self._last_status[key] = status
        # 3. The value change itself, behind the significance filter.
        available = report.available_bps
        if self.significance is not None:
            if not self.significance.significant(key, available):
                self.manager.note_suppressed()
                return
            previous = self.significance.last_delivered(key)
            self.significance.delivered(key, available)
        else:
            previous = math.nan
        self.manager.deliver(self._changed_event(key, report, time, epoch, previous))

    @staticmethod
    def _changed_event(
        key: PairKey, report: PathReport, time: float, epoch: int, previous: float
    ) -> PairChanged:
        bottleneck = report.bottleneck
        return PairChanged(
            pair=key,
            time=time,
            epoch=epoch,
            report=report,
            available_bps=report.available_bps,
            used_bps=report.used_bps,
            utilization=bottleneck.utilization if bottleneck is not None else 0.0,
            status=report.status,
            previous_available_bps=previous,
        )

    @staticmethod
    def _report_for(
        snapshot: MatrixSnapshot, key: PairKey
    ) -> Optional[PathReport]:
        """Snapshot lookup tolerant of host order: event keys are
        order-normalised, snapshot keys follow the matrix host list."""
        report = snapshot.reports.get(key)
        if report is None:
            report = snapshot.reports.get((key[1], key[0]))
        return report

    def _serve_heartbeats(
        self, snapshot: MatrixSnapshot, time: float, epoch: int
    ) -> None:
        """Per-cycle events for ``deliver_unchanged`` subscriptions."""
        for sub in self.manager.subscriptions():
            if not sub.deliver_unchanged or sub.pairs is None:
                continue
            for key in sorted(sub.pairs):
                report = self._report_for(snapshot, key)
                if report is None:
                    continue
                self.manager.deliver_to(
                    sub, self._changed_event(key, report, time, epoch, math.nan)
                )

    def _serve_resyncs(
        self, snapshot: MatrixSnapshot, time: float, epoch: int
    ) -> None:
        """Re-deliver current values to drained ``block`` subscriptions."""
        for sub in self.manager.subscriptions():
            if not sub.stalled:
                continue
            missed = sub.resync_pairs()
            if not missed:
                continue  # backlog not drained yet; stay stalled
            delivered = set()
            for key in sorted(missed):
                report = self._report_for(snapshot, key)
                if report is None:
                    delivered.add(key)  # pair no longer measurable
                    continue
                if not self.manager.deliver_to(
                    sub, self._changed_event(key, report, time, epoch, math.nan)
                ):
                    break  # bound hit again; the rest resync next round
                delivered.add(key)
            sub.resynced(delivered)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        out = dict(self.manager.stats())
        out.update(
            cycles=self.cycles,
            epoch=self.clock.epoch,
            queries=len(self._queries),
            filter_resets=self.filter_resets,
        )
        return out
