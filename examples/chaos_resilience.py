#!/usr/bin/env python3
"""Chaos on the Figure-3 testbed: the monitor under combined faults.

The paper only ever shows the happy path.  This example runs the same
LIRTSS testbed while everything goes wrong at once, and shows the
resilience layer keeping the answers honest:

1. S1's SNMP daemon crashes at t=10 s (no responses for 20 s).  Its
   health walks HEALTHY -> DEGRADED -> SUSPECT -> DEAD; the circuit
   breaker stops hammering it; the S1 path's reports turn degraded,
   then unavailable -- never a stale rate dressed up as a fresh one.
2. N1's host reboots at t=20 s: sysUpTime and every counter restart at
   zero.  The poller detects the restart and re-baselines instead of
   reporting a garbage rate spike.
3. The switch's agent gets slow (+0.4 s per response) from t=30 s: the
   manager's per-destination RTO rises to cover it, so the slow agent
   keeps being polled cleanly instead of timing out every cycle.
4. All faults clear; every agent returns to HEALTHY and reports come
   back fresh.

Run:  python examples/chaos_resilience.py
"""

from repro import NetworkMonitor, build_testbed
from repro.simnet.faults import AgentOutage, AgentReboot, ResponseDelay
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule


def main() -> None:
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    s1_label = monitor.watch_path("S1", "S2")
    n1_label = monitor.watch_path("N1", "L")

    monitor.health.subscribe(lambda t: print(f"  health: {t}"))

    StaircaseLoad(
        net.host("S1"), net.ip_of("S2"), StepSchedule.pulse(2.0, 75.0, 300 * KBPS)
    ).start()

    AgentOutage(net.sim, build.agents["S1"], at=10.0, until=30.0)
    AgentReboot(net.sim, build.agents["N1"], at=20.0, outage=3.0)
    ResponseDelay(net.sim, build.agents["switch"], extra=0.4, at=30.0, until=55.0)

    monitor.start()
    print("t=10-30s: S1 daemon dead; t=20s: N1 reboots; "
          "t=30-55s: switch agent slow (+400 ms)\n")
    net.run(80.0)

    print("\n=== path report trust, sampled every 10 s ===")
    for label in (s1_label, n1_label):
        series = monitor.history.series(label)
        shown = [r for i, r in enumerate(series.reports) if i % 5 == 0]
        for report in shown:
            print(f"  {report.summary()}")
        print()

    print("=== adaptive RTO for the slow switch agent ===")
    switch_ip = net.ip_of("switch")
    print(f"  converged first-attempt timeout: "
          f"{monitor.manager.current_rto(switch_ip) * 1000:.0f} ms")

    print("\n=== final accounting ===")
    stats = monitor.stats()
    for key in ("poll_timeout_errors", "poll_error_responses", "polls_suppressed",
                "agent_restarts", "agents_healthy", "agents_dead"):
        print(f"  {key:22s} {stats[key]:.0f}")
    print(f"  agent health now: {monitor.agent_health()}")


if __name__ == "__main__":
    main()
