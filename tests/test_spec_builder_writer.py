"""Unit tests for spec -> network building and spec serialisation."""

import pytest

from repro.simnet.sockets import DISCARD_PORT
from repro.snmp.mib import CachingMibTree
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec
from repro.spec.validate import SpecValidationError
from repro.spec.writer import write_spec

SPEC = """
network topology demo {
    host L  { os "Linux"; snmp community "public"; interface eth0 { speed 100 Mbps; } }
    host N1 { os "Win NT"; snmp community "public"; interface el0 { speed 10 Mbps; } }
    host S4 { }
    switch sw { snmp community "public"; ports 4 speed 100 Mbps; }
    hub hb { ports 4 speed 10 Mbps; }
    connect L.eth0 <-> sw.port1;
    connect S4.eth0 <-> sw.port2;
    connect sw.port3 <-> hb.port1;
    connect N1.el0 <-> hb.port2;
}
"""


class TestBuilder:
    def test_devices_created(self):
        result = build_network(parse_spec(SPEC))
        net = result.network
        assert set(net.hosts) == {"L", "N1", "S4"}
        assert set(net.switches) == {"sw"}
        assert set(net.hubs) == {"hb"}
        assert len(net.links) == 4

    def test_agents_started_only_where_declared(self):
        result = build_network(parse_spec(SPEC))
        assert set(result.agents) == {"L", "N1", "sw"}
        with pytest.raises(KeyError):
            result.agent("S4")

    def test_interface_speeds_respected(self):
        result = build_network(parse_spec(SPEC))
        assert result.network.host("N1").interfaces[0].speed_bps == 10e6
        # N1's hub link auto-negotiates down to the hub speed.
        assert result.network.host("N1").interfaces[0].link.bandwidth_bps == 10e6

    def test_traffic_flows_end_to_end(self):
        result = build_network(parse_spec(SPEC))
        net = result.network
        net.run(0.1)
        net.host("L").create_socket().sendto(
            500, (net.host("N1").primary_ip, DISCARD_PORT)
        )
        net.run(1.0)
        assert net.host("N1").discard.datagrams == 1

    def test_invalid_spec_rejected(self):
        bad = parse_spec(
            "network topology t { host A { } connect A.eth0 <-> ghost.p; }"
        )
        with pytest.raises(SpecValidationError):
            build_network(bad)

    def test_validation_can_be_skipped(self):
        # Stranded host: a warning, never an error; builds either way.
        spec = parse_spec("network topology t { host A { } host B { } }")
        build_network(spec, validate=False)

    def test_counter_cache_default_applied(self):
        result = build_network(parse_spec(SPEC), counter_cache=0.5)
        assert isinstance(result.agents["L"].mib, CachingMibTree)

    def test_counter_cache_per_node_attribute(self):
        text = SPEC.replace('os "Linux";', 'os "Linux"; snmp_cache "0.25";')
        result = build_network(parse_spec(text))
        assert isinstance(result.agents["L"].mib, CachingMibTree)
        assert result.agents["L"].mib.refresh_interval == 0.25
        assert not isinstance(result.agents["N1"].mib, CachingMibTree)

    def test_deterministic_build(self):
        r1 = build_network(parse_spec(SPEC))
        r2 = build_network(parse_spec(SPEC))
        ip1 = sorted(str(h.primary_ip) for h in r1.network.hosts.values())
        ip2 = sorted(str(h.primary_ip) for h in r2.network.hosts.values())
        assert ip1 == ip2


class TestWriter:
    def test_roundtrip_preserves_structure(self):
        spec = parse_spec(SPEC)
        text = write_spec(spec)
        again = parse_spec(text)
        assert [n.name for n in again.nodes] == [n.name for n in spec.nodes]
        assert [(str(c.end_a), str(c.end_b)) for c in again.connections] == [
            (str(c.end_a), str(c.end_b)) for c in spec.connections
        ]
        assert again.node("L").snmp_enabled
        assert again.node("N1").interface("el0").speed_bps == 10e6

    def test_roundtrip_qospaths(self):
        text = """
        network topology t {
            host A { } host B { }
            qospath p { from A to B; min_available 1600 Kbps; max_utilization 0.8; }
        }
        """
        spec = parse_spec(text)
        again = parse_spec(write_spec(spec))
        path = again.qos_path("p")
        assert path.min_available_bps == 1600e3
        assert path.max_utilization == 0.8

    def test_roundtrip_bandwidth_override(self):
        text = """
        network topology t {
            host A { } switch s { ports 2; }
            connect A.eth0 <-> s.port1 [ bandwidth 10 Mbps ];
        }
        """
        again = parse_spec(write_spec(parse_spec(text)))
        assert again.connections[0].bandwidth_bps == 10e6

    def test_attributes_round_trip(self):
        text = 'network topology t { host A { room "B-14"; } }'
        again = parse_spec(write_spec(parse_spec(text)))
        assert again.node("A").attributes["room"] == "B-14"

    def test_testbed_round_trips(self):
        from repro.experiments.testbed import TESTBED_SPEC_TEXT

        spec = parse_spec(TESTBED_SPEC_TEXT)
        again = parse_spec(write_spec(spec))
        assert [n.name for n in again.nodes] == [n.name for n in spec.nodes]
        assert len(again.connections) == len(spec.connections)
        assert again.node("N1").attributes["snmp_cache"] == "0.5"
