"""Communication-path traversal (paper §3.3).

"Based on the information from the specification language, the
communication path between two hosts can be traversed.  A simple recursive
algorithm is designed to traverse the path, with a necessary infinite-loop
detecting function implemented.  The result of the path is described as a
series of network connections."

:func:`find_path` is that algorithm, converted from the paper's recursion
to an explicit-stack depth-first search so deep switch chains from the
scale generator cannot hit Python's recursion limit.  It still carries
the visited set so cyclic topologies terminate, and still returns the
deterministic first (declaration-order) path; :func:`find_all_paths`
enumerates the alternatives for diagnosis tools.

When the caller passes a :class:`~repro.topology.graph.TopologyGraph`
(rather than a bare spec), :func:`find_path` memoizes results in the
graph's path cache -- the active topology rarely changes between poll
cycles, so an all-pairs matrix walks each path exactly once per
topology epoch.  The memos flush automatically whenever the graph's
active view moves (``set_blocked``, driven by the delta-discovery loop
in :mod:`repro.core.topology_sync`) or a caller invalidates explicitly.

:func:`find_path` walks the **active** view (spanning-tree blocked
uplinks excluded): its result is the path traffic actually takes.
:func:`find_all_paths` and :func:`pair_redundant` walk the **physical**
view: their results answer what the topology could do after failover.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple, Union

from repro.topology.graph import TopologyGraph
from repro.topology.model import ConnectionSpec, TopologyError, TopologySpec

Path = List[ConnectionSpec]


class NoPathError(TopologyError):
    """No sequence of connections joins the two hosts."""

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"no communication path from {src!r} to {dst!r}")
        self.src = src
        self.dst = dst


class PathLoopError(TopologyError):
    """Raised only by paranoid callers; traversal itself never loops."""


def _as_graph(topology: Union[TopologySpec, TopologyGraph]) -> TopologyGraph:
    if isinstance(topology, TopologyGraph):
        return topology
    return TopologyGraph(topology)


def find_path(
    topology: Union[TopologySpec, TopologyGraph],
    src: str,
    dst: str,
) -> Path:
    """The series of connections from ``src`` to ``dst``.

    Raises :class:`NoPathError` when the hosts are not connected, and
    :class:`~repro.topology.model.TopologyError` when either name is
    unknown.  A host is trivially connected to itself by the empty path.
    """
    graph = _as_graph(topology)
    # Memoize only when the caller owns the graph object: a graph built
    # ad hoc from a spec dies with this call, so caching there is waste.
    caching = graph is topology
    if caching:
        hit, cached = graph.cached_path(src, dst)
        if hit:
            if cached is None:
                raise NoPathError(src, dst)
            return list(cached)
    if src == dst:
        graph.neighbors(src)  # existence check
        return []
    graph.neighbors(src)  # raise on unknown source before searching
    path = _dfs(graph, src, dst)
    if path is None:
        graph.neighbors(dst)  # raise on unknown destination
        if caching:
            graph.store_path(src, dst, None)
        raise NoPathError(src, dst)
    if caching:
        graph.store_path(src, dst, tuple(path))
    return path


def _dfs(graph: TopologyGraph, src: str, dst: str) -> Optional[Path]:
    """The paper's traversal with its loop detector, on an explicit stack.

    Neighbor lists are consumed through iterators held on the stack, so
    declaration order is preserved exactly as in the recursive original.
    A node, once visited, stays visited on backtrack: for simple
    reachability this is sound (a node that cannot reach dst via one
    entry cannot via another on an undirected graph when search is
    exhaustive from that node) and it keeps the traversal linear.
    """
    visited: Set[str] = {src}
    # Each frame is the neighbor iterator of one node on the trail;
    # ``trail`` holds the connection taken into each frame's node.
    # Traversal walks the *active* view: a spanning-tree blocked uplink
    # carries no traffic, so the measured path must not include it.
    stack: List[Iterator[Tuple[ConnectionSpec, str]]] = [
        iter(graph.active_neighbors(src))
    ]
    trail: List[ConnectionSpec] = []
    while stack:
        frame = stack[-1]
        advanced = False
        for conn, peer in frame:
            if peer in visited:
                continue  # infinite-loop detection
            if peer == dst:
                return trail + [conn]
            visited.add(peer)
            trail.append(conn)
            stack.append(iter(graph.active_neighbors(peer)))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if trail:
                trail.pop()
    return None


def pair_redundant(
    topology: Union[TopologySpec, TopologyGraph], src: str, dst: str
) -> bool:
    """Does the **physical** topology offer >= 2 simple paths src->dst?

    A redundant pair keeps communicating after any single link failure on
    its path -- "degraded but protected"; a non-redundant pair is a
    single point of failure.  Blocked (spanning-tree inactive) uplinks
    count: they are exactly the protection.  Memoized on the graph when
    the caller owns it, and never invalidated, because physical
    adjacency is immutable for a graph's lifetime.
    """
    graph = _as_graph(topology)
    caching = graph is topology
    if caching:
        cached = graph.cached_redundancy(src, dst)
        if cached is not None:
            return cached
    redundant = len(find_all_paths(graph, src, dst, max_paths=2)) >= 2
    if caching:
        graph.store_redundancy(src, dst, redundant)
    return redundant


def find_all_paths(
    topology: Union[TopologySpec, TopologyGraph],
    src: str,
    dst: str,
    max_paths: int = 64,
) -> List[Path]:
    """Every simple **physical** path between two hosts (bounded).

    Unlike :func:`find_path` this ignores the graph's active view:
    enumeration answers "what could carry traffic", including
    spanning-tree blocked backup uplinks.  Parallel connections between
    the same two devices yield distinct paths.
    """
    graph = _as_graph(topology)
    graph.neighbors(src)
    graph.neighbors(dst)
    if src == dst:
        return [[]]
    results: List[Path] = []
    # Unlike find_path, enumeration must un-visit on backtrack (a node
    # excluded from one path may appear on another), so each frame also
    # remembers its node for the discard when the frame pops.
    visited: Set[str] = {src}
    stack: List[Tuple[str, Iterator[Tuple[ConnectionSpec, str]]]] = [
        (src, iter(graph.neighbors(src)))
    ]
    trail: List[ConnectionSpec] = []
    while stack:
        if len(results) >= max_paths:
            break
        node, frame = stack[-1]
        advanced = False
        for conn, peer in frame:
            if peer in visited:
                continue
            if peer == dst:
                results.append(trail + [conn])
                if len(results) >= max_paths:
                    break
                continue
            visited.add(peer)
            trail.append(conn)
            stack.append((peer, iter(graph.neighbors(peer))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if node != src:
                visited.discard(node)
            if trail:
                trail.pop()
    return results


def path_nodes(path: Path, src: str) -> List[str]:
    """The node names visited along ``path`` starting at ``src``."""
    nodes = [src]
    current = src
    for conn in path:
        nxt = conn.other_end(current).node
        nodes.append(nxt)
        current = nxt
    return nodes


def format_path(path: Path, src: str) -> str:
    """Human-readable ``S1 -> switch -> hub -> N1`` rendering."""
    return " -> ".join(path_nodes(path, src))
