"""Topology model shared by the spec language, the monitor and the RM.

This is the in-memory form of the paper's Figure 2 data structures::

    Host { host_name; LinkedList interfaces; ... }
    Interface { localName; ... }
    HostPairConnection { Host host1; Interface interface1;
                         Host host2; Interface interface2; }
    NetworkTopology { LinkedList hosts; LinkedList hostPairConnections; }

extended with the device kind (host / switch / hub -- the monitor's
bandwidth rules differ by kind) and SNMP capability flags.
"""

from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    TopologyError,
    TopologySpec,
)
from repro.topology.graph import TopologyGraph

__all__ = [
    "ConnectionSpec",
    "DeviceKind",
    "InterfaceRef",
    "InterfaceSpec",
    "NodeSpec",
    "TopologyError",
    "TopologyGraph",
    "TopologySpec",
]
