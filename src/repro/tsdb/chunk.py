"""Chunks: the unit of compression, sealing and retention.

A series owns exactly one mutable :class:`HeadChunk` -- raw column
lists, cheap O(1) appends -- and a list of immutable
:class:`SealedChunk` objects holding the bit-packed columns plus a
min/max-time index.  Sealing happens when the head reaches the series'
``chunk_size``; queries bisect the sealed index and decode only the
chunks that overlap the requested window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tsdb.codec import (
    decode_column,
    decode_timestamps,
    encode_column,
    encode_timestamps,
)

#: field -> function of the other columns returning per-sample predictions.
Predictors = Optional[Dict[str, Callable[[Dict[str, np.ndarray]], np.ndarray]]]


class HeadChunk:
    """The open, append-only chunk (uncompressed column lists)."""

    __slots__ = ("fields", "times", "columns")

    def __init__(self, fields: Tuple[str, ...]) -> None:
        self.fields = fields
        self.times: List[float] = []
        self.columns: Tuple[List[float], ...] = tuple([] for _ in fields)

    def append(self, t: float, values: Sequence[float]) -> None:
        self.times.append(t)
        for column, value in zip(self.columns, values):
            column.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def min_time(self) -> float:
        return self.times[0]

    @property
    def max_time(self) -> float:
        return self.times[-1]

    def seal(self, predictors: "Predictors" = None) -> "SealedChunk":
        """Compress the buffered columns into an immutable chunk.

        ``predictors`` maps a field name to a function of the chunk's
        other columns (as float64 arrays) returning per-sample
        predictions; predicted columns are XOR-encoded against those
        instead of against their predecessors.  A predictor may only
        read *unpredicted* columns (they decode first).
        """
        predicted = []
        column_data = []
        raw = None
        for name, col in zip(self.fields, self.columns):
            fn = predictors.get(name) if predictors else None
            if fn is None:
                column_data.append(encode_column(col))
            else:
                if raw is None:
                    raw = {
                        f: np.array(c, dtype=np.float64)
                        for f, c in zip(self.fields, self.columns)
                    }
                column_data.append(encode_column(col, fn(raw)))
                predicted.append(name)
        return SealedChunk(
            fields=self.fields,
            count=len(self.times),
            min_time=self.times[0],
            max_time=self.times[-1],
            time_data=encode_timestamps(self.times),
            column_data=tuple(column_data),
            predicted=frozenset(predicted),
        )

    def arrays(self) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        times = np.array(self.times, dtype=np.float64)
        values = {
            name: np.array(col, dtype=np.float64)
            for name, col in zip(self.fields, self.columns)
        }
        return times, values

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint (raw float64 columns)."""
        return len(self.times) * (1 + len(self.fields)) * 8


class SealedChunk:
    """An immutable compressed block of ``count`` samples."""

    __slots__ = (
        "fields", "count", "min_time", "max_time", "time_data", "column_data",
        "predicted",
    )

    def __init__(
        self,
        fields: Tuple[str, ...],
        count: int,
        min_time: float,
        max_time: float,
        time_data: bytes,
        column_data: Tuple[bytes, ...],
        predicted: frozenset = frozenset(),
    ) -> None:
        self.fields = fields
        self.count = count
        self.min_time = min_time
        self.max_time = max_time
        self.time_data = time_data
        self.column_data = column_data
        self.predicted = predicted

    def __len__(self) -> int:
        return self.count

    @property
    def nbytes(self) -> int:
        """Compressed payload size in bytes."""
        return len(self.time_data) + sum(len(d) for d in self.column_data)

    def decode_times(self) -> np.ndarray:
        return decode_timestamps(self.time_data, self.count)

    def decode_field(self, name: str, predictors: "Predictors" = None) -> np.ndarray:
        if name not in self.fields:
            raise KeyError(f"no field {name!r} in chunk (have {self.fields})")
        if name in self.predicted:
            # Needs its prediction inputs: decode the whole chunk.
            return self.arrays(predictors)[1][name]
        index = self.fields.index(name)
        return decode_column(self.column_data[index], self.count)

    def arrays(self, predictors: "Predictors" = None) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Decode every column: (times, {field: values}).

        ``predictors`` must be the same mapping the chunk was sealed
        with (the series owns it); predicted columns decode after the
        plain ones they derive from.
        """
        if self.predicted and not predictors:
            raise ValueError(
                f"chunk has predicted columns {sorted(self.predicted)} "
                f"but no predictors were supplied"
            )
        times = self.decode_times()
        values: Dict[str, np.ndarray] = {}
        for name, data in zip(self.fields, self.column_data):
            if name not in self.predicted:
                values[name] = decode_column(data, self.count)
        for name, data in zip(self.fields, self.column_data):
            if name in self.predicted:
                values[name] = decode_column(
                    data, self.count, predictors[name](values)
                )
        return times, values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SealedChunk n={self.count} t=[{self.min_time:.3f},"
            f"{self.max_time:.3f}] {self.nbytes}B>"
        )
