"""Epoch primitives for the incremental measurement dataflow.

The monitor's measurement pipeline used to recompute every path report
from raw counters on every request -- fine for the paper's 9 hosts,
O(n² · path length) at production scale.  The incremental dataflow
instead tags every *input* of a measurement with an **epoch**: a
monotonically increasing stamp bumped exactly when that input changes.

Epoch sources and what bumps them:

====================  ==========================================  =====================
source                epoch key                                    bumped by
====================  ==========================================  =====================
rate table            (node, ifIndex)                              sample admitted on ingest
link-state registry   connection endpoints                         linkDown/linkUp trap,
                                                                   ifOperStatus change,
                                                                   mark_down/mark_up
agent health          node                                         health-state transition
quarantine            (node, ifIndex)                              quarantine enter/release
topology graph        (whole graph)                                ``invalidate_paths``
====================  ==========================================  =====================

A derived value (a connection measurement, a hub aggregate, a path
report, an all-pairs matrix cell) records the epochs of the inputs it
was computed from; it is valid exactly as long as those epochs are
unchanged.  Correctness invariant, enforced by the property tests in
``tests/test_dataflow.py``: **incremental recomputation is bit-identical
to recomputing everything from scratch** -- caching may only ever change
how much work is done, never a single output bit.

:class:`EpochClock` is the shared primitive: a per-owner global clock
plus per-key stamps.  Because every bump draws from the owner's global
clock, "any key changed since stamp S" is a single integer comparison
against :attr:`EpochClock.clock` -- consumers first compare the global
clock (cheap, catches the common no-change case) and only then the
per-key epochs they actually depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["EpochClock", "ConnCacheEntry", "DegradedSourceSet", "PublishClock"]


class EpochClock:
    """Monotonic per-key epoch stamps drawn from one global clock.

    ``epoch(key) == 0`` means the key has never changed (the virgin
    epoch); real stamps start at 1.  The global :attr:`clock` equals the
    largest stamp ever issued, so a consumer that recorded ``clock`` can
    tell "nothing anywhere changed" without touching per-key state.
    """

    __slots__ = ("clock", "_epochs")

    def __init__(self) -> None:
        self.clock: int = 0
        self._epochs: Dict[Hashable, int] = {}

    def bump(self, key: Hashable) -> int:
        """Stamp ``key`` with a fresh epoch; returns the new stamp."""
        self.clock += 1
        self._epochs[key] = self.clock
        return self.clock

    def epoch(self, key: Hashable) -> int:
        """The last stamp issued for ``key`` (0: never bumped)."""
        return self._epochs.get(key, 0)

    def __len__(self) -> int:
        return len(self._epochs)


class DegradedSourceSet:
    """Counter sources whose data is known-lossy right now.

    The distributed plane marks a (node, ifIndex) here when the worker
    responsible for polling it lost its lease or when a sequence gap in
    its shipped samples had to be abandoned: the rate table then still
    holds a sample, but the plane *knows* newer data existed and was
    lost, so dependent reports must not present that sample at full
    confidence while it is still younger than the staleness bound.

    Marks clear per-interface the moment a fresh in-order sample for the
    key is admitted again (failover re-coverage, gap filled, worker
    recovered).  State changes bump an :class:`EpochClock` so the
    bandwidth calculator's memoized measurements invalidate exactly like
    they do for quarantine or health flips.
    """

    __slots__ = ("_degraded", "_epochs")

    def __init__(self) -> None:
        self._degraded: set = set()
        self._epochs = EpochClock()

    @property
    def clock(self) -> int:
        """Global clock: increases on every mark/clear state change."""
        return self._epochs.clock

    def epoch_of(self, node: str, if_index: int) -> int:
        return self._epochs.epoch((node, if_index))

    def mark(self, node: str, if_index: int) -> bool:
        """Flag one source as lossy; True when this changed its state."""
        key = (node, if_index)
        if key in self._degraded:
            return False
        self._degraded.add(key)
        self._epochs.bump(key)
        return True

    def clear(self, node: str, if_index: int) -> bool:
        """Fresh data arrived for one source; True when it was marked."""
        key = (node, if_index)
        if key not in self._degraded:
            return False
        self._degraded.discard(key)
        self._epochs.bump(key)
        return True

    def is_degraded(self, node: str, if_index: int) -> bool:
        return (node, if_index) in self._degraded

    def keys(self) -> list:
        return sorted(self._degraded)

    def __len__(self) -> int:
        return len(self._degraded)


class PublishClock:
    """Strictly increasing publish-cycle epochs for the stream layer.

    Where :class:`EpochClock` stamps *inputs* (which interface changed),
    the publish clock stamps *outputs*: every event the stream publisher
    emits from one matrix snapshot carries the same publish epoch, and
    consecutive snapshots carry consecutive epochs.  Two guarantees ride
    on that, documented in ``docs/architecture.md`` and relied on by
    subscribers:

    - **coherence** -- events sharing an epoch describe one snapshot
      instant; a consumer rebuilding a view applies them as one batch;
    - **gap visibility** -- a subscriber whose queue overflowed under
      ``drop_oldest`` sees non-consecutive epochs and knows exactly
      that it missed cycles (and may re-read the matrix), instead of
      silently holding a stale picture.

    ``cycle_token`` additionally captures the upstream input clocks a
    snapshot was computed from, so a consumer can correlate a publish
    epoch back to the ingest epochs that produced it.
    """

    __slots__ = ("epoch", "last_token")

    def __init__(self) -> None:
        self.epoch: int = 0
        self.last_token: Optional[Tuple] = None

    def advance(self, token: Optional[Tuple] = None) -> int:
        """Open the next publish cycle; returns its epoch."""
        self.epoch += 1
        self.last_token = token
        return self.epoch


@dataclass
class ConnCacheEntry:
    """One connection's memoized measurement inside the calculator.

    ``token`` is the tuple of input epochs the measurement was computed
    from; ``now`` the report instant it was aged against.  ``stamp`` is
    the calculator's validation stamp: entries checked during the
    current validation cycle skip even the token comparison.
    ``confidence`` is the per-connection trust figure derived from the
    measurement (None is a legal value -- ``has_confidence`` carries the
    cache state).
    """

    token: Optional[Tuple] = None
    now: Optional[float] = None
    measurement: object = None
    confidence: Optional[float] = None
    has_confidence: bool = False
    stamp: int = -1
