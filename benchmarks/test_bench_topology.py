"""CI gate for the self-healing topology plane at campus scale.

A 108-host redundant mesh (six switches in a chain, every uplink
duplicated, spanning tree on) runs the monitor with the discovery-driven
topology sync loop enabled; a loop-free mesh of the same size runs the
plain monitor.  Two acceptance properties:

- **Steady-state overhead < 10 %.**  The self-healing machinery -- one
  targeted STP GET per switch per poll cycle, plus a full discovery
  sweep every ``FULL_EVERY`` rounds -- must cost less than 10 % extra
  SNMP requests over the loop-free baseline, amortised over a window
  that includes a full discovery sweep.
- **Re-convergence within three poll cycles.**  After the active uplink
  of a redundant pair is killed mid-run, the watched path must be
  re-resolved onto the backup uplink and reporting fresh no later than
  ``fail + 3 * poll_interval``.

Writes ``BENCH_topology.json`` for the CI artifact upload.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.scale import scale_spec
from repro.simnet.faults import LinkFailure
from repro.spec.builder import build_network
from repro.telemetry.events import PATH_REROUTED

POLL = 2.0
START = 2.5
# Full discovery walks every agent (~4 poll cycles' worth of requests on
# this mesh), so it runs on a minutes-scale cadence like any real NMS
# sweep; the light STP rounds ride every poll cycle.  The measured
# window covers exactly one full sweep so its cost is amortised in, not
# dodged.
FULL_EVERY = 120
STEADY_CYCLES = 120
STEADY_UNTIL = START + STEADY_CYCLES * POLL + 0.5
OVERHEAD_CEILING = 0.10
FAIL_AT = 13.0
RECONVERGENCE_CYCLES = 3

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_topology.json"

# The first pair spans the whole chain (it crosses the uplink the
# failover test kills); the other two live on segments the failure
# never touches, backing the no-false-violations property.
WATCHES = [("h0_0", "h5_0"), ("h0_1", "h1_0"), ("h4_0", "h5_3")]


def _mesh(redundant: bool):
    spec = scale_spec(
        switches=6,
        hosts_per_switch=18,
        arity=1,
        redundant_uplinks=1 if redundant else 0,
    )
    hosts = [n.name for n in spec.hosts()]
    assert len(hosts) >= 100, f"benchmark mesh too small: {len(hosts)} hosts"
    build = build_network(spec)
    monitor = NetworkMonitor(build, "h0_0", poll_interval=POLL, poll_jitter=0.0)
    if redundant:
        monitor.enable_topology_sync(full_every=FULL_EVERY)
    for a, b in WATCHES:
        monitor.watch_path(a, b)
    build.network.announce_hosts(at=2.0)
    return build, monitor


def _steady_state(redundant: bool):
    build, monitor = _mesh(redundant)
    monitor.start(at=START)
    build.network.run(STEADY_UNTIL)
    return monitor.stats()


def _merge_results(update):
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results.update(update)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


@pytest.fixture(scope="module")
def loop_free():
    return _steady_state(redundant=False)


def test_bench_topology_steady_state_overhead(benchmark, loop_free):
    chaos = benchmark.pedantic(
        lambda: _steady_state(redundant=True), rounds=1, iterations=1
    )
    assert chaos["topology_rounds"] >= STEADY_CYCLES - 1
    assert chaos["topology_full_rounds"] >= 1
    # The redundant mesh must have settled: one initial STP block event,
    # then a perfectly still epoch (no churn, no spurious changes).
    assert chaos["topology_changes"] == 1
    assert chaos["path_reroutes"] == 0
    ratio = chaos["snmp_requests"] / loop_free["snmp_requests"]
    print(
        f"\nSNMP requests over {STEADY_CYCLES} cycles: "
        f"{loop_free['snmp_requests']:.0f} loop-free vs "
        f"{chaos['snmp_requests']:.0f} self-healing ({ratio:.3f}x); "
        f"{chaos['topology_rounds']:.0f} sync rounds, "
        f"{chaos['topology_full_rounds']:.0f} full"
    )
    assert 1.0 <= ratio <= 1.0 + OVERHEAD_CEILING
    _merge_results(
        {
            "hosts": 108,
            "poll_interval_s": POLL,
            "steady_cycles": STEADY_CYCLES,
            "full_discovery_every_rounds": FULL_EVERY,
            "baseline_snmp_requests": loop_free["snmp_requests"],
            "redundant_snmp_requests": chaos["snmp_requests"],
            "overhead_ratio": round(ratio, 4),
            "overhead_ceiling": 1.0 + OVERHEAD_CEILING,
        }
    )


def _failover_run():
    build, monitor = _mesh(redundant=True)
    net = build.network
    reports = []
    monitor.subscribe(reports.append)
    monitor.start(at=START)
    net.run(FAIL_AT - 0.1)
    watch = f"{WATCHES[0][0]}<->{WATCHES[0][1]}"
    before = monitor.path_of(watch)
    uplinks = [
        c
        for c in monitor.spec.connections
        if {c.end_a.node, c.end_b.node} == {"sw2", "sw3"}
    ]
    active = next(c for c in uplinks if c in before)
    LinkFailure.between(net, "sw2", "sw3", at=FAIL_AT, index=uplinks.index(active))
    net.run(FAIL_AT + 6 * POLL)
    return monitor, reports, watch, uplinks, active


def test_bench_topology_reconvergence_within_three_cycles(benchmark):
    monitor, reports, watch, uplinks, active = benchmark.pedantic(
        _failover_run, rounds=1, iterations=1
    )
    after = monitor.path_of(watch)
    backup = next(c for c in uplinks if c is not active)
    assert active not in after and backup in after
    assert monitor.stats()["path_reroutes"] >= 1

    rerouted_at = monitor.telemetry.events.last(PATH_REROUTED).time
    healthy = [
        r
        for r in reports
        if r.time >= rerouted_at and r.status == "fresh" and not r.unavailable
    ]
    assert healthy, "no fresh reports after the reroute"
    recovered_at = min(r.time for r in healthy)
    cycles = math.ceil((recovered_at - FAIL_AT) / POLL)
    print(
        f"\nuplink killed at {FAIL_AT:.1f}s; path rerouted at "
        f"{rerouted_at:.1f}s, first fresh report {recovered_at:.1f}s "
        f"({cycles} poll cycle(s), bound {RECONVERGENCE_CYCLES})"
    )
    assert recovered_at <= FAIL_AT + RECONVERGENCE_CYCLES * POLL
    # The other watched pairs never leave the healthy regime.
    untouched = [r for r in reports if r.name != watch]
    assert untouched and all(r.status == "fresh" for r in untouched)
    _merge_results(
        {
            "fail_at_s": FAIL_AT,
            "rerouted_at_s": rerouted_at,
            "recovered_at_s": recovered_at,
            "reconvergence_cycles": cycles,
            "reconvergence_bound_cycles": RECONVERGENCE_CYCLES,
        }
    )
