"""Exporters: Prometheus text, JSON snapshot, and sim-time series.

Three consumers, three formats:

- :func:`prometheus_text` renders the registry in the Prometheus
  exposition format (v0.0.4).  Histograms export as *summaries* --
  ``name{quantile="0.99"}`` plus ``_sum``/``_count`` -- because the
  registry tracks streaming quantiles, not fixed buckets.  Output is
  fully sorted, so it is stable for golden-file tests.
- :func:`json_snapshot` bundles metrics, event counts/ring, and the
  span rings into one dict for programmatic consumers.
- :class:`TimeSeriesRecorder` samples chosen metrics every ``interval``
  simulated seconds into rows, rendering to the line-oriented CSV the
  :mod:`repro.analysis` layer ingests.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence

from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.tsdb import TSDB


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def _labels_text(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format (sorted, stable)."""
    lines: List[str] = []
    for family in registry.families():
        kind = "summary" if family.kind == "histogram" else family.kind
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {kind}")
        for label_values, child in family.children():
            if isinstance(child, Histogram):
                for q, estimate in child.quantiles().items():
                    labels = _labels_text(
                        family.labelnames, label_values, f'quantile="{_fmt(q)}"'
                    )
                    lines.append(f"{family.name}{labels} {_fmt(estimate)}")
                labels = _labels_text(family.labelnames, label_values)
                lines.append(f"{family.name}_sum{labels} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{labels} {_fmt(child.count)}")
            else:
                labels = _labels_text(family.labelnames, label_values)
                lines.append(f"{family.name}{labels} {_fmt(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def snapshot_dict(telemetry: Telemetry, time: Optional[float] = None) -> Dict[str, object]:
    """Metrics + events + spans as one JSON-ready dict."""
    return {
        "time": telemetry.clock() if time is None else time,
        "metrics": telemetry.registry.snapshot(),
        "events": telemetry.events.snapshot(),
        "spans": {
            "started": telemetry.tracer.spans_started,
            "finished": telemetry.tracer.spans_finished,
            "recent": [
                {
                    "name": s.name,
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    "attrs": dict(s.attrs),
                }
                for s in telemetry.tracer.finished
            ],
            "slow": [
                {"name": s.name, "start": s.start, "duration": s.duration,
                 "attrs": dict(s.attrs)}
                for s in telemetry.tracer.slow
            ],
        },
    }


class _NanSafeEncoder(json.JSONEncoder):
    """NaN/Inf are not JSON; encode them as strings, not bare tokens."""

    def iterencode(self, o, _one_shot=False):  # noqa: N802 (stdlib name)
        return super().iterencode(_sanitise(o), _one_shot)


def _sanitise(obj):
    if isinstance(obj, float) and (math.isnan(obj) or math.isinf(obj)):
        return str(obj)
    if isinstance(obj, dict):
        return {str(k): _sanitise(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitise(v) for v in obj]
    return obj


def json_snapshot(
    telemetry: Telemetry, time: Optional[float] = None, indent: Optional[int] = 2
) -> str:
    return json.dumps(
        snapshot_dict(telemetry, time=time), indent=indent, cls=_NanSafeEncoder
    )


# ----------------------------------------------------------------------
# Periodic sim-time series
# ----------------------------------------------------------------------
class TimeSeriesRecorder:
    """Samples metric values every ``interval`` simulated seconds.

    ``metrics`` names the families to record; labelled families expand
    to one column per child (``name{a=b}``), histograms to one column
    per tracked quantile plus the count.  Unspecified means "whatever
    the registry holds at each sample", with columns unioned at render
    time -- convenient for exploration, fixed ``metrics`` for pipelines.

    Samples land in an embedded compressed :class:`~repro.tsdb.TSDB`
    (one single-field series per column, keyed by sample index so
    late-appearing columns stay aligned), not in Python row dicts --
    long recordings cost bits per sample, not objects.  ``rows`` and
    ``to_csv()`` decode on demand and are unchanged observably.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        sim,
        interval: float = 2.0,
        metrics: Optional[Sequence[str]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"non-positive sample interval {interval!r}")
        self.registry = registry
        self.sim = sim
        self.interval = interval
        self.metrics = list(metrics) if metrics is not None else None
        # Column store: series "t" maps sample index -> sim time; every
        # other column is one series of (sample index, value).
        self._db = TSDB(fields=("value",), chunk_size=512)
        self._count = 0
        self._columns: List[str] = []  # first-appearance order
        self._rows_cache: Optional[tuple] = None  # (count, rows)
        self._task = None

    # -- lifecycle -----------------------------------------------------
    def start(self, at: Optional[float] = None) -> "TimeSeriesRecorder":
        if self._task is not None:
            raise RuntimeError("recorder already started")
        self._task = self.sim.call_every(
            self.interval, self.sample, start=at if at is not None else self.sim.now
        )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- sampling ------------------------------------------------------
    def _columns_of(self, family) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for label_values, child in family.children():
            suffix = ""
            if family.labelnames:
                inner = ",".join(
                    f"{n}={v}" for n, v in zip(family.labelnames, label_values)
                )
                suffix = "{" + inner + "}"
            if isinstance(child, Histogram):
                for q, estimate in child.quantiles().items():
                    out[f"{family.name}{suffix}:p{int(round(q * 100))}"] = estimate
                out[f"{family.name}{suffix}:count"] = child.count
            else:
                out[f"{family.name}{suffix}"] = child.value
        return out

    def sample(self) -> Dict[str, float]:
        """Take one sample row now (also the periodic callback)."""
        row: Dict[str, float] = {"time": self.sim.now}
        if self.metrics is None:
            families = self.registry.families()
        else:
            families = [self.registry.get(name) for name in self.metrics]
        for family in families:
            row.update(self._columns_of(family))
        index = float(self._count)
        self._db.append("t", index, (row["time"],))
        for name, value in row.items():
            if name == "time":
                continue
            if "c:" + name not in self._db:
                self._columns.append(name)
            self._db.append("c:" + name, index, (float(value),))
        self._count += 1
        self._rows_cache = None
        return row

    # -- rendering -----------------------------------------------------
    @property
    def rows(self) -> List[Dict[str, float]]:
        """All sample rows, decoded from the column store."""
        if self._rows_cache is not None and self._rows_cache[0] == self._count:
            return self._rows_cache[1]
        if self._count == 0:
            rows: List[Dict[str, float]] = []
        else:
            _, tvals = self._db.range("t")
            rows = [{"time": float(t)} for t in tvals["value"]]
            for name in self._columns:
                indexes, vals = self._db.range("c:" + name)
                for i, v in zip(indexes, vals["value"]):
                    rows[int(i)][name] = float(v)
        self._rows_cache = (self._count, rows)
        return rows

    def columns(self) -> List[str]:
        return ["time"] + list(self._columns)

    def storage_stats(self):
        """Compressed column-store accounting (a tsdb SeriesStats)."""
        return self._db.stats()

    def to_csv(self) -> str:
        """Line-oriented series: header row then one line per sample."""
        cols = self.columns()
        lines = [",".join(cols)]
        for row in self.rows:
            lines.append(
                ",".join(_fmt(row[c]) if c in row else "" for c in cols)
            )
        return "\n".join(lines) + "\n"
