"""CI gate for the refactored poll path at 1000-host campus scale.

A four-pod hierarchical campus (4 pods x 5 switches x 50 hosts = 1000
end hosts, agents on the 21 switches) runs the two-level coordinator
tree with the full refactored path: GetBulk batching, pipelined
scheduling inside each shard, and delta-encoded uplinks.  Acceptance
properties from the refactor issue:

- **Exchange economy >= 5x.**  The bulk+pipelined plane must issue at
  least 5x fewer SNMP exchanges per poll cycle than the same plane in
  per-varbind mode (measured over a short baseline window -- per-varbind
  at this scale is ~4000 exchanges per cycle, which is the point).
- **Bounded cycle wall-time.**  Simulating a steady poll cycle of the
  full plane must stay under a fixed wall-clock ceiling, so the
  benchmark itself proves the scheduling pipeline doesn't collapse at
  scale.
- **>= 80 % uplink traffic reduction, quiescent.**  With no offered
  load, shard uplinks ship deltas (ADVANCE/CHANGED records) whose byte
  cost is at most a fifth of the legacy JSON encoding's.
- **Leaf failover re-coverage <= 3 cycles.**  Killing a leaf
  coordinator mid-run must leave every watched path in its shard back
  to trusted reports within three poll intervals.

Writes ``BENCH_distributed.json`` for the CI artifact upload.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.hierarchy import HierarchicalMonitor
from repro.experiments.scale import hierarchy_plan, scale_spec
from repro.simnet.faults import WorkerCrash
from repro.spec.builder import build_network

PODS, SWITCHES, HOSTS = 4, 5, 50  # 1000 end hosts, 21 switch agents
POLL = 2.0
STEADY_UNTIL = 30.0  # 15 cycles at t = 0, 2, ..., 28
STEADY_CYCLES = int(STEADY_UNTIL / POLL)
BASELINE_UNTIL = 4.0  # 2 per-varbind cycles are ~9000 exchanges already
BASELINE_CYCLES = int(BASELINE_UNTIL / POLL)
EXCHANGE_RATIO_FLOOR = 5.0
REDUCTION_FLOOR = 0.80
CYCLE_WALL_CEILING_S = 10.0  # generous: CI boxes vary, collapse doesn't
CRASH_AT = 10.0
RECOVER_AT = 25.0
CHAOS_UNTIL = 36.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"


def _plane(poll_mode, **kwargs):
    spec = scale_spec(
        hierarchical=PODS, switches=SWITCHES, hosts_per_switch=HOSTS,
        host_agents=False,
    )
    assert len(spec.hosts()) >= 1000, "benchmark campus too small"
    plan = hierarchy_plan(PODS, switches=SWITCHES, hosts_per_switch=HOSTS)
    build = build_network(spec)
    dm = HierarchicalMonitor(
        build, plan, poll_interval=POLL, poll_jitter=0.0, seed=0,
        poll_mode=poll_mode, max_batch=256, **kwargs,
    )
    return build, dm


def _exchanges(dm):
    return sum(leaf.requests_sent for leaf in dm.leaves.values())


@pytest.fixture(scope="module")
def steady_run():
    """The refactored plane, quiescent, 15 cycles; also wall-timed."""
    build, dm = _plane("bulk")
    dm.start()
    t0 = time.perf_counter()
    build.network.run(STEADY_UNTIL)
    wall = time.perf_counter() - t0
    shipped = sum(l.shipper.bytes_shipped for l in dm.leaves.values())
    baseline = sum(l.shipper.bytes_baseline for l in dm.leaves.values())
    out = {
        "stats": dm.stats(),
        "exchanges_per_cycle": _exchanges(dm) / STEADY_CYCLES,
        "wall_s_per_cycle": wall / STEADY_CYCLES,
        "uplink_bytes_shipped": shipped,
        "uplink_bytes_baseline": baseline,
        "uplink_reduction": 1.0 - shipped / baseline,
    }
    dm.stop()
    return out


@pytest.fixture(scope="module")
def per_varbind_run():
    """The naive baseline: same plane, one GET per varbind, no window."""
    build, dm = _plane("per-varbind", pipeline_window=0, delta_shipping=False)
    dm.start()
    build.network.run(BASELINE_UNTIL)
    out = {"exchanges_per_cycle": _exchanges(dm) / BASELINE_CYCLES}
    dm.stop()
    return out


def _merge_results(update):
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results.update(update)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def test_bench_scale_exchange_economy(steady_run, per_varbind_run):
    bulk = steady_run["exchanges_per_cycle"]
    naive = per_varbind_run["exchanges_per_cycle"]
    ratio = naive / bulk
    print(f"\nSNMP exchanges per cycle over 1000 hosts / 21 agents: "
          f"{naive:.0f} per-varbind vs {bulk:.0f} bulk+pipelined "
          f"({ratio:.1f}x fewer)")
    assert steady_run["stats"]["samples_received"] > 0
    assert ratio >= EXCHANGE_RATIO_FLOOR
    _merge_results({
        "hosts": PODS * SWITCHES * HOSTS,
        "switch_agents": PODS * SWITCHES + 1,
        "shards": PODS,
        "poll_interval_s": POLL,
        "per_varbind_exchanges_per_cycle": naive,
        "bulk_exchanges_per_cycle": bulk,
        "exchange_ratio": ratio,
    })


def test_bench_scale_cycle_wall_time(steady_run):
    wall = steady_run["wall_s_per_cycle"]
    print(f"\n{wall:.2f}s wall per simulated poll cycle "
          f"(ceiling {CYCLE_WALL_CEILING_S:.0f}s)")
    assert wall < CYCLE_WALL_CEILING_S
    _merge_results({"wall_s_per_cycle": wall})


def test_bench_scale_quiescent_delta_reduction(steady_run):
    reduction = steady_run["uplink_reduction"]
    stats = steady_run["stats"]
    keyframes = sum(
        v for k, v in stats.items() if k.startswith("per_shard_keyframes.")
    )
    print(f"\nuplink bytes quiescent: "
          f"{steady_run['uplink_bytes_shipped']:.0f} delta vs "
          f"{steady_run['uplink_bytes_baseline']:.0f} JSON baseline "
          f"({reduction:.1%} reduction, {keyframes:.0f} keyframes)")
    assert stats["decode_errors"] == 0.0
    assert keyframes >= 1
    assert reduction >= REDUCTION_FLOOR
    _merge_results({
        "uplink_bytes_shipped": steady_run["uplink_bytes_shipped"],
        "uplink_bytes_baseline": steady_run["uplink_bytes_baseline"],
        "uplink_reduction": reduction,
    })


def test_bench_scale_leaf_failover_recoverage(benchmark):
    def chaos():
        build, dm = _plane("bulk")
        dm.watch_path("p0h0_0", f"p0h{SWITCHES - 1}_{HOSTS - 1}")
        reports = []
        dm.subscribe(reports.append)
        WorkerCrash(build.network.sim, dm.leaves["mon0"],
                    at=CRASH_AT, until=RECOVER_AT)
        dm.start()
        build.network.run(CHAOS_UNTIL)
        stats = dm.stats()
        dm.stop()
        return reports, stats

    reports, stats = benchmark.pedantic(chaos, rounds=1, iterations=1)
    assert stats["failovers"] >= 1.0 and stats["rebalances"] >= 1.0
    deadline = CRASH_AT + 3 * POLL
    settled = [r for r in reports if deadline <= r.time < RECOVER_AT]
    assert settled, "no reports emitted after the re-coverage deadline"
    assert all(r.trusted for r in settled), (
        "shard not re-covered within 3 poll cycles of the leaf crash: "
        + ", ".join(f"{r.time:.1f}s={r.status}" for r in settled if not r.trusted)
    )
    gap_window = [r for r in reports if CRASH_AT + 1.0 <= r.time <= deadline]
    degraded = [r for r in gap_window if not r.trusted]
    recovered = min(r.time for r in reports if r.time > CRASH_AT and r.trusted)
    print(f"\nfirst trusted report {recovered - CRASH_AT:.1f}s after the leaf "
          f"crash (deadline {3 * POLL:.1f}s); "
          f"{len(degraded)}/{len(gap_window)} gap-window reports degraded")
    late = [r for r in reports if r.time >= RECOVER_AT + 3 * POLL]
    assert late and all(r.trusted for r in late)
    _merge_results({
        "leaf_crash_recoverage_s": recovered - CRASH_AT,
        "recoverage_deadline_s": 3 * POLL,
        "failovers": stats["failovers"],
    })
