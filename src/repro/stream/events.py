"""Typed events on the streaming subscription surface.

Consumers of the bandwidth matrix used to poll snapshots and diff them;
the stream turns each dirty-pair recomputation into one of a small set
of typed events instead.  Every event is a frozen record carrying:

- the **pair** it concerns (the unordered host pair, normalised so
  ``("a", "b")`` and ``("b", "a")`` are the same subscription key),
- the simulated **time** of the snapshot it came from,
- the publish **epoch** -- all events emitted from one matrix snapshot
  share one epoch, and epochs are strictly increasing, so a consumer
  can tell "these events describe one coherent instant" and detect
  missed cycles (a gap in epochs after a ``drop_oldest`` overflow),
- the full :class:`~repro.core.report.PathReport` behind the change, so
  event consumers (the RM adapter) see exactly what snapshot consumers
  saw.

Kinds:

:class:`PairChanged`
    The pair's measurement moved significantly (or at all, for
    subscriptions that opted out of significance filtering).
:class:`PathDegraded` / :class:`PathRestored`
    The pair's trust status crossed fresh/degraded/unavailable -- these
    always bypass significance deadbands: a trust transition is never
    "too small to matter".
:class:`QueryFired` / :class:`QueryCleared`
    A continuous query's standing predicate began / stopped holding.
:class:`ProbeDisagreement`
    The active probe plane measured the pair's path and disagreed with
    the passive report beyond the cross-validator's debounced tolerance.
    Like trust transitions, these bypass significance filtering: two
    measurement planes contradicting each other is never noise.
:class:`TopologyChanged` / :class:`PathRerouted`
    The self-healing plane moved the active topology.  ``TopologyChanged``
    carries the sentinel pair ``("*", "*")`` (it concerns the whole
    network, so it reaches wildcard subscriptions); ``PathRerouted``
    names the watched pair whose measured path was re-resolved onto a
    different connection series.  Both bypass significance filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.report import PathReport

__all__ = [
    "PairChanged",
    "PathDegraded",
    "PathRerouted",
    "PathRestored",
    "ProbeDisagreement",
    "QueryCleared",
    "QueryFired",
    "StreamEvent",
    "TopologyChanged",
    "pair_key",
]

# TopologyChanged concerns the network as a whole, not one pair; the
# sentinel matches no real host so only wildcard subscriptions see it.
TOPOLOGY_PAIR: Tuple[str, str] = ("*", "*")


def pair_key(a: str, b: str) -> Tuple[str, str]:
    """The normalised (sorted) subscription key for an unordered pair."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class StreamEvent:
    """Base record: what pair, when, and under which publish epoch."""

    pair: Tuple[str, str]
    time: float
    epoch: int

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class PairChanged(StreamEvent):
    """One pair's bandwidth figures moved (post significance filter).

    ``previous_available_bps`` is the value behind the last *delivered*
    event for this pair (NaN before the first delivery), so a consumer
    can see the step size without holding its own last-value table.
    """

    report: PathReport
    available_bps: float
    used_bps: float
    utilization: float
    status: str
    previous_available_bps: float

    def __str__(self) -> str:
        a, b = self.pair
        return (
            f"[{self.time:9.3f}s e{self.epoch}] {a}<->{b}: "
            f"available {self.available_bps / 1000:.1f} KB/s "
            f"(was {self.previous_available_bps / 1000:.1f}), "
            f"used {self.used_bps / 1000:.1f} KB/s [{self.status}]"
        )


@dataclass(frozen=True)
class PathDegraded(StreamEvent):
    """The pair's trust status worsened (fresh -> degraded/unavailable)."""

    report: PathReport
    status: str
    previous_status: str

    def __str__(self) -> str:
        a, b = self.pair
        return (
            f"[{self.time:9.3f}s e{self.epoch}] {a}<->{b}: "
            f"DEGRADED {self.previous_status} -> {self.status}"
        )


@dataclass(frozen=True)
class PathRestored(StreamEvent):
    """The pair's trust status improved (towards fresh)."""

    report: PathReport
    status: str
    previous_status: str

    def __str__(self) -> str:
        a, b = self.pair
        return (
            f"[{self.time:9.3f}s e{self.epoch}] {a}<->{b}: "
            f"restored {self.previous_status} -> {self.status}"
        )


@dataclass(frozen=True)
class ProbeDisagreement(StreamEvent):
    """Active and passive measurements of this pair contradict each other.

    ``cause`` localizes the disagreement the way the cross-validator did
    (``unmetered_segment`` | ``stale_counter`` |
    ``quarantine_candidate_agent``); ``blamed`` names the connection or
    counter source under suspicion.  ``report`` is the passive
    :class:`~repro.core.report.PathReport` the probe contradicted.
    """

    report: PathReport
    probe_bps: float
    passive_bps: float
    cause: str
    blamed: str

    def __str__(self) -> str:
        a, b = self.pair
        return (
            f"[{self.time:9.3f}s e{self.epoch}] {a}<->{b}: PROBE DISAGREES "
            f"active {self.probe_bps / 1000:.1f} vs passive "
            f"{self.passive_bps / 1000:.1f} KB/s ({self.cause}: {self.blamed})"
        )


@dataclass(frozen=True)
class TopologyChanged(StreamEvent):
    """The active topology moved (uplink blocked/unblocked, host moved).

    ``reason`` is ``"stp"`` (spanning-tree port states changed which
    connections carry traffic) or ``"attachment"`` (discovery saw a host
    behind a different switch port).  ``topology_epoch`` is the graph
    epoch after the change, so consumers can correlate subsequent
    ``PathRerouted`` events (same epoch) with their cause.
    """

    reason: str
    detail: str
    topology_epoch: int
    blocked: int  # connections excluded from the active view, after

    def __str__(self) -> str:
        return (
            f"[{self.time:9.3f}s e{self.epoch}] TOPOLOGY CHANGED ({self.reason}) "
            f"{self.detail} [graph epoch {self.topology_epoch}, "
            f"{self.blocked} blocked]"
        )


@dataclass(frozen=True)
class PathRerouted(StreamEvent):
    """A watched pair's measured path was re-resolved onto new links."""

    watch: str
    # Connection series (one string per connection), not node names: a
    # failover between parallel uplinks visits the same nodes over
    # different links, and the event must show which.
    old_path: Tuple[str, ...]
    new_path: Tuple[str, ...]
    topology_epoch: int

    def __str__(self) -> str:
        a, b = self.pair
        return (
            f"[{self.time:9.3f}s e{self.epoch}] {a}<->{b}: REROUTED "
            f"{' | '.join(self.old_path)} ==> {' | '.join(self.new_path)}"
        )


@dataclass(frozen=True)
class QueryFired(StreamEvent):
    """A continuous query's predicate began holding for this pair."""

    query: str
    value: float
    detail: Optional[str] = None

    def __str__(self) -> str:
        a, b = self.pair
        tail = f" ({self.detail})" if self.detail else ""
        return (
            f"[{self.time:9.3f}s e{self.epoch}] query {self.query} FIRED "
            f"on {a}<->{b}: {self.value:.1f}{tail}"
        )


@dataclass(frozen=True)
class QueryCleared(StreamEvent):
    """A continuous query's predicate stopped holding for this pair."""

    query: str
    value: float

    def __str__(self) -> str:
        a, b = self.pair
        return (
            f"[{self.time:9.3f}s e{self.epoch}] query {self.query} cleared "
            f"on {a}<->{b}: {self.value:.1f}"
        )
