"""Property-based conservation invariants for the LAN substrate.

Every bandwidth figure the monitor reports is a counter difference, so
the counters themselves must conserve octets exactly:

- what a host's socket sends (plus headers) equals what its NIC counts out;
- what the destination NIC counts in equals what the DISCARD sink absorbs
  (plus headers);
- a switch moves unicast bytes from exactly one ingress port to exactly
  one egress port;
- a hub repeats every frame to every other port, where exactly one
  station accepts it and the rest MAC-filter it.

Hypothesis drives random traffic patterns through both device types.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.network import Network
from repro.simnet.packet import IPV4_HEADER_SIZE, UDP_HEADER_SIZE
from repro.simnet.sockets import DISCARD_PORT

HEADERS = UDP_HEADER_SIZE + IPV4_HEADER_SIZE

# (src index, dst index, payload size) over 4 hosts; sizes stay below the
# MTU so one datagram is one frame and the arithmetic is exact.
flows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=1400),
    ),
    min_size=1,
    max_size=25,
).map(lambda raw: [(s, d, size) for s, d, size in raw if s != d])


def build(device_kind: str):
    net = Network()
    hosts = [net.add_host(f"h{i}") for i in range(4)]
    if device_kind == "switch":
        dev = net.add_switch("dev", 6, managed=False)
    else:
        dev = net.add_hub("dev", 6, speed_bps=10e6)
    for host in hosts:
        net.connect(host, dev)
    net.announce_hosts()
    net.run(0.05)  # announcements done; FDB warm
    return net, hosts, dev


def baseline(hosts):
    return [h.interfaces[0].counters.snapshot() for h in hosts]


def run_flows(net, hosts, pattern):
    socks = [h.create_socket() for h in hosts]
    for i, (src, dst, size) in enumerate(pattern):
        # Stagger sends so hub serialisation never overflows queues.
        net.sim.schedule_at(net.now + 0.01 * i, socks[src].sendto, size,
                           (hosts[dst].primary_ip, DISCARD_PORT))
    net.run(net.now + 0.01 * len(pattern) + 2.0)


class TestSwitchConservation:
    @settings(max_examples=25, deadline=None)
    @given(flows)
    def test_octets_conserved_end_to_end(self, pattern):
        net, hosts, dev = build("switch")
        before = baseline(hosts)
        discard_before = [h.discard.octets for h in hosts]
        run_flows(net, hosts, pattern)

        sent_payload = [0] * 4
        recv_payload = [0] * 4
        frames_out = [0] * 4
        frames_in = [0] * 4
        for src, dst, size in pattern:
            sent_payload[src] += size
            recv_payload[dst] += size
            frames_out[src] += 1
            frames_in[dst] += 1

        for i, host in enumerate(hosts):
            counters = host.interfaces[0].counters
            # NIC out = payload + per-datagram headers (sender side).
            assert (
                counters.out_octets - before[i]["out_octets"]
                == sent_payload[i] + HEADERS * frames_out[i]
            )
            # NIC in = payload + headers (receiver side).
            assert (
                counters.in_octets - before[i]["in_octets"]
                == recv_payload[i] + HEADERS * frames_in[i]
            )
            # The DISCARD sink saw exactly the payload bytes.
            assert host.discard.octets - discard_before[i] == recv_payload[i]
            # A switch never shows this host anyone else's unicast.
            assert counters.in_filtered_pkts == 0

    @settings(max_examples=15, deadline=None)
    @given(flows)
    def test_switch_port_counters_mirror_hosts(self, pattern):
        net, hosts, dev = build("switch")
        port_before = [p.counters.snapshot() for p in dev.interfaces[:4]]
        host_before = baseline(hosts)
        run_flows(net, hosts, pattern)
        for i, host in enumerate(hosts):
            port = dev.interfaces[i]
            host_out = host.interfaces[0].counters.out_octets - host_before[i]["out_octets"]
            host_in = host.interfaces[0].counters.in_octets - host_before[i]["in_octets"]
            # Port in = what the host sent; port out = what it received.
            assert port.counters.in_octets - port_before[i]["in_octets"] == host_out
            assert port.counters.out_octets - port_before[i]["out_octets"] == host_in


class TestHubConservation:
    @settings(max_examples=25, deadline=None)
    @given(flows)
    def test_unicast_accepted_once_filtered_elsewhere(self, pattern):
        net, hosts, dev = build("hub")
        before = baseline(hosts)
        discard_before = [h.discard.octets for h in hosts]
        run_flows(net, hosts, pattern)

        recv_payload = [0] * 4
        frames_to = [0] * 4
        total_frames = len(pattern)
        for src, dst, size in pattern:
            recv_payload[dst] += size
            frames_to[dst] += 1

        for i, host in enumerate(hosts):
            counters = host.interfaces[0].counters
            # Delivered exactly its own traffic...
            assert host.discard.octets - discard_before[i] == recv_payload[i]
            assert (
                counters.in_ucast_pkts - before[i]["in_ucast_pkts"] == frames_to[i]
            )
            # ...and MAC-filtered every frame the hub repeated past it
            # that was neither sent by nor addressed to it.
            frames_from_me = sum(1 for s, d, _sz in pattern if s == i)
            expected_filtered = total_frames - frames_to[i] - frames_from_me
            assert (
                counters.in_filtered_pkts - before[i]["in_filtered_pkts"]
                == expected_filtered
            )

    @settings(max_examples=10, deadline=None)
    @given(flows)
    def test_hub_repeats_every_frame_once(self, pattern):
        net, hosts, dev = build("hub")
        repeated_before = dev.frames_repeated
        run_flows(net, hosts, pattern)
        assert dev.frames_repeated - repeated_before == len(pattern)
        assert dev.frames_dropped == 0
