"""Time-series storage of path measurements, backed by :mod:`repro.tsdb`.

The monitor appends every :class:`~repro.core.report.PathReport` here;
experiments pull NumPy arrays out to draw the paper's figures and compute
the Table-2 statistics.

Since PR 3 the numeric columns of every series -- time, used/available/
capacity bandwidth, confidence and trust status -- live in an embedded
compressed time-series database (delta-of-delta timestamps, XOR float
values; see :mod:`repro.tsdb`).  Decoding is bit-exact, so the arrays
these classes return are identical to the ones the old Python-object
lists produced.  The full :class:`PathReport` objects (which carry the
per-connection measurements arrays cannot) are additionally retained in
``reports`` unless ``keep_reports=False``; a retention policy prunes
both representations together, with aged-out chunks optionally
downsampled instead of discarded.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.report import PathReport
from repro.tsdb import Retention, Series, SeriesStats, TSDB
from repro.tsdb.series import DEFAULT_CHUNK_SIZE

#: Numeric columns extracted from every report, in storage order.
HISTORY_FIELDS = ("used_bps", "available_bps", "capacity_bps", "confidence", "status")

#: ``PathReport.status`` encoded as a float column.
STATUS_CODES = {"fresh": 0.0, "degraded": 1.0, "unavailable": 2.0}
STATUS_NAMES = {code: name for name, code in STATUS_CODES.items()}

#: On an uncongested single-bottleneck path ``available == capacity -
#: used`` holds bit-exactly for almost every report, so the available
#: column XOR-encodes against that prediction (a hit costs one bit; a
#: miss costs no more than the plain codec -- never lossy either way).
HISTORY_PREDICTORS = {
    "available_bps": lambda cols: cols["capacity_bps"] - cols["used_bps"],
}


def _report_row(report: PathReport) -> Tuple[float, ...]:
    return (
        report.used_bps,
        report.available_bps,
        report.capacity_bps,
        report.confidence,
        STATUS_CODES[report.status],
    )


class PathSeries:
    """All reports for one watched path, in time order.

    A thin view over one tsdb :class:`~repro.tsdb.Series`: appends write
    the numeric row into compressed storage (and keep the full report
    object when ``keep_reports``); array reads decode lazily and are
    cached until the next append.  ``between()`` returns a read-only
    window sharing no storage with the parent.
    """

    def __init__(
        self,
        label: str,
        series: Optional[Series] = None,
        keep_reports: bool = True,
    ) -> None:
        self.label = label
        self._ts = series if series is not None else Series(
            label, HISTORY_FIELDS, chunk_size=DEFAULT_CHUNK_SIZE,
            predictors=HISTORY_PREDICTORS,
        )
        self.reports: List[PathReport] = []
        self._keep_reports = keep_reports
        self._latest: Optional[PathReport] = None
        self._cache: Optional[Tuple[np.ndarray, Dict[str, np.ndarray]]] = None
        self._window: Optional[Tuple[np.ndarray, Dict[str, np.ndarray]]] = None

    @property
    def tsdb_series(self) -> Series:
        """The backing compressed series (storage stats, raw queries)."""
        return self._ts

    def append(self, report: PathReport) -> None:
        if self._window is not None:
            raise ValueError(
                f"series window for {self.label} is a read-only view"
            )
        last = self._ts.max_time
        if last is not None and report.time < last:
            raise ValueError(
                f"out-of-order report for {self.label}: "
                f"{report.time} after {last}"
            )
        self._ts.append(report.time, _report_row(report))
        if self._keep_reports:
            self.reports.append(report)
        self._latest = report
        self._cache = None

    def __len__(self) -> int:
        if self._window is not None:
            return len(self._window[0])
        return len(self._ts)

    # ------------------------------------------------------------------
    # Array extraction (decoded from compressed chunks, cached)
    # ------------------------------------------------------------------
    def _arrays(self) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        if self._window is not None:
            return self._window
        if self._cache is None:
            self._cache = self._ts.arrays()
        return self._cache

    def times(self) -> np.ndarray:
        return self._arrays()[0]

    def used(self) -> np.ndarray:
        """Used bandwidth in bytes/second (Figures 4b, 5c-d, 6d-e)."""
        return self._arrays()[1]["used_bps"]

    def available(self) -> np.ndarray:
        return self._arrays()[1]["available_bps"]

    def column(self, field: str) -> np.ndarray:
        """Any stored numeric column (see :data:`HISTORY_FIELDS`)."""
        return self._arrays()[1][field]

    def series(
        self, extract: Callable[[PathReport], float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Custom extraction over the retained full report objects."""
        times = self.times()
        if len(self.reports) != len(times):
            raise ValueError(
                f"series({self.label}): custom extraction needs the full "
                f"report objects, but only {len(self.reports)} of "
                f"{len(times)} are retained (keep_reports/retention)"
            )
        values = np.array([extract(r) for r in self.reports], dtype=float)
        return times, values

    def between(self, t_start: float, t_end: float) -> "PathSeries":
        """The sub-series with t_start <= time < t_end (read-only view)."""
        times, columns = self._arrays()
        lo = int(np.searchsorted(times, t_start, "left"))
        hi = int(np.searchsorted(times, t_end, "left"))
        out = PathSeries(self.label, series=self._ts, keep_reports=self._keep_reports)
        out._window = (
            times[lo:hi],
            {name: values[lo:hi] for name, values in columns.items()},
        )
        if self.reports:
            rlo = bisect_left(self.reports, t_start, key=lambda r: r.time)
            rhi = bisect_left(self.reports, t_end, key=lambda r: r.time)
            out.reports = self.reports[rlo:rhi]
            out._latest = out.reports[-1] if out.reports else None
        return out

    def latest(self) -> Optional[PathReport]:
        return self._latest

    # ------------------------------------------------------------------
    # Retention plumbing (driven by MeasurementHistory)
    # ------------------------------------------------------------------
    def _sync_pruned(self) -> None:
        """Trim retained reports to the tsdb's surviving time range."""
        floor = self._ts.min_time
        if floor is None:
            self.reports.clear()
        elif self.reports and self.reports[0].time < floor:
            cut = bisect_left(self.reports, floor, key=lambda r: r.time)
            del self.reports[:cut]
        self._cache = None


class MeasurementHistory:
    """Per-path series, keyed by the watch label, over one shared TSDB.

    ``retention_s`` bounds raw storage per series: compressed chunks
    entirely older than the newest sample minus ``retention_s`` are
    dropped (downsampled first into ``downsample_s``-second windows when
    given), and the retained report objects are pruned in lockstep.
    """

    def __init__(
        self,
        retention_s: Optional[float] = None,
        downsample_s: Optional[float] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        keep_reports: bool = True,
    ) -> None:
        retention = (
            Retention(retention_s, downsample_window_s=downsample_s)
            if retention_s is not None
            else None
        )
        self.db = TSDB(
            HISTORY_FIELDS,
            chunk_size=chunk_size,
            retention=retention,
            predictors=HISTORY_PREDICTORS,
        )
        self.keep_reports = keep_reports
        self._series: Dict[str, PathSeries] = {}

    def append(self, report: PathReport) -> None:
        series = self._series.get(report.label)
        if series is None:
            series = self._series[report.label] = PathSeries(
                report.label,
                series=self.db.series(report.label),
                keep_reports=self.keep_reports,
            )
        series.append(report)
        if self.db.retention is not None:
            if self.db.enforce_retention(now=report.time):
                for view in self._series.values():
                    view._sync_pruned()

    def series(self, label: str) -> PathSeries:
        try:
            return self._series[label]
        except KeyError:
            raise KeyError(f"no measurements recorded for path {label!r}") from None

    def labels(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, label: str) -> bool:
        return label in self._series

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    @property
    def dropped_samples(self) -> int:
        """Raw samples retention has dropped across all series."""
        return self.db.stats().samples_dropped

    def storage_stats(self) -> SeriesStats:
        """Whole-history storage accounting (samples, bytes, ratio)."""
        return self.db.stats()
