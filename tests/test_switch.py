"""Unit tests for the learning switch: the paper's per-port isolation."""

import pytest

from repro.simnet.network import Network
from repro.simnet.sockets import DISCARD_PORT
from repro.simnet.switch import SwitchError


def star(n_hosts=3, managed=False):
    net = Network()
    hosts = [net.add_host(f"H{i}") for i in range(n_hosts)]
    sw = net.add_switch("sw", n_hosts + 2, managed=managed)
    for host in hosts:
        net.connect(host, sw)
    net.announce_hosts()
    net.run(0.01)  # let announcements land so the FDB is warm
    return net, hosts, sw


class TestForwarding:
    def test_unicast_goes_to_one_port_only(self):
        net, (h0, h1, h2), sw = star()
        h0.create_socket().sendto(1000, (h1.primary_ip, DISCARD_PORT))
        net.run(1.0)
        assert h1.discard.datagrams == 1
        # The port to h2 carried only the original announcements.
        port_h2 = sw.port(3)
        assert port_h2.counters.out_ucast_pkts == 0

    def test_per_port_counters_isolate_traffic(self):
        """The property behind the paper's switch rule u_i = t_i."""
        net, (h0, h1, h2), sw = star()
        base_p2 = sw.port(2).counters.out_octets
        base_p3 = sw.port(3).counters.out_octets
        sock = h0.create_socket()
        for _ in range(10):
            sock.sendto(972, (h1.primary_ip, DISCARD_PORT))
        net.run(1.0)
        # port2 (h1) carries 10 x 1000-byte frames outbound...
        assert sw.port(2).counters.out_octets - base_p2 == 10_000
        # ...while port3 (h2) carries none of it.
        assert sw.port(3).counters.out_octets - base_p3 == 0

    def test_unknown_destination_floods(self):
        net, hosts, sw = star()
        # Age out everything, then send to a never-seen MAC: must flood.
        before = sw.frames_flooded
        from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram
        from repro.simnet.address import MacAddress

        packet = IPPacket(
            src=hosts[0].primary_ip,
            dst=hosts[1].primary_ip,
            payload=UDPDatagram(1, 2, payload_size=10),
        )
        frame = EthernetFrame(hosts[0].interfaces[0].mac, MacAddress(0x123456), packet)
        hosts[0].interfaces[0].transmit(frame)
        net.run(1.0)
        assert sw.frames_flooded == before + 1

    def test_broadcast_reaches_all_hosts(self):
        net, (h0, h1, h2), sw = star()
        from repro.simnet.network import BROADCAST_IP

        before1, before2 = h1.udp_no_port, h2.udp_no_port
        h0.create_socket().sendto(50, (BROADCAST_IP, 520))
        net.run(1.0)
        assert h1.udp_no_port == before1 + 1
        assert h2.udp_no_port == before2 + 1

    def test_learning_stops_flooding(self):
        net, (h0, h1, h2), sw = star()
        sock = h0.create_socket()
        flooded_before = sw.frames_flooded
        sock.sendto(10, (h1.primary_ip, DISCARD_PORT))
        net.run(0.5)
        assert sw.frames_flooded == flooded_before  # h1 already learned

    def test_frame_back_to_ingress_filtered(self):
        """A frame whose destination lives on the ingress port is dropped."""
        net, (h0, h1, h2), sw = star()
        from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram

        # h0 sends a frame addressed (at L2) to its own MAC via the wire.
        packet = IPPacket(
            src=h0.primary_ip,
            dst=h1.primary_ip,
            payload=UDPDatagram(1, 2, payload_size=10),
        )
        frame = EthernetFrame(h0.interfaces[0].mac, h0.interfaces[0].mac, packet)
        delivered_before = h1.ip_received
        h0.interfaces[0].transmit(frame)
        net.run(1.0)
        assert h1.ip_received == delivered_before

    def test_mac_aging(self):
        net, (h0, h1, h2), sw = star()
        assert len(sw.fdb_entries()) == 3
        net.run(400.0)  # beyond the 300 s aging time
        assert sw.fdb_entries() == []


class TestPorts:
    def test_port_lookup_one_based(self):
        net, hosts, sw = star()
        assert sw.port(1).local_name == "port1"
        with pytest.raises(SwitchError):
            sw.port(0)
        with pytest.raises(SwitchError):
            sw.port(99)

    def test_free_port_allocation(self):
        net, hosts, sw = star(n_hosts=2)
        free = sw.free_port()
        assert free.link is None

    def test_no_free_ports_raises(self):
        net = Network()
        sw = net.add_switch("sw", 2, managed=False)
        a = net.add_host("A")
        b = net.add_host("B")
        net.connect(a, sw)
        net.connect(b, sw)
        with pytest.raises(SwitchError):
            sw.free_port()

    def test_minimum_ports(self):
        net = Network()
        with pytest.raises(SwitchError):
            net.add_switch("tiny", 1)


class TestManagement:
    def test_managed_switch_answers_udp(self):
        net = Network()
        a = net.add_host("A")
        sw = net.add_switch("sw", 4, managed=True)
        net.connect(a, sw)
        net.announce_hosts()
        stack = net.management["sw"]
        got = []
        sock = stack.create_socket(5000)
        sock.on_receive = lambda payload, size, ip, port: got.append(size)
        a.create_socket().sendto(64, (stack.primary_ip, 5000))
        net.run(1.0)
        assert got == [64]

    def test_management_reply_reaches_host(self):
        net = Network()
        a = net.add_host("A")
        sw = net.add_switch("sw", 4, managed=True)
        net.connect(a, sw)
        net.announce_hosts()
        stack = net.management["sw"]
        got = []
        a_sock = a.create_socket(6000)
        a_sock.on_receive = lambda payload, size, ip, port: got.append(size)
        sock = stack.create_socket(5000)
        sock.on_receive = lambda payload, size, ip, port: sock.sendto(size * 2, (ip, port))
        a.create_socket(6001)  # unrelated
        net.run(0.1)
        a2 = a.create_socket()
        # send from port 6000 by sending via the bound socket
        a_sock.sendto(32, (stack.primary_ip, 5000))
        net.run(1.0)
        assert got == [64]

    def test_fdb_entries_sorted_by_mac(self):
        net, hosts, sw = star(n_hosts=3)
        entries = sw.fdb_entries()
        macs = [mac for mac, _port, _age in entries]
        assert macs == sorted(macs)


class TestLoopGuard:
    def test_hop_limit_kills_circulating_frames(self):
        """Two switches wired in a loop must not melt down."""
        net = Network()
        a = net.add_host("A")
        sw1 = net.add_switch("sw1", 4, managed=False)
        sw2 = net.add_switch("sw2", 4, managed=False)
        net.connect(a, sw1)
        # Parallel links between sw1 and sw2 form a loop.
        net.connect(sw1, sw2)
        net.connect(sw1, sw2)
        from repro.simnet.network import BROADCAST_IP

        a.create_socket().sendto(10, (BROADCAST_IP, 520))
        net.run(5.0)  # must terminate rather than loop forever
        assert sw1.frames_dropped_hops + sw2.frames_dropped_hops > 0
