"""Wire-level delta shipping for rate samples (the dataflow layer).

Workers (and leaf coordinators) ship rate samples upstream every poll
cycle.  At 10k-host scale the legacy JSON batches are dominated by bytes
that never change: node names, interface indexes, and -- on a quiescent
network -- the rates themselves, which sit at exactly ``0.0`` cycle after
cycle.  This module defines a compact binary batch format in which a
sender tracks the last value it shipped per (node, ifIndex) key and
encodes only what changed:

``full``
    First appearance of a key: numeric id assignment, node name,
    ifIndex, and all six float fields.  Ids are monotonic and never
    reused within an incarnation.
``changed``
    Known key whose rates moved: id plus the six float fields.
``advance``
    Known key whose four rates are bit-identical to the last shipped
    sample: id, new sample time, new interval.  ~18 bytes instead of a
    ~90-byte JSON document.
``advance (same interval)``
    As above with the interval also unchanged: id and time only.
``refresh``
    Keyframe filler: re-states a key's mapping and last value for
    resynchronising receivers, but is *not* delivered as a sample (a
    receiver that was never desynchronised must not see duplicate
    samples, or the delta path would stop being bit-identical to the
    legacy path).

Floats travel as IEEE-754 doubles (``struct '<d'``), so a decoded sample
is **bit-identical** to the sample the sender measured -- the delta path
changes the wire cost, never the data.

Every batch carries the same (worker, incarnation, seq) envelope as the
legacy JSON batches, so the sequencing/ARQ machinery in
:mod:`repro.core.distributed` applies unchanged.  Decoding is split into
a stateless :func:`parse_delta` (safe on out-of-order arrivals, feeds the
reorder buffer) and a stateful :meth:`DeltaDecoder.apply` that must run
in sequence order at delivery time.

Loss recovery: after an abandoned sequence gap the receiver's last-value
table is stale, so ``advance`` records can no longer be trusted --
:meth:`DeltaDecoder.mark_desync` drops them (``full``/``changed`` carry
complete values and stay safe) until a keyframe re-states every key.
``DeltaDecoder.needs_keyframe`` tells the receiver to ask the sender for
one (the ``kfreq`` control message); senders also emit a keyframe every
``keyframe_every`` batches as a backstop.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.poller import InterfaceRates

DELTA_MAGIC = 0xD7

_FLAG_KEYFRAME = 0x01

REC_FULL = 0
REC_CHANGED = 1
REC_ADVANCE = 2
REC_ADVANCE_SAME_D = 3
REC_REFRESH = 4

_F64 = struct.Struct("<d")
_F64X6 = struct.Struct("<6d")


class DeltaError(ValueError):
    """Raised on malformed delta payloads."""


# ----------------------------------------------------------------------
# Varints (LEB128, unsigned)
# ----------------------------------------------------------------------
def _put_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise DeltaError(f"negative varint {value!r}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _get_varint(data: bytes, pos: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DeltaError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise DeltaError("varint too long")


def _put_str(out: bytearray, text: str) -> None:
    raw = text.encode()
    _put_varint(out, len(raw))
    out.extend(raw)


def _get_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _get_varint(data, pos)
    if pos + length > len(data):
        raise DeltaError("truncated string")
    return data[pos : pos + length].decode(), pos + length


# Six float fields of a sample, in wire order.
def _fields(sample: InterfaceRates) -> Tuple[float, float, float, float, float, float]:
    return (
        sample.time,
        sample.interval,
        sample.in_bytes_per_s,
        sample.out_bytes_per_s,
        sample.in_pkts_per_s,
        sample.out_pkts_per_s,
    )


def _sample(node: str, if_index: int, fields: Sequence[float]) -> InterfaceRates:
    return InterfaceRates(
        node=node,
        if_index=if_index,
        time=fields[0],
        interval=fields[1],
        in_bytes_per_s=fields[2],
        out_bytes_per_s=fields[3],
        in_pkts_per_s=fields[4],
        out_pkts_per_s=fields[5],
    )


def is_delta(payload: bytes) -> bool:
    """Whether a datagram is a binary delta batch (vs legacy JSON)."""
    return len(payload) > 0 and payload[0] == DELTA_MAGIC


class DeltaBatch:
    """A parsed (but not yet applied) delta batch."""

    __slots__ = ("worker", "incarnation", "seq", "keyframe", "records")

    def __init__(self, worker, incarnation, seq, keyframe, records) -> None:
        self.worker = worker
        self.incarnation = incarnation
        self.seq = seq
        self.keyframe = keyframe
        # (rec_type, id, node|None, if_index|None, fields-tuple|None)
        self.records: List[tuple] = records


def parse_delta(payload: bytes) -> DeltaBatch:
    """Stateless wire parse; raises :class:`DeltaError` when malformed.

    Safe to call on out-of-order arrivals -- applying the records to the
    receiver's last-value state (:meth:`DeltaDecoder.apply`) is the part
    that must wait for sequence order.
    """
    if not is_delta(payload):
        raise DeltaError("not a delta batch")
    pos = 1
    if pos >= len(payload):
        raise DeltaError("truncated flags")
    flags = payload[pos]
    pos += 1
    worker, pos = _get_str(payload, pos)
    incarnation, pos = _get_varint(payload, pos)
    seq, pos = _get_varint(payload, pos)
    count, pos = _get_varint(payload, pos)
    records: List[tuple] = []
    for _ in range(count):
        if pos >= len(payload):
            raise DeltaError("truncated record")
        rec_type = payload[pos]
        pos += 1
        rec_id, pos = _get_varint(payload, pos)
        if rec_type in (REC_FULL, REC_REFRESH):
            node, pos = _get_str(payload, pos)
            if_index, pos = _get_varint(payload, pos)
            if pos + _F64X6.size > len(payload):
                raise DeltaError("truncated full record")
            fields = _F64X6.unpack_from(payload, pos)
            pos += _F64X6.size
            records.append((rec_type, rec_id, node, if_index, fields))
        elif rec_type == REC_CHANGED:
            if pos + _F64X6.size > len(payload):
                raise DeltaError("truncated changed record")
            fields = _F64X6.unpack_from(payload, pos)
            pos += _F64X6.size
            records.append((rec_type, rec_id, None, None, fields))
        elif rec_type == REC_ADVANCE:
            if pos + 2 * _F64.size > len(payload):
                raise DeltaError("truncated advance record")
            t = _F64.unpack_from(payload, pos)[0]
            d = _F64.unpack_from(payload, pos + _F64.size)[0]
            pos += 2 * _F64.size
            records.append((rec_type, rec_id, None, None, (t, d)))
        elif rec_type == REC_ADVANCE_SAME_D:
            if pos + _F64.size > len(payload):
                raise DeltaError("truncated advance record")
            t = _F64.unpack_from(payload, pos)[0]
            pos += _F64.size
            records.append((rec_type, rec_id, None, None, (t,)))
        else:
            raise DeltaError(f"unknown record type {rec_type!r}")
    if pos != len(payload):
        raise DeltaError("trailing bytes in delta batch")
    return DeltaBatch(worker, incarnation, seq, bool(flags & _FLAG_KEYFRAME), records)


class DeltaEncoder:
    """Sender-side last-shipped tracking and batch encoding."""

    def __init__(self, worker: str) -> None:
        self.worker = worker
        self._ids: Dict[Tuple[str, int], int] = {}
        self._last: Dict[int, Tuple[float, ...]] = {}
        self._next_id = 1
        self._kf_pending = True  # the first batch always maps every id
        self.records_full = 0
        self.records_changed = 0
        self.records_advance = 0
        self.records_refresh = 0
        self.keyframes = 0

    def force_keyframe(self) -> None:
        """Make the next batch a keyframe (receiver asked via ``kfreq``)."""
        self._kf_pending = True

    def keyframe_due(self) -> bool:
        return self._kf_pending

    def encode(
        self, incarnation: int, seq: int, samples: Sequence[InterfaceRates],
        keyframe: bool = False,
    ) -> bytes:
        """Encode one batch; consumes any pending keyframe request."""
        kf = keyframe or self._kf_pending
        self._kf_pending = False
        body = bytearray()
        records = 0
        touched: set = set()
        for sample in samples:
            key = (sample.node, sample.if_index)
            fields = _fields(sample)
            rec_id = self._ids.get(key)
            if rec_id is None:
                rec_id = self._ids[key] = self._next_id
                self._next_id += 1
                self._encode_keyed(body, REC_FULL, rec_id, sample.node,
                                   sample.if_index, fields)
                self.records_full += 1
            else:
                last = self._last[rec_id]
                if kf:
                    # Inside a keyframe every delivered sample travels
                    # full, so a reset receiver can rebuild its maps.
                    self._encode_keyed(body, REC_FULL, rec_id, sample.node,
                                       sample.if_index, fields)
                    self.records_full += 1
                elif fields[2:] != last[2:]:
                    body.append(REC_CHANGED)
                    _put_varint(body, rec_id)
                    body.extend(_F64X6.pack(*fields))
                    self.records_changed += 1
                elif fields[1] != last[1]:
                    body.append(REC_ADVANCE)
                    _put_varint(body, rec_id)
                    body.extend(_F64.pack(fields[0]))
                    body.extend(_F64.pack(fields[1]))
                    self.records_advance += 1
                else:
                    body.append(REC_ADVANCE_SAME_D)
                    _put_varint(body, rec_id)
                    body.extend(_F64.pack(fields[0]))
                    self.records_advance += 1
            self._last[rec_id] = fields
            touched.add(rec_id)
            records += 1
        if kf:
            # Re-state every key the batch did not touch, as map-only
            # refresh records (not delivered as samples downstream).
            for key, rec_id in sorted(self._ids.items(), key=lambda kv: kv[1]):
                if rec_id in touched:
                    continue
                self._encode_keyed(body, REC_REFRESH, rec_id, key[0], key[1],
                                   self._last[rec_id])
                self.records_refresh += 1
                records += 1
            self.keyframes += 1
        out = bytearray([DELTA_MAGIC, _FLAG_KEYFRAME if kf else 0])
        _put_str(out, self.worker)
        _put_varint(out, incarnation)
        _put_varint(out, seq)
        _put_varint(out, records)
        out.extend(body)
        return bytes(out)

    @staticmethod
    def _encode_keyed(body, rec_type, rec_id, node, if_index, fields) -> None:
        body.append(rec_type)
        _put_varint(body, rec_id)
        _put_str(body, node)
        _put_varint(body, if_index)
        body.extend(_F64X6.pack(*fields))

    def reset(self) -> None:
        """Forget everything (sender restarted: new incarnation)."""
        self._ids.clear()
        self._last.clear()
        self._next_id = 1
        self._kf_pending = True


class DeltaDecoder:
    """Receiver-side last-value state; apply batches in sequence order."""

    def __init__(self) -> None:
        self._keys: Dict[int, Tuple[str, int]] = {}
        self._last: Dict[int, Tuple[float, ...]] = {}
        self.desync = False
        self.needs_keyframe = False
        self.samples_skipped = 0

    def mark_desync(self) -> None:
        """An upstream batch was lost for good: advance records are now
        built on values this decoder never saw."""
        self.desync = True
        self.needs_keyframe = True

    def apply(self, batch: DeltaBatch) -> List[InterfaceRates]:
        """Fold one in-order batch in; returns the delivered samples."""
        out: List[InterfaceRates] = []
        for rec_type, rec_id, node, if_index, fields in batch.records:
            if rec_type in (REC_FULL, REC_REFRESH):
                self._keys[rec_id] = (node, if_index)
                self._last[rec_id] = fields
                if rec_type == REC_FULL:
                    out.append(_sample(node, if_index, fields))
                continue
            key = self._keys.get(rec_id)
            if key is None:
                # Reset receiver (restart / adopted stream): the mapping
                # rode a batch we never saw.  Only a keyframe helps.
                self.samples_skipped += 1
                self.needs_keyframe = True
                continue
            if rec_type == REC_CHANGED:
                self._last[rec_id] = fields
                out.append(_sample(key[0], key[1], fields))
            elif rec_type == REC_ADVANCE or rec_type == REC_ADVANCE_SAME_D:
                if self.desync:
                    # The base values are stale; delivering would present
                    # pre-loss rates as current measurements.
                    self.samples_skipped += 1
                    self.needs_keyframe = True
                    continue
                last = self._last[rec_id]
                if rec_type == REC_ADVANCE:
                    new = (fields[0], fields[1]) + last[2:]
                else:
                    new = (fields[0],) + last[1:]
                self._last[rec_id] = new
                out.append(_sample(key[0], key[1], new))
        if batch.keyframe:
            # Every key was just re-stated: advance records are safe again.
            self.desync = False
            self.needs_keyframe = False
        return out

    def reset(self) -> None:
        """Forget everything (sender restarted: new incarnation)."""
        self._keys.clear()
        self._last.clear()
        self.desync = False
        self.needs_keyframe = False
