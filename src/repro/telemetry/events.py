"""Structured event bus for the monitor's notable moments.

Before this module, "something happened" knowledge was scattered:
health transitions sat in the tracker's list, QoS violations in the
middleware's action log, fault activity in per-fault flags, degraded
reports nowhere at all.  The bus gives them one spine: producers call
:meth:`EventBus.publish`, consumers either subscribe (push) or read the
bounded ring of recent events and the per-kind counters (pull).

Events are plain frozen records -- kind + sim-time + attributes -- so
they serialise cleanly into the JSON snapshot and stay cheap to create
on hot paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

# Well-known event kinds (producers may publish ad-hoc kinds too).
HEALTH_TRANSITION = "health_transition"
QOS_VIOLATION = "qos_violation"
QOS_RECOVERY = "qos_recovery"
FAULT_INJECTED = "fault_injected"
FAULT_CLEARED = "fault_cleared"
REPORT_STATUS = "report_status_change"
AGENT_RESTART = "agent_restart"
INTEGRITY_VIOLATION = "integrity_violation"
CROSS_CHECK_MISMATCH = "cross_check_mismatch"
QUARANTINE_ENTER = "quarantine"
QUARANTINE_EXIT = "quarantine_release"
COUNTER_WRAP_RISK = "counter_wrap_risk"
WORKER_TRANSITION = "worker_transition"
WORKER_FAILOVER = "worker_failover"
WORKER_REBALANCE = "worker_rebalance"
SAMPLE_GAP = "sample_gap"
PROBE_TRAIN_COMPLETED = "probe_train_completed"
PROBE_DISAGREEMENT = "probe_disagreement"
PROBE_RECOVERED = "probe_recovered"
TOPOLOGY_CHANGED = "topology_changed"
PATH_REROUTED = "path_rerouted"

KNOWN_KINDS = (
    HEALTH_TRANSITION,
    QOS_VIOLATION,
    QOS_RECOVERY,
    FAULT_INJECTED,
    FAULT_CLEARED,
    REPORT_STATUS,
    AGENT_RESTART,
    INTEGRITY_VIOLATION,
    CROSS_CHECK_MISMATCH,
    QUARANTINE_ENTER,
    QUARANTINE_EXIT,
    COUNTER_WRAP_RISK,
    WORKER_TRANSITION,
    WORKER_FAILOVER,
    WORKER_REBALANCE,
    SAMPLE_GAP,
    PROBE_TRAIN_COMPLETED,
    PROBE_DISAGREEMENT,
    PROBE_RECOVERED,
    TOPOLOGY_CHANGED,
    PATH_REROUTED,
)


@dataclass(frozen=True)
class Event:
    """One structured occurrence at one simulated instant."""

    kind: str
    time: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return f"[{self.time:9.3f}s] {self.kind}" + (f" {attrs}" if attrs else "")


EventCallback = Callable[[Event], None]


class EventBus:
    """Publish/subscribe fan-out plus bounded retention and counting."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"event capacity must be >= 1, got {capacity!r}")
        self.recent: Deque[Event] = deque(maxlen=capacity)
        self.counts: Dict[str, int] = {}
        self._subscribers: List[tuple] = []  # (callback, frozenset-of-kinds | None)

    # ------------------------------------------------------------------
    def publish(self, kind: str, time: float, **attrs: object) -> Event:
        event = Event(kind=kind, time=time, attrs=attrs)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.recent.append(event)
        for callback, kinds in self._subscribers:
            if kinds is None or kind in kinds:
                callback(event)
        return event

    def subscribe(
        self, callback: EventCallback, kinds: Optional[Sequence[str]] = None
    ) -> None:
        """Receive every future event (optionally only the given kinds)."""
        self._subscribers.append(
            (callback, frozenset(kinds) if kinds is not None else None)
        )

    # ------------------------------------------------------------------
    # Pull-side inspection
    # ------------------------------------------------------------------
    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Retained events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self.recent)
        return [e for e in self.recent if e.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        for event in reversed(self.recent):
            if kind is None or event.kind == kind:
                return event
        return None

    def format_counts(self) -> str:
        """One line per kind; well-known kinds always shown (zeros too)."""
        kinds = sorted(set(KNOWN_KINDS) | set(self.counts))
        return "\n".join(f"{kind:>24}: {self.count(kind)}" for kind in kinds)

    def snapshot(self) -> Dict[str, object]:
        return {
            "counts": dict(sorted(self.counts.items())),
            "recent": [
                {"kind": e.kind, "time": e.time, "attrs": dict(e.attrs)}
                for e in self.recent
            ],
        }
