"""Regression gate: streaming fan-out at scale.

Drives a ≥100-host generated topology through two identical workloads:
a baseline stack that only takes incremental matrix snapshots (streaming
disabled) and a stream stack whose :class:`MatrixPublisher` additionally
fans events out to **2000+ concurrent subscribers**, each holding a
small conflated queue over a few pairs.  Asserts:

- the publish step adds <10% wall-clock overhead to the monitor hot
  path (snapshot+publish vs snapshot-only on the same dirty sets);
- per-event delivery latency through the reverse-indexed fan-out stays
  in the microsecond range (p50/p99 measured over thousands of
  deliveries);
- once the adaptive significance filter has learned a pair's jitter
  amplitude, rounds of negligible (+-0.01%) rate jitter produce **zero**
  deliveries while the suppressed counter advances -- and a genuine
  traffic shift still gets through;
- every subscriber queue respects its bound throughout (slow consumers
  hold O(subscribed pairs), never O(cycles)).

Writes ``BENCH_stream.json`` for the CI artifact upload.
"""

import json
import time as _time
from dataclasses import replace
from pathlib import Path

from repro.core.bandwidth import BandwidthCalculator
from repro.core.matrix import BandwidthMatrix
from repro.core.poller import RateTable
from repro.experiments.scale import populate_rates, scale_spec
from repro.stream import (
    MatrixPublisher,
    OverflowPolicy,
    PairChanged,
    QuantileDeadbandFilter,
    SubscriptionManager,
    pair_key,
)
from repro.telemetry.quantile import P2Quantile

SUBSCRIBERS = 2000
PAIRS_PER_SUBSCRIBER = 3
QUEUE_BOUND = 8
OVERHEAD_CEILING = 0.10  # publish may cost <10% of the snapshot hot path
OVERHEAD_ROUNDS = 20
TOUCHED_PER_ROUND = 3
LEARN_ROUNDS = 16  # jitter rounds the filter may learn from
JITTER_ROUNDS = 4  # measured rounds that must deliver nothing

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def _stack(spec, graph=None):
    rates = RateTable(keep_history=False)
    populate_rates(spec, rates, time=0.0)
    calculator = BandwidthCalculator(spec, rates, stale_after=1e9, dead_after=1e12)
    matrix = BandwidthMatrix(spec, calculator, incremental=True, graph=graph)
    return rates, matrix


def _touch(rates, key, t, factor):
    old = rates.latest(*key)
    rates.update(
        replace(
            old,
            time=t,
            in_bytes_per_s=old.in_bytes_per_s * factor,
            out_bytes_per_s=old.out_bytes_per_s * factor,
        )
    )


def test_bench_stream_fanout_overhead_and_suppression():
    spec = scale_spec(
        switches=6, hosts_per_switch=18, arity=1, hub_pockets=2, hub_hosts=3
    )
    hosts = [n.name for n in spec.hosts()]
    assert len(hosts) >= 100, f"benchmark topology too small: {len(hosts)} hosts"

    base_rates, base_matrix = _stack(spec)
    stream_rates, stream_matrix = _stack(spec, graph=base_matrix.graph)
    publisher = MatrixPublisher(
        stream_matrix,
        manager=SubscriptionManager(),
        # weight 0.2: the estimators must unlearn the big phase-A moves
        # within the learning rounds before the jitter gate is measured
        significance=QuantileDeadbandFilter(
            q=0.9, factor=3.0, min_samples=4, weight=0.2
        ),
    )

    # 2000 subscribers, each conflating a few pairs; plus one wildcard
    # dashboard consumer, the worst case the reverse index must carry.
    all_pairs = sorted(
        pair_key(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1:]
    )
    for i in range(SUBSCRIBERS):
        wanted = [
            all_pairs[(i * 7 + j * 13) % len(all_pairs)]
            for j in range(PAIRS_PER_SUBSCRIBER)
        ]
        publisher.manager.subscribe(
            f"sub{i}",
            pairs=wanted,
            policy=OverflowPolicy.CONFLATE,
            bound=QUEUE_BOUND,
        )
    dashboard = publisher.manager.subscribe(
        "dashboard", policy=OverflowPolicy.CONFLATE, bound=512
    )

    # Warm both stacks (path construction, first full pass) untimed.
    base_matrix.snapshot(0.5)
    publisher.publish(0.5)

    # -- Phase A: hot-path overhead on realistic poll cycles ------------
    keys = sorted(base_rates.keys())
    t = 0.5
    base_seconds = 0.0
    stream_seconds = 0.0
    for round_no in range(OVERHEAD_ROUNDS):
        t += 2.0
        start = (round_no * TOUCHED_PER_ROUND) % len(keys)
        for offset in range(TOUCHED_PER_ROUND):
            key = keys[(start + offset) % len(keys)]
            _touch(base_rates, key, t, 1.07)
            _touch(stream_rates, key, t, 1.07)
        begin = _time.perf_counter()
        base_matrix.snapshot(t)
        base_seconds += _time.perf_counter() - begin
        begin = _time.perf_counter()
        publisher.publish(t)
        stream_seconds += _time.perf_counter() - begin
    overhead = stream_seconds / base_seconds - 1.0 if base_seconds else 0.0

    # -- Phase B: per-event delivery latency through the fan-out --------
    p50 = P2Quantile(0.5)
    p99 = P2Quantile(0.99)
    snapshot = publisher.publish(t + 0.1)
    reports = [
        (pair_key(*pair), report)
        for pair, report in sorted(snapshot.reports.items())
        if report is not None
    ]
    deliveries = 0
    for i in range(4000):
        key, report = reports[(i * 31) % len(reports)]
        event = PairChanged(
            pair=key, time=t, epoch=publisher.clock.epoch, report=report,
            available_bps=report.available_bps, used_bps=report.used_bps,
            utilization=0.5, status=report.status,
            previous_available_bps=float("nan"),
        )
        begin = _time.perf_counter()
        publisher.manager.deliver(event)
        elapsed = _time.perf_counter() - begin
        deliveries += 1
        p50.observe(elapsed)
        p99.observe(elapsed)
    dashboard.drain()

    # -- Phase C: the significance filter suppresses pure jitter --------
    for round_no in range(LEARN_ROUNDS):
        t += 2.0
        factor = 1.0001 if round_no % 2 else 0.9999
        for key in keys:
            _touch(stream_rates, key, t, factor)
        publisher.publish(t + 0.1)
    for sub in publisher.manager.subscriptions():
        sub.drain()
    delivered_before = publisher.manager.stats()["delivered"]
    suppressed_before = publisher.manager.events_suppressed
    for round_no in range(JITTER_ROUNDS):
        t += 2.0
        factor = 1.0001 if round_no % 2 else 0.9999
        for key in keys:
            _touch(stream_rates, key, t, factor)
        publisher.publish(t + 0.1)
    jitter_delivered = publisher.manager.stats()["delivered"] - delivered_before
    jitter_suppressed = publisher.manager.events_suppressed - suppressed_before

    # ...while a genuine traffic shift still gets through.
    t += 2.0
    _touch(stream_rates, keys[0], t, 5.0)
    publisher.publish(t + 0.1)
    shift_delivered = (
        publisher.manager.stats()["delivered"] - delivered_before - jitter_delivered
    )

    # -- Queue bounds held throughout -----------------------------------
    max_watermark = 0
    for sub in publisher.manager.subscriptions():
        if sub.name == "dashboard":
            continue
        assert len(sub) <= QUEUE_BOUND
        assert sub.high_watermark <= QUEUE_BOUND
        max_watermark = max(max_watermark, sub.high_watermark)

    stats = publisher.stats()
    results = {
        "hosts": len(hosts),
        "pairs": len(all_pairs),
        "subscribers": stats["subscribers"],
        "queue_bound": QUEUE_BOUND,
        "max_high_watermark": max_watermark,
        "overhead_rounds": OVERHEAD_ROUNDS,
        "base_seconds": round(base_seconds, 6),
        "stream_seconds": round(stream_seconds, 6),
        "overhead_pct": round(overhead * 100.0, 2),
        "overhead_ceiling_pct": OVERHEAD_CEILING * 100.0,
        "deliveries_timed": deliveries,
        "delivery_p50_us": round(p50.value * 1e6, 3),
        "delivery_p99_us": round(p99.value * 1e6, 3),
        "jitter_rounds": JITTER_ROUNDS,
        "jitter_delivered": jitter_delivered,
        "jitter_suppressed": jitter_suppressed,
        "shift_delivered": shift_delivered,
        "events_delivered_total": stats["delivered"],
        "events_suppressed_total": stats["suppressed"],
        "events_dropped_total": stats["dropped"],
    }
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nstream bench: {json.dumps(results, indent=2)}")

    assert stats["subscribers"] >= SUBSCRIBERS + 1
    assert overhead < OVERHEAD_CEILING, (
        f"streaming overhead regression: publish added {overhead:.1%} to the "
        f"hot path (ceiling {OVERHEAD_CEILING:.0%}; snapshot-only "
        f"{base_seconds:.3f}s vs snapshot+publish {stream_seconds:.3f}s)"
    )
    assert jitter_delivered == 0, (
        f"significance filter leaked {jitter_delivered} events for "
        f"sub-deadband jitter"
    )
    assert jitter_suppressed > 0
    assert shift_delivered > 0, "a 5x traffic shift must still be delivered"
    assert p99.value < 0.005, (
        f"per-event delivery p99 {p99.value * 1e6:.0f}us exceeds 5ms"
    )
