"""Table 2: statistics of the measured traffic load from the Fig-4 run.

Paper values (for reference; their testbed, our simulator):

    background traffic          0.824 KB/s
    avg measured less background ~4 % above the generated level
    max individual %error       5 - 16 % (worst spikes from SNMP
                                polling delay / stale agent counters)

The reproduction computes the identical statistics from the simulated
run.  Absolute numbers differ (different background sources, different
agent staleness), but the structure holds: a small positive systematic
error from packet headers plus monitoring traffic, and much larger
worst-case single-interval errors caused by counter displacement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import stable_mask
from repro.analysis.stats import TrafficStatistics, compute_table2
from repro.experiments import fig4

# The paper's Table 2, as printed (KB/s and percentages).  The max-%error
# column digits are partially corrupted in the available text; the prose
# says "about 4%" average and "the large error (16%)" worst case.
PAPER_BACKGROUND_KBPS = 0.824
PAPER_AVG_PCT_ERROR = 4.0
PAPER_MAX_PCT_ERROR = 16.0
PAPER_LEVELS = [100.0, 200.0, 300.0, 400.0, 500.0]

# Guard band (s) around load transitions excluded from per-level stats;
# covers poll jitter plus the agents' counter-refresh staleness.
TRANSITION_GUARD = 1.0


@dataclass
class Table2Result:
    stats: TrafficStatistics
    fig4_result: "fig4.Fig4Result"


def compute(result: "fig4.Fig4Result") -> TrafficStatistics:
    """Table-2 statistics from a Figure-4 run."""
    pair = result.pair
    stable = stable_mask(
        pair.times, result.schedule, window=result.poll_interval, guard=TRANSITION_GUARD
    )
    return compute_table2(
        pair.measured_kbps,
        pair.generated_kbps,
        stable=stable,
        levels=PAPER_LEVELS,
    )


def run(seed: int = 0, poll_interval: float = 2.0) -> Table2Result:
    result = fig4.run(seed=seed, poll_interval=poll_interval)
    return Table2Result(stats=compute(result), fig4_result=result)


def main(seed: int = 0) -> Table2Result:
    out = run(seed=seed)
    print("Table 2 -- Statistics of Measured Traffic Load (KB/s)")
    print(out.stats.format_table())
    print()
    print(
        f"paper: background {PAPER_BACKGROUND_KBPS} KB/s, "
        f"avg error ~{PAPER_AVG_PCT_ERROR}%, worst individual error "
        f"~{PAPER_MAX_PCT_ERROR}%"
    )
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
