"""Integration tests: RM middleware over the live monitor."""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.rm.detector import QosState
from repro.rm.middleware import RmMiddleware
from repro.rm.qos import QosRequirement
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


def system(requirements, **monitor_kwargs):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_interval=2.0, poll_jitter=0.0,
                             **monitor_kwargs)
    middleware = RmMiddleware(monitor, requirements)
    return build, monitor, middleware


class TestMiddleware:
    def test_auto_watches_required_paths(self):
        req = QosRequirement("telemetry", "S1", "N1", min_available_bps=600_000)
        build, monitor, mw = system([req])
        assert "S1<->N1" in monitor.watched_paths()

    def test_violation_and_recovery_cycle(self):
        req = QosRequirement("telemetry", "S1", "N1", min_available_bps=600_000)
        build, monitor, mw = system([req])
        net = build.network
        # 900 KB/s into the 1250 KB/s hub leaves < 600 KB/s available.
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule.pulse(10.0, 40.0, 900_000.0)
        ).start()
        monitor.start()
        net.run(70.0)
        states = [a.event.state for a in mw.actions]
        assert QosState.VIOLATED in states
        assert states[-1] is QosState.OK
        violation = mw.violations()[0]
        assert violation.diagnosis is not None
        assert violation.diagnosis.kind == "hub-saturation"
        assert violation.advice, "expected reallocation advice"
        assert violation.advice[0].avoids_bottleneck

    def test_no_violation_under_light_load(self):
        req = QosRequirement("telemetry", "S1", "N1", min_available_bps=600_000)
        build, monitor, mw = system([req])
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule.pulse(10.0, 40.0, 100_000.0)
        ).start()
        monitor.start()
        net.run(60.0)
        assert mw.violations() == []
        assert mw.state_of("S1<->N1") is QosState.OK

    def test_multiple_requirements_tracked_independently(self):
        reqs = [
            QosRequirement("hubpath", "S1", "N1", min_available_bps=600_000),
            QosRequirement("swpath", "S1", "S2", min_available_bps=600_000),
        ]
        build, monitor, mw = system(reqs)
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule.pulse(10.0, 40.0, 900_000.0)
        ).start()
        monitor.start()
        net.run(60.0)
        assert mw.state_of("S1<->S2") is QosState.OK
        assert any(
            a.event.requirement.name == "hubpath" for a in mw.violations()
        )
        assert not any(
            a.event.requirement.name == "swpath" for a in mw.violations()
        )

    def test_duplicate_requirement_rejected(self):
        req = QosRequirement("a", "S1", "N1", min_available_bps=1.0)
        req2 = QosRequirement("b", "S1", "N1", min_available_bps=2.0)
        build = build_testbed()
        monitor = NetworkMonitor(build, "L")
        with pytest.raises(ValueError):
            RmMiddleware(monitor, [req, req2])

    def test_format_log(self):
        req = QosRequirement("telemetry", "S1", "N1", min_available_bps=600_000)
        build, monitor, mw = system([req])
        assert mw.format_log() == "(no QoS events)"
        monitor.start()
        build.network.run(8.0)
        assert "telemetry" in mw.format_log()
