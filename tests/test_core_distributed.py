"""Tests for the fault-tolerant distributed-monitoring plane.

Covers the sample/batch codecs (including type-confused payload
hardening), deterministic target partitioning and its edge cases,
normal-operation semantics vs. the single monitor, worker-crash
failover/failback (the chaos acceptance scenario), ARQ gap repair under
a network partition, and a hypothesis property proving sequence-number
dedup never double-counts a sample.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import (
    DistributedMonitor,
    decode_sample,
    encode_sample,
)
from repro.core.health import WorkerState
from repro.core.poller import InterfaceRates
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import NetworkPartition, WorkerCrash
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

ALL_SNMP_NODES = ["L", "N1", "N2", "S1", "S2", "switch"]


def batch_doc(seq, samples=(("N1", 1),), worker="S1", inc=1):
    """A coordinator-side batch document carrying one sample per source."""
    return {
        "k": "batch",
        "w": worker,
        "inc": inc,
        "q": seq,
        "s": [
            {
                "n": node, "i": if_index, "t": float(seq), "d": 1.0,
                "ib": 10.0, "ob": 10.0, "ip": 1.0, "op": 1.0,
            }
            for node, if_index in samples
        ],
    }


class TestSampleCodec:
    def test_roundtrip(self):
        sample = InterfaceRates("S1", 3, 12.5, 2.0, 100.5, 50.25, 10.0, 5.0)
        assert decode_sample(encode_sample(sample)) == sample

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode_sample(b"not json")

    @pytest.mark.parametrize(
        "payload",
        [
            b"[1, 2, 3]",  # JSON list: indexing by key is a TypeError
            b'"just a string"',
            b"12345",
            b"null",
            b'{"n": "S1"}',  # missing fields: KeyError
            b'{"n": "S1", "i": "x", "t": 0, "d": 1,'
            b' "ib": 0, "ob": 0, "ip": 0, "op": 0}',  # non-numeric: ValueError
            b'{"n": "S1", "i": [1], "t": 0, "d": 1,'
            b' "ib": 0, "ob": 0, "ip": 0, "op": 0}',  # type confusion
        ],
    )
    def test_type_confused_payloads_rejected(self, payload):
        with pytest.raises((ValueError, KeyError, TypeError)):
            decode_sample(payload)

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=64))
    def test_fuzzed_payloads_raise_only_decode_errors(self, payload):
        try:
            decode_sample(payload)
        except (ValueError, KeyError, TypeError):
            pass  # the documented decode-failure surface


def distributed(worker_hosts=("L", "S1", "S2"), **kwargs):
    build = build_testbed()
    dm = DistributedMonitor(
        build, coordinator_host="L", worker_hosts=list(worker_hosts),
        poll_jitter=0.0, **kwargs
    )
    return build, dm


class TestPartitioning:
    def test_every_snmp_node_assigned_exactly_once(self):
        build, dm = distributed()
        assigned = [t for w in dm.workers.values() for t in w.poller.targets]
        assert sorted(t.node for t in assigned) == ALL_SNMP_NODES

    def test_affinity_workers_poll_themselves(self):
        build, dm = distributed()
        assert "L" in dm.targets_of("L")
        assert "S1" in dm.targets_of("S1")
        assert "S2" in dm.targets_of("S2")

    def test_single_worker_gets_everything(self):
        build, dm = distributed(worker_hosts=("S2",))
        assert sorted(dm.targets_of("S2")) == ALL_SNMP_NODES

    def test_no_workers_rejected(self):
        build = build_testbed()
        with pytest.raises(ValueError):
            DistributedMonitor(build, "L", [])

    def test_worker_host_that_is_not_a_poll_target(self):
        # S3 runs no SNMP agent, so it appears nowhere in the target set;
        # it still works fine as a worker and absorbs its round-robin share.
        build, dm = distributed(worker_hosts=("S3", "S1"))
        union = sorted(dm.targets_of("S3") + dm.targets_of("S1"))
        assert union == ALL_SNMP_NODES
        assert "S3" not in union
        assert dm.targets_of("S3")  # the non-agent host still polls others

    def test_more_workers_than_targets_leaves_spares(self):
        hosts = ("L", "S1", "S2", "S3", "S4", "S5", "S6")
        build, dm = distributed(worker_hosts=hosts)
        # Every worker exists (spares are failover capacity), every target
        # is covered exactly once, and no worker is required to have work.
        assert sorted(dm.workers) == sorted(hosts)
        assigned = [n for w in hosts for n in dm.targets_of(w)]
        assert sorted(assigned) == ALL_SNMP_NODES
        assert any(not dm.targets_of(w) for w in hosts)  # at least one spare

    def test_partition_is_deterministic(self):
        _, dm1 = distributed()
        _, dm2 = distributed()
        for worker in ("L", "S1", "S2"):
            assert dm1.targets_of(worker) == dm2.targets_of(worker)


class TestOperation:
    def test_measurements_match_single_monitor_semantics(self):
        build, dm = distributed()
        label = dm.watch_path("S1", "N1")
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule.pulse(5.0, 35.0, 300_000.0)
        ).start()
        dm.start()
        net.run(40.0)
        series = dm.history.series(label)
        assert series.used().max() == pytest.approx(300_000 * 1.019, rel=0.08)
        assert dm.samples_received > 0
        assert dm.decode_errors == 0

    def test_load_spread_across_workers(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        dm.start()
        build.network.run(20.0)
        stats = dm.stats()
        per_worker = {
            key.split(".", 1)[1]: value
            for key, value in stats.items()
            if key.startswith("per_worker_requests.")
        }
        assert sorted(per_worker) == ["L", "S1", "S2"]
        assert all(count > 0 for count in per_worker.values())

    def test_subscribers_receive_reports(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        seen = []
        dm.subscribe(seen.append)
        dm.start()
        build.network.run(12.0)
        assert len(seen) >= 3

    def test_stop_halts_workers(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        dm.start()
        build.network.run(10.0)
        dm.stop()
        build.network.run(11.0)  # drain datagrams already on the wire
        received = dm.samples_received
        build.network.run(40.0)
        assert dm.samples_received == received

    def test_stopped_plane_can_be_rebuilt_on_same_hosts(self):
        # stop() must release every socket (report sink, control sockets,
        # SNMP manager sockets) or the second plane dies on port collision.
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        dm.start()
        build.network.run(10.0)
        dm.stop()
        dm2 = DistributedMonitor(
            build, coordinator_host="L", worker_hosts=["L", "S1", "S2"],
            poll_jitter=0.0,
        )
        dm2.watch_path("S1", "N1")
        dm2.start()
        build.network.run(20.0)
        assert dm2.samples_received > 0
        dm2.stop()

    def test_duplicate_watch_rejected(self):
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        with pytest.raises(ValueError):
            dm.watch_path("S1", "N1")

    def test_report_shipping_is_real_traffic(self):
        """Workers' sample datagrams traverse the network to the coordinator."""
        build, dm = distributed(worker_hosts=("S2",))
        dm.watch_path("S1", "N1")
        s2 = build.network.host("S2")
        base = s2.interfaces[0].counters.out_octets
        dm.start()
        build.network.run(15.0)
        assert s2.interfaces[0].counters.out_octets > base + 1000

    def test_malformed_datagrams_counted_not_fatal(self):
        build, dm = distributed()
        bad = [
            b"\x00\xff garbage",
            b"[1,2,3]",
            b'{"k": "batch", "w": "S1"}',  # missing inc/q/s
            b'{"k": "batch", "w": ["S1"], "inc": 1, "q": 1, "s": {}}',
            b'{"k": "wat"}',
            b'{"no": "kind"}',
        ]
        for payload in bad:
            dm._on_datagram(payload, len(payload), None, 1234)
        assert dm.decode_errors == len(bad)
        # The plane still works afterwards.
        dm.watch_path("S1", "N1")
        dm.start()
        build.network.run(10.0)
        assert dm.samples_received > 0


class TestFailover:
    def test_worker_crash_failover_and_failback(self):
        """The chaos acceptance scenario: kill one of three workers
        mid-run; its targets move to survivors and every watched path
        reports trusted fresh data within three poll cycles; affected
        reports are degraded (never silently stale) in between; on
        recovery the plane rebalances back."""
        build, dm = distributed()  # poll_interval=2.0
        dm.watch_path("S1", "N1")
        reports = []
        dm.subscribe(reports.append)
        net = build.network
        WorkerCrash(net.sim, dm.workers["S2"], at=10.0, until=25.0)
        dm.start()

        net.run(20.0)  # mid-crash
        assert dm.worker_states()["S2"] == "dead"
        assert dm.stats()["failovers"] >= 1
        # S2's share (itself + the switch) now belongs to the survivors.
        survivors = dm.targets_of("L") + dm.targets_of("S1")
        assert sorted(survivors) == ALL_SNMP_NODES
        assert dm.assigned_targets_of("S2") == []
        # Re-coverage within 3 poll cycles of the crash: every report
        # after t = 10 + 3*2 s is trusted again.
        settled = [r for r in reports if r.time >= 16.0]
        assert settled and all(r.trusted for r in settled)
        # In the detection window the path was degraded, not silently
        # served from the dead worker's last samples.
        gap_window = [r for r in reports if 11.0 <= r.time <= 14.0]
        assert any(not r.trusted for r in gap_window)

        net.run(40.0)  # recovery at t=25, then settle
        assert dm.worker_states() == {w: "alive" for w in ("L", "S1", "S2")}
        assert dm.stats()["rebalances"] >= 1
        # Affinity restored: S2 polls itself (and its round-robin share).
        assert "S2" in dm.targets_of("S2")
        late = [r for r in reports if r.time >= 28.0]
        assert late and all(r.trusted for r in late)
        assert dm.stats()["degraded_sources"] == 0.0

    def test_lease_states_exported(self):
        build, dm = distributed()
        dm.start()
        build.network.run(6.0)
        stats = dm.stats()
        assert stats["workers_alive"] == 3.0
        assert stats["workers_dead"] == 0.0
        assert dm.worker_states() == {w: "alive" for w in ("L", "S1", "S2")}


class TestArq:
    def test_partition_gaps_are_detected_and_refilled(self):
        """Batches lost in a short partition come back via selective
        retransmit from the worker's resend buffer -- no failover, no
        permanent loss, no double-counting."""
        build, dm = distributed()
        dm.watch_path("S1", "N1")
        net = build.network
        # Sever S2's uplink for 1.2 s: long enough to lose batches and
        # heartbeats, short enough that the lease survives (suspect only).
        uplink = net.host("S2").interfaces[0].link
        NetworkPartition(net.sim, [uplink], at=10.0, until=11.2)
        dm.start()
        net.run(30.0)
        stats = dm.stats()
        assert stats["gaps_detected"] >= 1.0
        assert stats["gaps_filled"] == stats["gaps_detected"]
        assert stats["gaps_abandoned"] == 0.0
        assert stats["failovers"] == 0.0
        assert dm.worker_states()["S2"] == "alive"
        assert dm.stats()["degraded_sources"] == 0.0

    def test_unfillable_gap_degrades_then_recovers(self):
        """A gap the worker can no longer serve (evicted from its resend
        buffer) is abandoned: the worker's assigned sources go degraded,
        and fresh in-order samples clear the marks again."""
        build, dm = distributed(integrity=False)
        # S1's affinity share is itself plus round-robined N2.
        assert sorted(dm.assigned_targets_of("S1")) == ["N2", "S1"]
        dm._on_batch(batch_doc(1))
        dm._on_batch(batch_doc(3))  # seq 2 never arrives: gap + retx
        assert dm.stats()["gaps_detected"] == 1.0
        # The worker answers that seq 2 fell out of its resend buffer.
        dm._on_gone({"k": "gone", "w": "S1", "inc": 1, "seqs": [2]})
        dm._sweep()
        stats = dm.stats()
        assert stats["gaps_abandoned"] == 1.0
        # Seq 3 was drained past the abandoned gap; nothing re-delivered.
        assert dm.samples_received == 2
        # Every source S1 is responsible for is now marked lossy...
        assert stats["degraded_sources"] == 2.0
        assert dm.degraded.is_degraded("S1", 1)
        assert dm.degraded.is_degraded("N2", 1)
        # ...until fresh in-order samples arrive and clear the marks.
        dm._on_batch(batch_doc(4, samples=(("S1", 1), ("N2", 1))))
        assert dm.stats()["degraded_sources"] == 0.0


class TestSequenceDedup:
    """Sequence-number dedup: whatever order batches arrive in, and
    however often they are duplicated (retransmit overshoot, replays),
    each unique batch is delivered exactly once."""

    @settings(max_examples=25, deadline=None)
    @given(
        order=st.permutations(list(range(1, 9))),
        dups=st.lists(st.integers(min_value=1, max_value=8), max_size=12),
    )
    def test_each_sequence_delivered_exactly_once(self, order, dups):
        build, dm = distributed(integrity=False)
        for seq in list(order) + dups:
            dm._on_batch(batch_doc(seq))
        # All 8 unique batches delivered exactly once, however mangled
        # the arrival order and however many duplicates came in.
        assert dm.samples_received == 8
        assert dm.stats()["duplicate_batches"] == float(len(dups))
        # And the rate table holds exactly the newest sample.
        assert dm.rates.latest("N1", 1).time == 8.0

    def test_restarted_worker_sequence_space_is_fresh(self):
        """A restart resets the worker's sequence numbers; the coordinator
        must adopt the new incarnation instead of treating seq 1 as a
        duplicate of the old seq 1."""
        build, dm = distributed(integrity=False)
        dm._on_batch(batch_doc(1))
        dm._on_batch(batch_doc(2))
        assert dm.samples_received == 2
        restarted = batch_doc(1, inc=2)
        dm._on_batch(restarted)
        assert dm.samples_received == 3
        assert dm.stats()["duplicate_batches"] == 0.0
        # Stragglers from the previous incarnation are dropped.
        dm._on_batch(batch_doc(2))
        assert dm.samples_received == 3
