"""SNMP object identifiers.

An OID is a sequence of non-negative integer arcs, written in dotted
notation (``1.3.6.1.2.1.2.2.1.10.3`` is ``ifInOctets`` for interface 3).
MIB traversal (GETNEXT / walking a table) depends on the *lexicographic*
order of OIDs, which :class:`Oid` implements via plain tuple comparison.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Tuple, Union

OidLike = Union["Oid", str, Iterable[int]]


class OidError(ValueError):
    """Raised for malformed OID literals."""


@total_ordering
class Oid:
    """Immutable, hashable, lexicographically ordered OID."""

    __slots__ = ("_arcs",)

    def __init__(self, value: OidLike) -> None:
        if isinstance(value, Oid):
            self._arcs: Tuple[int, ...] = value._arcs
            return
        if isinstance(value, str):
            text = value.strip().lstrip(".")
            if not text:
                raise OidError("empty OID string")
            try:
                arcs = tuple(int(part) for part in text.split("."))
            except ValueError as exc:
                raise OidError(f"malformed OID {value!r}") from exc
        else:
            arcs = tuple(int(a) for a in value)
        if not arcs:
            raise OidError("an OID needs at least one arc")
        if any(a < 0 for a in arcs):
            raise OidError(f"negative arc in OID {arcs!r}")
        self._arcs = arcs

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def arcs(self) -> Tuple[int, ...]:
        return self._arcs

    def __len__(self) -> int:
        return len(self._arcs)

    def __iter__(self) -> Iterator[int]:
        return iter(self._arcs)

    def __getitem__(self, index) -> Union[int, "Oid"]:
        if isinstance(index, slice):
            part = self._arcs[index]
            if not part:
                raise OidError("OID slice would be empty")
            return Oid(part)
        return self._arcs[index]

    def extend(self, *arcs: int) -> "Oid":
        """A new OID with extra arcs appended."""
        return Oid(self._arcs + arcs)

    def __add__(self, other: OidLike) -> "Oid":
        return Oid(self._arcs + Oid(other)._arcs)

    def startswith(self, prefix: OidLike) -> bool:
        p = Oid(prefix)._arcs
        return self._arcs[: len(p)] == p

    def strip_prefix(self, prefix: OidLike) -> Tuple[int, ...]:
        """The arcs after ``prefix`` (raises if not actually a prefix)."""
        p = Oid(prefix)._arcs
        if self._arcs[: len(p)] != p:
            raise OidError(f"{self} does not start with {Oid(prefix)}")
        return self._arcs[len(p):]

    @property
    def parent(self) -> "Oid":
        if len(self._arcs) <= 1:
            raise OidError(f"{self} has no parent")
        return Oid(self._arcs[:-1])

    # ------------------------------------------------------------------
    # Ordering / identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Oid):
            return self._arcs == other._arcs
        return NotImplemented

    def __lt__(self, other: "Oid") -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return self._arcs < other._arcs

    def __hash__(self) -> int:
        return hash(self._arcs)

    def __str__(self) -> str:
        return ".".join(str(a) for a in self._arcs)

    def __repr__(self) -> str:
        return f"Oid('{self}')"


# Well-known roots used throughout the package.
MIB2 = Oid("1.3.6.1.2.1")
SYSTEM = MIB2 + "1"
INTERFACES = MIB2 + "2"
IF_TABLE_ENTRY = INTERFACES + "2.1"
DOT1D_BRIDGE = MIB2 + "17"
