"""Per-connection and per-path bandwidth calculation (paper §3.3).

The paper's two rules:

**Switch rule** -- "a switch does not forward packets for one host to other
hosts connected to the same switch.  Hence, the amount of bandwidth used
on a host connected to a switch is simply the amount of data transmitted
as reported by SNMP polling from either the host or the switch.  If the
traffic reported is t_i, then we simply have u_i = t_i."

**Hub rule** -- "for hosts connected to hubs, all packets that go through
the hub will be sent to every host connected to the hub.  Therefore, the
amount of bandwidth used for a host connected to a hub is the sum of all
the data sent to the hub ... u_i = t_1 + t_2 + ... + t_n.  Notice that u_i
cannot exceed the maximum speed of the hub."

A connection's traffic figure ``t`` is the bidirectional byte rate at its
counter source (in + out octets per second).  For the hub sum, the summed
set is the hub's *host-facing* connections: a frame entering through the
uplink and delivered to host j is counted once, at t_j, and the shared
medium indeed carries each frame once.  Every connection touching the hub
(host legs and uplinks alike) shares the same u, because they share the
same medium.

Path figures: available ``A = min_i (m_i - u_i)``; used = ``max_i u_i``
(the paper's plotted "measured traffic between hosts" -- the busiest
segment along the path).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.counters import CounterSource, hub_host_connections, resolve_counter_source
from repro.core.dataflow import ConnCacheEntry
from repro.core.poller import InterfaceRates, RateTable
from repro.core.report import ConnectionMeasurement, PathReport
from repro.telemetry import Telemetry
from repro.telemetry.events import REPORT_STATUS
from repro.topology.model import ConnectionSpec, DeviceKind, TopologySpec


class BandwidthCalculator:
    """Turns a :class:`RateTable` into connection/path measurements.

    Staleness-aware when ``stale_after`` is set (the monitor sets it):
    samples older than ``stale_after`` mark their connection stale and
    the path degraded; older than ``dead_after`` (or sourced from an
    agent the health tracker says is DEAD) they stop counting as data at
    all, and a path left without trustworthy figures reports
    ``unavailable`` instead of a stale number.

    **Incremental mode** (the default): measurements are memoized per
    connection on an epoch token drawn from every input -- rate-table
    ingest, link-state flips, quarantine enter/release, health
    transitions (see :mod:`repro.core.dataflow`).  A request whose token
    matches the cached one reuses the measurement; when only the report
    instant moved, the time-independent core is kept and just the age
    fields are re-derived.  Hub aggregates are computed once per hub per
    epoch and shared by every leg.  The cache may only ever change how
    much work is done: outputs are bit-identical to ``incremental=False``
    (enforced by ``tests/test_dataflow.py``).
    """

    def __init__(
        self,
        spec: TopologySpec,
        rates: RateTable,
        link_state=None,
        stale_after: Optional[float] = None,
        dead_after: Optional[float] = None,
        health=None,
        telemetry: Optional[Telemetry] = None,
        integrity=None,
        degraded_sources=None,
        incremental: bool = True,
    ) -> None:
        """``link_state``: optional :class:`~repro.core.linkstate.
        LinkStateRegistry`; connections it marks down report zero
        availability with rule "down".  ``health``: optional
        :class:`~repro.core.health.AgentHealthTracker` consulted for the
        counter-source agents.  ``stale_after``/``dead_after``: sample
        ages (seconds) beyond which data is degraded / untrustworthy.
        ``telemetry``: optional hub; path measurements are then traced,
        report staleness feeds a histogram, and per-path trust-status
        changes (fresh/degraded/unavailable) publish events.
        ``integrity``: optional
        :class:`~repro.integrity.IntegrityPipeline`; connections whose
        counter source it quarantines are flagged on the measurement and
        capped at 0.5 confidence (their withheld samples then age into
        the ordinary staleness decay).  ``degraded_sources``: optional
        :class:`~repro.core.dataflow.DegradedSourceSet`; sources the
        distributed plane flags as known-lossy (worker lease lost,
        abandoned sequence gap) are capped the same way -- the plane
        *knows* newer data existed and was dropped, so the last sample
        must not be presented at full confidence however young it is."""
        if (
            stale_after is not None
            and dead_after is not None
            and dead_after <= stale_after
        ):
            raise ValueError(
                f"dead_after {dead_after!r} must exceed stale_after {stale_after!r}"
            )
        self.spec = spec
        self.rates = rates
        self.link_state = link_state
        self.stale_after = stale_after
        self.dead_after = dead_after
        self.health = health
        self.telemetry = telemetry
        self.integrity = integrity
        self.degraded_sources = degraded_sources
        self._last_status: Dict[str, str] = {}  # path label -> trust status
        if telemetry is not None:
            registry = telemetry.registry
            self._m_reports_degraded = registry.counter(
                "reports_degraded_total", "path reports resting on stale data"
            )
            self._m_reports_unavailable = registry.counter(
                "reports_unavailable_total",
                "path reports with no trustworthy figures at all",
            )
            self._h_staleness = registry.histogram(
                "report_staleness_seconds",
                "age of the stalest sample behind each path report",
            )
        self._source_cache: Dict[Tuple, Optional[CounterSource]] = {}
        # Hub membership: hub name -> its host-facing connections.
        self._hub_host_conns: Dict[str, List[ConnectionSpec]] = hub_host_connections(spec)
        # --- incremental dataflow state ---------------------------------
        self.incremental = incremental
        self.cache_hits = 0
        self.recomputes = 0
        self._entries: Dict[Tuple, ConnCacheEntry] = {}
        self._hub_by_conn: Dict[Tuple, Optional[str]] = {}
        self._hub_leg_keys: Dict[str, Tuple] = {}
        # hub -> (rates token, total, newest sample, any_measured)
        self._hub_cache: Dict[str, Tuple] = {}
        # Validation stamp: entries checked during the current cycle (one
        # combination of report instant + all global input clocks) skip
        # even the per-connection token comparison.
        self._cycle_token: Optional[Tuple] = None
        self._stamp = 0

    # ------------------------------------------------------------------
    # Per-connection traffic
    # ------------------------------------------------------------------
    def counter_source(self, conn: ConnectionSpec) -> Optional[CounterSource]:
        key = conn.endpoints()
        if key not in self._source_cache:
            self._source_cache[key] = resolve_counter_source(self.spec, conn)
        return self._source_cache[key]

    def raw_traffic(self, conn: ConnectionSpec) -> Optional[InterfaceRates]:
        """Latest rate sample at the connection's counter source."""
        source = self.counter_source(conn)
        if source is None:
            return None
        return self.rates.latest(source.node, source.if_index)

    def hub_of(self, conn: ConnectionSpec) -> Optional[str]:
        """The hub this connection touches, if any."""
        key = conn.endpoints()
        try:
            return self._hub_by_conn[key]
        except KeyError:
            pass
        hub: Optional[str] = None
        for end in key:
            if self.spec.node(end.node).kind is DeviceKind.HUB:
                hub = end.node
                break
        self._hub_by_conn[key] = hub
        return hub

    # ------------------------------------------------------------------
    # Epoch tokens (incremental dataflow)
    # ------------------------------------------------------------------
    def _hub_rates_token(self, hub: str) -> Tuple:
        """Per-leg rate-table epochs of a hub's host legs, in sum order."""
        keys = self._hub_leg_keys.get(hub)
        if keys is None:
            resolved = []
            for leg in self._hub_host_conns.get(hub, []):
                source = self.counter_source(leg)
                resolved.append(source.key() if source is not None else None)
            keys = self._hub_leg_keys[hub] = tuple(resolved)
        return tuple(self.rates.epoch(*k) if k is not None else 0 for k in keys)

    def connection_token(self, conn: ConnectionSpec) -> Tuple:
        """The epochs of every input ``measure_connection`` reads.

        A measurement computed under one token is valid exactly as long
        as the token is unchanged.  Collaborators that predate the epoch
        surface (test doubles) fall back to the raw boolean state, which
        still flips whenever the answer would.
        """
        source = self.counter_source(conn)
        hub = self.hub_of(conn)
        if hub is not None:
            rates_part: object = self._hub_rates_token(hub)
        elif source is not None:
            rates_part = self.rates.epoch(source.node, source.if_index)
        else:
            rates_part = 0
        ls = self.link_state
        if ls is None:
            ls_part: object = 0
        else:
            epoch_of = getattr(ls, "epoch_of", None)
            ls_part = epoch_of(conn) if epoch_of is not None else ls.is_down(conn)
        integ = self.integrity
        if integ is None or source is None:
            integ_part: object = 0
        else:
            epoch_of = getattr(integ, "epoch_of", None)
            integ_part = (
                epoch_of(source.node, source.if_index)
                if epoch_of is not None
                else integ.is_quarantined(source.node, source.if_index)
            )
        health = self.health
        if health is None or source is None:
            health_part: object = 0
        else:
            epoch_of = getattr(health, "epoch_of", None)
            health_part = (
                epoch_of(source.node)
                if epoch_of is not None
                else health.is_dead(source.node)
            )
        degraded = self.degraded_sources
        if degraded is None or source is None:
            degraded_part: object = 0
        else:
            epoch_of = getattr(degraded, "epoch_of", None)
            degraded_part = (
                epoch_of(source.node, source.if_index)
                if epoch_of is not None
                else degraded.is_degraded(source.node, source.if_index)
            )
        return (rates_part, ls_part, integ_part, health_part, degraded_part)

    def _revalidate(self, now: Optional[float]) -> None:
        """Advance the validation stamp when any global input clock moved.

        When every collaborator exposes a clock, an unchanged cycle token
        proves *nothing anywhere changed* and cached entries validated
        this cycle are reusable on a single int compare.  A collaborator
        without a clock (a test double) yields None, which never equals
        itself across calls here -- the stamp then bumps every time and
        each entry falls back to its full token comparison.
        """
        token = (
            now,
            getattr(self.rates, "clock", None),
            getattr(self.link_state, "clock", None) if self.link_state is not None else 0,
            getattr(self.health, "clock", None) if self.health is not None else 0,
            getattr(self.integrity, "clock", None) if self.integrity is not None else 0,
            getattr(self.degraded_sources, "clock", None)
            if self.degraded_sources is not None
            else 0,
        )
        if None in token[1:] or token != self._cycle_token:
            self._cycle_token = token
            self._stamp += 1

    # ------------------------------------------------------------------
    # The two rules
    # ------------------------------------------------------------------
    def used_bandwidth(self, conn: ConnectionSpec) -> Tuple[Optional[float], str, Optional[InterfaceRates]]:
        """(u_i in bytes/s, rule name, underlying sample).

        Returns ``(None, "unmeasured", None)`` when no counter source (or
        no sample yet) exists for the inputs the rule needs.
        """
        hub = self.hub_of(conn)
        if hub is None:
            sample = self.raw_traffic(conn)
            if sample is None:
                return None, "unmeasured", None
            return sample.total_bytes_per_s, "switch", sample
        # Hub rule: sum the host legs, clamp to the hub speed.
        total = 0.0
        newest: Optional[InterfaceRates] = None
        any_measured = False
        for leg in self._hub_host_conns.get(hub, []):
            sample = self.raw_traffic(leg)
            if sample is None:
                continue
            any_measured = True
            total += sample.total_bytes_per_s
            if newest is None or sample.time > newest.time:
                newest = sample
        if not any_measured:
            return None, "unmeasured", None
        hub_speed_bytes = self.spec.node(hub).interfaces[0].speed_bps / 8.0
        return min(total, hub_speed_bytes), "hub", newest

    def _used_bandwidth_cached(
        self, conn: ConnectionSpec
    ) -> Tuple[Optional[float], str, Optional[InterfaceRates]]:
        """Like :meth:`used_bandwidth`, sharing hub sums across legs.

        The hub aggregate is computed once per hub per rates epoch and
        reused by every connection touching that hub; summation order is
        the naive method's, so the float result is bit-identical.
        """
        hub = self.hub_of(conn)
        if hub is None:
            return self.used_bandwidth(conn)
        token = self._hub_rates_token(hub)
        cached = self._hub_cache.get(hub)
        if cached is not None and cached[0] == token:
            _, total, newest, any_measured = cached
        else:
            total = 0.0
            newest = None
            any_measured = False
            for leg in self._hub_host_conns.get(hub, []):
                sample = self.raw_traffic(leg)
                if sample is None:
                    continue
                any_measured = True
                total += sample.total_bytes_per_s
                if newest is None or sample.time > newest.time:
                    newest = sample
            self._hub_cache[hub] = (token, total, newest, any_measured)
        if not any_measured:
            return None, "unmeasured", None
        hub_speed_bytes = self.spec.node(hub).interfaces[0].speed_bps / 8.0
        return min(total, hub_speed_bytes), "hub", newest

    def measure_connection(
        self, conn: ConnectionSpec, now: Optional[float] = None, fresh: bool = False
    ) -> ConnectionMeasurement:
        """The connection's measurement at instant ``now``.

        ``fresh=True`` bypasses every cache and recomputes from the raw
        tables (the naive baseline the benchmarks and property tests
        compare against).
        """
        if fresh or not self.incremental:
            return self._compute_measurement(conn, now, cached=False)
        self._revalidate(now)
        key = conn.endpoints()
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = ConnCacheEntry()
        elif entry.stamp == self._stamp:
            self.cache_hits += 1
            return entry.measurement  # validated this very cycle
        token = self.connection_token(conn)
        if entry.token == token and entry.measurement is not None:
            if entry.now != now:
                # Same inputs, different instant: only the age-derived
                # fields can differ, so re-derive just those.
                entry.measurement = self._refresh_measurement(entry.measurement, now)
                entry.now = now
                entry.has_confidence = False
            self.cache_hits += 1
        else:
            entry.measurement = self._compute_measurement(conn, now, cached=True)
            entry.token = token
            entry.now = now
            entry.has_confidence = False
            self.recomputes += 1
        entry.stamp = self._stamp
        return entry.measurement

    def _refresh_measurement(
        self, m: ConnectionMeasurement, now: Optional[float]
    ) -> ConnectionMeasurement:
        """Re-derive the age fields of a cached measurement at ``now``.

        Must mirror :meth:`_compute_measurement` exactly: age is
        ``max(0, now - sample_time)`` (``InterfaceRates.age``), staleness
        the same threshold comparison.
        """
        age = (
            max(0.0, now - m.sample_time)
            if (m.sample_time is not None and now is not None)
            else None
        )
        stale = (
            age is not None
            and self.stale_after is not None
            and age > self.stale_after
        )
        if age == m.sample_age and stale == m.stale:
            return m
        return replace(m, sample_age=age, stale=stale)

    def _compute_measurement(
        self, conn: ConnectionSpec, now: Optional[float], cached: bool
    ) -> ConnectionMeasurement:
        capacity_bytes = self.spec.effective_bandwidth(conn) / 8.0
        if self.link_state is not None and self.link_state.is_down(conn):
            source = self.counter_source(conn)
            return ConnectionMeasurement(
                connection=conn,
                capacity_bps=capacity_bytes,
                used_bps=0.0,
                source=source.endpoint if source is not None else None,
                rule="down",
            )
        used, rule, sample = (
            self._used_bandwidth_cached(conn) if cached else self.used_bandwidth(conn)
        )
        source = self.counter_source(conn)
        age = sample.age(now) if (sample is not None and now is not None) else None
        stale = (
            age is not None
            and self.stale_after is not None
            and age > self.stale_after
        )
        quarantined = (
            self.integrity is not None
            and source is not None
            and self.integrity.is_quarantined(source.node, source.if_index)
        )
        degraded_source = (
            self.degraded_sources is not None
            and source is not None
            and self.degraded_sources.is_degraded(source.node, source.if_index)
        )
        return ConnectionMeasurement(
            connection=conn,
            capacity_bps=capacity_bytes,
            used_bps=used if used is not None else 0.0,
            source=source.endpoint if source is not None else None,
            rule=rule,
            sample_time=sample.time if sample is not None else None,
            sample_interval=sample.interval if sample is not None else None,
            sample_age=age,
            stale=stale,
            quarantined=quarantined,
            degraded_source=degraded_source,
        )

    # ------------------------------------------------------------------
    # Data quality
    # ------------------------------------------------------------------
    def _connection_confidence(self, m: ConnectionMeasurement) -> Optional[float]:
        """0..1 trust in one connection's figures; None = not expected.

        - "down" is *fresh* knowledge (the link-state registry said so).
        - No counter source at all: structurally unmeasured, excluded
          (the report's ``complete`` flag already covers it).
        - Source agent DEAD, or sample older than ``dead_after``: 0.0.
        - Sample between ``stale_after`` and ``dead_after``: linear decay.
        - Expected source but no sample yet: 0.5 (degraded, not dead).
        - Quarantined counter source: capped at 0.5 -- whatever its age
          says, a source the integrity pipeline distrusts is never fully
          believed, and as its withheld samples age the ordinary decay
          below takes it the rest of the way down.
        - Degraded source (distributed plane knows newer data was lost):
          same 0.5 cap -- the sample may be young, but it is provably not
          the latest data the network produced.
        """
        if m.rule == "down":
            return 1.0
        if m.source is None:
            return None
        if self.health is not None and self.health.is_dead(m.source.node):
            return 0.0
        capped = m.quarantined or m.degraded_source
        if m.sample_age is None:
            return 0.25 if capped else 0.5
        if self.stale_after is None or m.sample_age <= self.stale_after:
            return 0.5 if capped else 1.0
        if self.dead_after is None:
            return 0.5
        if m.sample_age >= self.dead_after:
            return 0.0
        span = self.dead_after - self.stale_after
        decayed = max(0.0, 1.0 - (m.sample_age - self.stale_after) / span)
        return min(decayed, 0.5) if capped else decayed

    def _confidence_cached(
        self, conn: ConnectionSpec, m: ConnectionMeasurement
    ) -> Optional[float]:
        """Per-entry memo of :meth:`_connection_confidence`.

        Valid only while the entry still holds this exact measurement
        object (the flag is cleared whenever the measurement is replaced
        or re-aged); fresh-mode measurements never match and fall back to
        the direct computation.
        """
        entry = self._entries.get(conn.endpoints())
        if entry is None or entry.measurement is not m:
            return self._connection_confidence(m)
        if not entry.has_confidence:
            entry.confidence = self._connection_confidence(m)
            entry.has_confidence = True
        return entry.confidence

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def measure_path(
        self,
        path: List[ConnectionSpec],
        src: str,
        dst: str,
        time: float,
        name: Optional[str] = None,
        fresh: bool = False,
        redundant: bool = False,
    ) -> PathReport:
        """A :class:`PathReport` for an already-traversed path.

        NOTE: all figures are in **bytes/second** (the paper reports
        KB/s); capacities are converted from the spec's bits/second.
        ``fresh=True`` recomputes every connection from the raw tables
        (the naive baseline; see :meth:`measure_connection`).
        ``redundant`` is the pair's physical-redundancy flag (the caller
        resolves it from the topology graph; see
        :func:`repro.core.traversal.pair_redundant`).
        """
        tel = self.telemetry
        tracing = tel is not None and tel.enabled
        span = (
            tel.tracer.begin("measure_path", path=name or f"{src}<->{dst}")
            if tracing
            else None
        )
        measurements = tuple(
            self.measure_connection(conn, now=time, fresh=fresh) for conn in path
        )
        ages = [m.sample_age for m in measurements if m.sample_age is not None]
        confidences = [
            c
            for c in (
                self._confidence_cached(conn, m)
                for conn, m in zip(path, measurements)
            )
            if c is not None
        ]
        confidence = min(confidences) if confidences else 1.0
        report = PathReport(
            src=src,
            dst=dst,
            time=time,
            connections=measurements,
            name=name,
            freshness=max(ages) if ages else None,
            confidence=confidence,
            degraded=confidence < 1.0,
            unavailable=confidence <= 0.0 and bool(confidences),
            redundant=redundant,
        )
        if tracing:
            if report.freshness is not None:
                self._h_staleness.observe(report.freshness)
            if report.unavailable:
                self._m_reports_unavailable.inc()
            elif report.degraded:
                self._m_reports_degraded.inc()
            span.finish(status=report.status, connections=len(measurements))
            label = report.label
            previous = self._last_status.get(label, "fresh")
            if report.status != previous:
                self._last_status[label] = report.status
                tel.events.publish(
                    REPORT_STATUS,
                    time,
                    path=label,
                    old=previous,
                    new=report.status,
                    confidence=round(confidence, 3),
                )
        return report
