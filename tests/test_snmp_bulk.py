"""GetBulk agent semantics and the bulk interface-poll primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.ber import BerError
from repro.snmp.datatypes import Counter32, EndOfMibView, TimeTicks
from repro.snmp.errors import SnmpError
from repro.snmp.manager import SnmpManager
from repro.snmp.message import VERSION_1, VERSION_2C, Message
from repro.snmp.mib import (
    IF_DESCR,
    IF_IN_OCTETS,
    IF_OUT_OCTETS,
    SYS_NAME,
    SYS_UPTIME,
    build_mib2,
)
from repro.snmp.oid import Oid
from repro.snmp.pdu import MAX_BULK_REPETITIONS, Pdu


def snmp_net():
    net = Network()
    mgr_host = net.add_host("L")
    agent_host = net.add_host("S1")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(mgr_host, sw)
    net.connect(agent_host, sw)
    net.announce_hosts()
    SnmpAgent(agent_host, build_mib2(agent_host, net.sim))
    manager = SnmpManager(mgr_host, timeout=0.5, retries=1)
    return net, manager, agent_host


def switch_net(ports=24):
    """A managed many-port switch: the realistic bulk-walk target."""
    net = Network()
    mgr_host = net.add_host("L")
    sw = net.add_switch("sw", ports, managed=True)
    net.connect(mgr_host, sw)
    net.announce_hosts()
    SnmpAgent(net.endpoint("sw"), build_mib2(net.device("sw"), net.sim))
    manager = SnmpManager(mgr_host, timeout=0.5, retries=1)
    return net, manager, net.endpoint("sw").primary_ip


class Collect:
    def __init__(self):
        self.results = None
        self.error = None

    def ok(self, varbinds):
        self.results = varbinds

    def fail(self, exc):
        self.error = exc


class TestBulkPdu:
    def test_bulk_accessors(self):
        pdu = Pdu.get_bulk_request(7, [SYS_UPTIME], 1, 20)
        assert pdu.non_repeaters == 1
        assert pdu.max_repetitions == 20

    def test_non_bulk_pdu_has_no_bulk_fields(self):
        pdu = Pdu.get_request(7, [SYS_UPTIME])
        with pytest.raises(AttributeError):
            pdu.non_repeaters
        with pytest.raises(AttributeError):
            pdu.max_repetitions

    def test_negative_bulk_fields_rejected(self):
        with pytest.raises(BerError):
            Pdu.get_bulk_request(7, [SYS_UPTIME], -1, 20)
        with pytest.raises(BerError):
            Pdu.get_bulk_request(7, [SYS_UPTIME], 0, -5)

    @settings(max_examples=50, deadline=None)
    @given(
        request_id=st.integers(min_value=0, max_value=2**31 - 1),
        non_repeaters=st.integers(min_value=0, max_value=10),
        max_repetitions=st.integers(min_value=0, max_value=200),
        n_oids=st.integers(min_value=1, max_value=8),
    )
    def test_bulk_codec_round_trip(
        self, request_id, non_repeaters, max_repetitions, n_oids
    ):
        oids = [Oid(f"1.3.6.1.2.1.2.2.1.{10 + i}") for i in range(n_oids)]
        pdu = Pdu.get_bulk_request(request_id, oids, non_repeaters, max_repetitions)
        payload = Message(VERSION_2C, "public", pdu).encode()
        decoded = Message.decode(payload).pdu
        assert decoded.request_id == request_id
        assert decoded.non_repeaters == non_repeaters
        assert decoded.max_repetitions == max_repetitions
        assert [vb.oid for vb in decoded.varbinds] == oids


class TestAgentGetBulk:
    def test_non_repeater_ordering(self):
        """Varbind 0 is one GETNEXT of the first OID; repetitions follow."""
        net, mgr, sw_ip = switch_net(ports=4)
        got = Collect()
        mgr.get_bulk(
            sw_ip,
            [SYS_UPTIME[: len(SYS_UPTIME) - 1], IF_IN_OCTETS],
            got.ok,
            got.fail,
            non_repeaters=1,
            max_repetitions=4,
        )
        net.run(1.0)
        assert got.error is None
        assert got.results[0].oid == SYS_UPTIME
        assert isinstance(got.results[0].value, TimeTicks)
        rest = got.results[1:]
        assert [vb.oid for vb in rest] == [IF_IN_OCTETS + str(i) for i in (1, 2, 3, 4)]
        assert all(isinstance(vb.value, Counter32) for vb in rest)

    def test_truncation_at_end_of_mib(self):
        """A column that runs out yields exactly one EndOfMibView."""
        net, mgr, sw_ip = switch_net(ports=3)
        got = Collect()
        mgr.get_bulk(sw_ip, [IF_OUT_OCTETS], got.ok, got.fail, max_repetitions=10)
        net.run(1.0)
        assert got.error is None
        in_column = [vb for vb in got.results if vb.oid.startswith(IF_OUT_OCTETS)]
        assert [vb.oid for vb in in_column] == [
            IF_OUT_OCTETS + str(i) for i in (1, 2, 3)
        ]
        # Past the column the walk spills into the next subtree; once the
        # whole MIB is exhausted the agent marks the column terminated
        # with a single endOfMibView, not max_repetitions of them.
        eom = [vb for vb in got.results if isinstance(vb.value, EndOfMibView)]
        assert len(eom) <= 1

    def test_max_repetitions_clamped(self):
        """An abusive max-repetitions is clamped agent-side."""
        net, mgr, sw_ip = switch_net(ports=4)
        got = Collect()
        mgr.get_bulk(sw_ip, [IF_DESCR], got.ok, got.fail, max_repetitions=10_000)
        net.run(1.0)
        assert got.error is None
        assert len(got.results) <= MAX_BULK_REPETITIONS

    def test_v1_manager_refuses_bulk(self):
        net = Network()
        mgr_host = net.add_host("L")
        peer = net.add_host("S1")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(mgr_host, sw)
        net.connect(peer, sw)
        net.announce_hosts()
        mgr = SnmpManager(mgr_host, version=VERSION_1)
        with pytest.raises(SnmpError):
            mgr.get_bulk(peer.primary_ip, [SYS_UPTIME], lambda vbs: None)
        with pytest.raises(SnmpError):
            mgr.poll_interfaces(peer.primary_ip, [1], [IF_IN_OCTETS], lambda vbs: None)


class TestPollInterfaces:
    COLUMNS = [IF_IN_OCTETS, IF_OUT_OCTETS]

    def test_small_table_single_exchange(self):
        net, mgr, sw_ip = switch_net(ports=8)
        got = Collect()
        mgr.poll_interfaces(sw_ip, range(1, 9), self.COLUMNS, got.ok, got.fail)
        net.run(1.0)
        assert got.error is None
        assert mgr.requests_sent == 1
        assert got.results[0].oid == SYS_UPTIME  # uptime rides first
        by_oid = {vb.oid: vb.value for vb in got.results}
        for col in self.COLUMNS:
            for i in range(1, 9):
                assert isinstance(by_oid[col + str(i)], Counter32)

    def test_large_table_chains_exchanges(self):
        """> MAX_BULK_REPETITIONS rows cannot fit one exchange."""
        net, mgr, sw_ip = switch_net(ports=70)
        got = Collect()
        mgr.poll_interfaces(sw_ip, range(1, 71), self.COLUMNS, got.ok, got.fail)
        net.run(2.0)
        assert got.error is None
        assert mgr.requests_sent == 2
        by_oid = {vb.oid: vb.value for vb in got.results}
        for col in self.COLUMNS:
            for i in range(1, 71):
                assert isinstance(by_oid[col + str(i)], Counter32)

    def test_bulk_matches_get(self):
        """The bulk walk returns a superset of the equivalent GET."""
        net, mgr, sw_ip = switch_net(ports=6)
        want = [SYS_UPTIME] + [
            col + str(i) for i in range(1, 7) for col in self.COLUMNS
        ]
        got_get, got_bulk = Collect(), Collect()
        mgr.get(sw_ip, want, got_get.ok, got_get.fail)
        net.run(1.0)
        mgr.poll_interfaces(sw_ip, range(1, 7), self.COLUMNS, got_bulk.ok, got_bulk.fail)
        net.run(2.0)
        assert got_get.error is None and got_bulk.error is None
        get_map = {vb.oid: vb.value for vb in got_get.results}
        bulk_map = {vb.oid: vb.value for vb in got_bulk.results}
        # Counters may have advanced between the two polls (the polls
        # themselves are traffic on the switch's port 1), so compare
        # coverage, not instantaneous values.
        assert set(get_map) <= set(bulk_map)

    def test_empty_request_completes_immediately(self):
        net, mgr, sw_ip = switch_net(ports=4)
        got = Collect()
        mgr.poll_interfaces(sw_ip, [], self.COLUMNS, got.ok, got.fail)
        net.run(0.1)
        assert got.results == []
        assert mgr.requests_sent == 0
