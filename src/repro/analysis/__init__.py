"""Evaluation machinery: the paper's accuracy statistics and series tools."""

from repro.analysis.stats import (
    LevelStats,
    TrafficStatistics,
    background_estimate,
    compute_table2,
)
from repro.analysis.series import stable_mask, percent_errors

__all__ = [
    "LevelStats",
    "TrafficStatistics",
    "background_estimate",
    "compute_table2",
    "percent_errors",
    "stable_mask",
]
