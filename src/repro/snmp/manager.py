"""The SNMP manager: the polling client the monitor is built on.

Event-driven (the simulator has no threads): each operation takes a
``callback(varbinds)`` and an optional ``errback(exception)``.  Requests
are matched to responses by request-id; unanswered requests retransmit up
to ``retries`` times and then fail with :class:`SnmpTimeout`.

The manager's packets are real BER bytes travelling the simulated LAN, so
polling consumes bandwidth that the monitor itself then measures -- the
paper counts this among its ~2 % systematic overhead.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from repro.snmp import ber
from repro.snmp.datatypes import EndOfMibView, NoSuchInstance, NoSuchObject
from repro.snmp.errors import ErrorStatus, SnmpError, SnmpErrorResponse, SnmpTimeout
from repro.snmp.message import VERSION_2C, Message
from repro.snmp.oid import Oid
from repro.snmp.pdu import Pdu, VarBind
from repro.simnet.address import IPv4Address
from repro.simnet.sockets import SNMP_PORT

SuccessCallback = Callable[[List[VarBind]], None]
ErrorCallback = Callable[[Exception], None]

DEFAULT_TIMEOUT = 1.0
DEFAULT_RETRIES = 1


class _Pending:
    __slots__ = ("payload", "dst", "attempts", "timer", "callback", "errback")

    def __init__(self, payload, dst, callback, errback) -> None:
        self.payload = payload
        self.dst = dst
        self.attempts = 0
        self.timer = None
        self.callback = callback
        self.errback = errback


class SnmpManager:
    """Asynchronous SNMP client bound to one host."""

    def __init__(
        self,
        endpoint,
        community: str = "public",
        version: int = VERSION_2C,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        agent_port: int = SNMP_PORT,
    ) -> None:
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.community = community
        self.version = version
        self.timeout = timeout
        self.retries = retries
        self.agent_port = agent_port
        self.socket = endpoint.create_socket()  # one ephemeral port for all requests
        self.socket.on_receive = self._on_datagram
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, _Pending] = {}
        # Statistics.
        self.requests_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.responses_received = 0
        self.responses_unmatched = 0
        self.decode_errors = 0

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def get(
        self,
        dst_ip: IPv4Address,
        oids: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        community: Optional[str] = None,
    ) -> int:
        """GET a batch of exact instances; returns the request id.

        ``community`` overrides the manager default for this request only
        (agents on different nodes may use different community strings).
        """
        request_id = next(self._request_ids)
        pdu = Pdu.get_request(request_id, [Oid(o) for o in oids])
        return self._send(request_id, pdu, dst_ip, callback, errback, community)

    def get_next(
        self,
        dst_ip: IPv4Address,
        oids: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        community: Optional[str] = None,
    ) -> int:
        request_id = next(self._request_ids)
        pdu = Pdu.get_next_request(request_id, [Oid(o) for o in oids])
        return self._send(request_id, pdu, dst_ip, callback, errback, community)

    def get_bulk(
        self,
        dst_ip: IPv4Address,
        oids: Sequence[Oid],
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        non_repeaters: int = 0,
        max_repetitions: int = 16,
        community: Optional[str] = None,
    ) -> int:
        if self.version != VERSION_2C:
            raise SnmpError("GETBULK requires SNMPv2c")
        request_id = next(self._request_ids)
        pdu = Pdu.get_bulk_request(
            request_id, [Oid(o) for o in oids], non_repeaters, max_repetitions
        )
        return self._send(request_id, pdu, dst_ip, callback, errback, community)

    def walk(
        self,
        dst_ip: IPv4Address,
        root: Oid,
        callback: SuccessCallback,
        errback: Optional[ErrorCallback] = None,
        use_bulk: bool = False,
    ) -> None:
        """Walk the subtree under ``root`` with chained GETNEXT/GETBULK.

        ``callback`` receives the accumulated in-subtree varbinds once the
        walk leaves the subtree or hits endOfMibView.
        """
        root = Oid(root)
        collected: List[VarBind] = []

        def step(varbinds: List[VarBind]) -> None:
            cursor: Optional[Oid] = None
            for vb in varbinds:
                if isinstance(vb.value, (EndOfMibView, NoSuchObject, NoSuchInstance)):
                    callback(collected)
                    return
                if not vb.oid.startswith(root):
                    callback(collected)
                    return
                collected.append(vb)
                cursor = vb.oid
            if cursor is None:
                callback(collected)
                return
            self._walk_step(dst_ip, cursor, step, errback, use_bulk)

        self._walk_step(dst_ip, root, step, errback, use_bulk)

    def _walk_step(self, dst_ip, cursor, step, errback, use_bulk) -> None:
        if use_bulk:
            self.get_bulk(dst_ip, [cursor], step, errback, max_repetitions=16)
        else:
            self.get_next(dst_ip, [cursor], step, errback)

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def cancel_all(self) -> None:
        """Abort every outstanding request without invoking errbacks."""
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(
        self,
        request_id: int,
        pdu: Pdu,
        dst_ip: IPv4Address,
        callback: SuccessCallback,
        errback: Optional[ErrorCallback],
        community: Optional[str] = None,
    ) -> int:
        payload = Message(
            self.version, community if community is not None else self.community, pdu
        ).encode()
        pending = _Pending(payload, (dst_ip, self.agent_port), callback, errback)
        self._pending[request_id] = pending
        self._transmit(request_id)
        return request_id

    def _transmit(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        pending.attempts += 1
        if pending.attempts > 1:
            self.retransmissions += 1
        self.requests_sent += 1
        self.socket.sendto(pending.payload, pending.dst)
        pending.timer = self.sim.schedule(self.timeout, self._on_timeout, request_id)

    def _on_timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        if pending.attempts <= self.retries:
            self._transmit(request_id)
            return
        del self._pending[request_id]
        self.timeouts += 1
        if pending.errback is not None:
            pending.errback(SnmpTimeout(str(pending.dst[0]), pending.attempts))

    def _on_datagram(
        self, payload: Optional[bytes], size: int, src_ip: IPv4Address, src_port: int
    ) -> None:
        if payload is None:
            self.decode_errors += 1
            return
        try:
            message = Message.decode(payload)
        except ber.BerError:
            self.decode_errors += 1
            return
        pdu = message.pdu
        if pdu.kind != "response":
            self.responses_unmatched += 1
            return
        pending = self._pending.pop(pdu.request_id, None)
        if pending is None:
            # Late duplicate after a retransmit already succeeded.
            self.responses_unmatched += 1
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.responses_received += 1
        if pdu.error_status != int(ErrorStatus.NO_ERROR):
            exc = SnmpErrorResponse(ErrorStatus(pdu.error_status), pdu.error_index)
            if pending.errback is not None:
                pending.errback(exc)
            return
        pending.callback(pdu.varbinds)
