"""Tests for the dynamic-topology-discovery extension."""

import pytest

from repro.core.discovery import TopologyDiscoverer
from repro.experiments.testbed import build_testbed
from repro.simnet.network import BROADCAST_IP
from repro.snmp.manager import SnmpManager


def discovered(candidates=None, warmup_traffic=True):
    build = build_testbed()
    net = build.network
    net.run(1.0)
    if warmup_traffic:
        # A broadcast from every host lets the switch learn all MACs.
        for host in net.hosts.values():
            host.create_socket().sendto(10, (BROADCAST_IP, 520))
        net.run(2.0)
    manager = SnmpManager(net.host("L"))
    if candidates is None:
        candidates = [(n, net.ip_of(n)) for n in ("L", "S1", "S2", "N1", "N2", "switch")]
    discoverer = TopologyDiscoverer(manager, candidates)
    box = {}
    discoverer.discover(lambda r: box.update(result=r))
    net.run(60.0)
    return build, box["result"]


class TestDiscovery:
    def test_switch_identified_by_fdb(self):
        build, result = discovered()
        switches = [n.name for n in result.nodes.values() if n.is_switch]
        assert switches == ["switch"]

    def test_direct_attachments_found(self):
        build, result = discovered()
        for host, port in [("L", 1), ("S1", 2), ("S2", 3)]:
            att = result.attachment_of(host)
            assert att is not None
            assert att.switch == "switch" and att.port == port
            assert not att.shared_segment

    def test_hub_hosts_share_uplink_port(self):
        """N1 and N2 both appear behind the switch's hub-facing port."""
        build, result = discovered()
        att_n1 = result.attachment_of("N1")
        att_n2 = result.attachment_of("N2")
        assert att_n1 is att_n2 or att_n1.port == att_n2.port
        assert att_n1.shared_segment
        assert sorted(att_n1.known_nodes) == ["N1", "N2"]

    def test_snmpless_hosts_appear_as_unknown_macs(self):
        build, result = discovered()
        assert result.unknown_station_count() == 4  # S3-S6

    def test_host_macs_collected(self):
        build, result = discovered()
        assert len(result.nodes["S1"].macs) == 1
        mac = next(iter(result.nodes["S1"].macs))
        assert mac == build.network.host("S1").interfaces[0].mac


class TestVerification:
    def test_clean_testbed_verifies(self):
        build, result = discovered()
        findings = result.verify_against(build.spec)
        # Only the four agentless hosts are unverifiable; nothing mismatches.
        assert all(f.startswith("unverifiable") for f in findings)
        assert len(findings) == 4

    def test_spec_lie_detected(self):
        """Claiming S1 hangs off the hub must produce a mismatch."""
        build, result = discovered()
        spec = build.spec
        # Mutate the spec: swap S1's declared attachment to the hub.
        conn = next(c for c in spec.connections if c.touches("S1"))
        spec.connections.remove(conn)
        from repro.topology.model import ConnectionSpec, InterfaceRef

        spec.connections.append(
            ConnectionSpec(InterfaceRef("S1", "hme0"), InterfaceRef("hub", "port4"))
        )
        findings = result.verify_against(spec)
        assert any("mismatch" in f and "S1" in f for f in findings)

    def test_cold_switch_yields_no_attachments(self):
        """Without traffic the FDB is nearly empty: discovery sees little."""
        build, result = discovered(warmup_traffic=False)
        # Announcements at build time still teach the switch each host once,
        # but after that the result must still be internally consistent.
        for att in result.attachments:
            assert att.known_nodes or att.unknown_macs

    def test_double_discover_rejected(self):
        build = build_testbed()
        net = build.network
        manager = SnmpManager(net.host("L"))
        discoverer = TopologyDiscoverer(manager, [("S1", net.ip_of("S1"))])
        discoverer.discover(lambda r: None)
        with pytest.raises(RuntimeError):
            discoverer.discover(lambda r: None)


class TestPartialOutage:
    """Discovery under agent outage: "no data" is not "not there"."""

    def _discover_with_outage(self, down):
        from repro.simnet.faults import AgentOutage

        build = build_testbed()
        net = build.network
        net.run(1.0)
        for host in net.hosts.values():
            host.create_socket().sendto(10, (BROADCAST_IP, 520))
        net.run(2.0)
        for name in down:
            AgentOutage(net.sim, build.agents[name], at=2.0, until=90.0)
        net.run(2.5)  # outage active before the first walk request
        manager = SnmpManager(net.host("L"))
        candidates = [
            (n, net.ip_of(n)) for n in ("L", "S1", "S2", "N1", "N2", "switch")
        ]
        discoverer = TopologyDiscoverer(manager, candidates)
        box = {}
        discoverer.discover(lambda r: box.update(result=r))
        net.run(80.0)
        return build, box["result"]

    def test_dead_agent_reported_unreachable_not_detached(self):
        build, result = self._discover_with_outage(["S1"])
        assert result.unreachable == {"S1"}
        # S1's MAC is still learned behind the switch port -- it shows
        # as an anonymous station, never as a confirmed attachment.
        assert result.attachment_of("S1") is None
        # The reachable agents are unaffected.
        assert result.attachment_of("S2") is not None
        assert result.attachment_of("L") is not None

    def test_dead_switch_leaves_hosts_unattached_but_reachable(self):
        build, result = self._discover_with_outage(["switch"])
        assert result.unreachable == {"switch"}
        # No FDB: nothing can be attached, but every host still answered.
        assert result.attachments == []
        assert "S1" in result.nodes and result.nodes["S1"].macs

    def test_all_walks_failing_flags_every_candidate(self):
        build, result = self._discover_with_outage(
            ["L", "S1", "S2", "N1", "N2", "switch"]
        )
        # L's own agent is down but the manager runs on L; candidates
        # other than the manager's host are all unreachable.
        assert {"S1", "S2", "N1", "N2", "switch"} <= result.unreachable

    def test_stp_walk_rides_along(self):
        """include_stp adds port-state rows for STP switches only."""
        from repro.spec.builder import build_network
        from repro.spec.parser import parse_spec

        spec = parse_spec(
            """
            network topology stp_disc {
                host A { snmp community "public"; }
                host B { snmp community "public"; }
                switch sw1 { snmp community "public"; ports 4; stp "on"; }
                switch sw2 { snmp community "public"; ports 4; stp "on"; }
                connect A.eth0 <-> sw1.port1;
                connect B.eth0 <-> sw2.port1;
                connect sw1.port3 <-> sw2.port3;
                connect sw1.port4 <-> sw2.port4;
            }
            """
        )
        build = build_network(spec)
        net = build.network
        net.announce_hosts(at=0.5)
        net.run(4.0)  # STP converged: one uplink forwarding, one blocked
        manager = SnmpManager(net.host("A"))
        candidates = [(n, net.ip_of(n)) for n in ("A", "B", "sw1", "sw2")]
        discoverer = TopologyDiscoverer(manager, candidates, include_stp=True)
        box = {}
        discoverer.discover(lambda r: box.update(result=r))
        net.run(30.0)
        result = box["result"]
        states = result.nodes["sw2"].stp_states
        assert states  # port -> dot1dStpPortState rows came back
        assert 2 in states.values()  # exactly one blocking uplink end
        assert list(states.values()).count(2) == 1
        assert result.nodes["A"].stp_states == {}  # hosts have none
