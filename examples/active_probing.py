#!/usr/bin/env python3
"""Active probing catches what passive SNMP cannot see.

The topology hides a blind spot: between the metered switch ``sw1`` and
a 10 Mb/s hub pocket sits an *agentless* switch ``sw2`` -- no counter
observes the pocket, so passive monitoring must assume it idle.  When a
hub host floods its neighbour, the passive plane keeps claiming the
full pocket bandwidth while UDP probe trains measure the real residual.

``ProbeCrossValidator`` compares each train against the passive
envelope ``available <= achievable <= capacity``; after two breaching
rounds it localizes the disagreement to the unmetered segment, caps the
path's confidence, and lifts the cap once the flood ends.

Run:  python examples/active_probing.py
"""

from repro import NetworkMonitor
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec

SPEC = """
network topology hubdemo {
    host L  { snmp community "public"; }
    host S1 { snmp community "public"; }
    host N1 { interface el0 { speed 10 Mbps; } }
    host N2 { interface el0 { speed 10 Mbps; } }
    switch sw1 { snmp community "public"; ports 4; }
    switch sw2 { ports 4; }
    hub hb { ports 4; }
    connect L.eth0 <-> sw1.port1;
    connect S1.eth0 <-> sw1.port2;
    connect sw1.port3 <-> sw2.port1;
    connect sw2.port2 <-> hb.port1;
    connect N1.el0 <-> hb.port2;
    connect N2.el0 <-> hb.port3;
}
"""


def show(monitor, prober, moment):
    report = monitor.current_report("S1<->N1")
    probe = prober.reports.get("S1<->N1")
    print(f"\n-- {moment} (t={monitor.network.now:.0f}s) --")
    print(f"  passive: {report.summary()}")
    if probe is not None:
        print(f"  active:  {probe.summary()}")
    for finding in prober.findings():
        print(f"  FINDING: {finding}")
        print(f"           {finding.detail}")


def main() -> None:
    build = build_network(parse_spec(SPEC))
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_interval=2.0)
    monitor.watch_path("S1", "N1")
    prober = monitor.enable_probing()  # default 2% budget + cross-validation

    monitor.start()
    print(
        f"probe budget: one {prober.train_bytes}-byte train every "
        f"{prober.round_interval:.2f}s (2% of the 10 Mb/s pocket)"
    )
    net.run(10.0)
    show(monitor, prober, "idle: planes agree")

    # Invisible cross-traffic: N2 floods N1 entirely inside the hub
    # pocket, behind the agentless sw2.  No SNMP counter moves.
    StaircaseLoad(
        net.host("N2"),
        net.ip_of("N1"),
        StepSchedule([(10.0, 1_000_000.0), (35.0, 0.0)]),
    ).start()
    net.run(25.0)
    show(monitor, prober, "hub pocket flooded behind the agentless switch")

    net.run(45.0)
    show(monitor, prober, "flood over: cap lifted")

    stats = monitor.stats()
    print(
        f"\nprobe plane: {stats['probe_trains']:.0f} trains, "
        f"{stats['probe_disagreements']:.0f} disagreeing rounds, "
        f"{stats['probe_recoveries']:.0f} recoveries"
    )


if __name__ == "__main__":
    main()
