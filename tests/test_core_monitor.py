"""Integration tests for NetworkMonitor on the Figure-3 testbed."""

import pytest

from repro.core.monitor import MonitorError, NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


def monitored(poll_interval=2.0, jitter=0.0):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_interval=poll_interval, poll_jitter=jitter)
    return build, monitor


class TestWatches:
    def test_watch_registers_path(self):
        _, monitor = monitored()
        label = monitor.watch_path("S1", "N1")
        assert label == "S1<->N1"
        assert monitor.watched_paths() == ["S1<->N1"]
        path = monitor.path_of(label)
        assert len(path) == 3  # S1-sw, sw-hub, hub-N1

    def test_duplicate_watch_rejected(self):
        _, monitor = monitored()
        monitor.watch_path("S1", "N1")
        with pytest.raises(MonitorError):
            monitor.watch_path("S1", "N1")

    def test_named_watch(self):
        _, monitor = monitored()
        label = monitor.watch_path("S1", "N1", name="telemetry")
        assert label == "telemetry"

    def test_unwatch(self):
        _, monitor = monitored()
        label = monitor.watch_path("S1", "N1")
        monitor.unwatch_path(label)
        assert monitor.watched_paths() == []
        with pytest.raises(MonitorError):
            monitor.unwatch_path(label)

    def test_targets_cover_snmp_nodes(self):
        _, monitor = monitored()
        nodes = {t.node for t in monitor.poller.targets}
        assert nodes == {"L", "S1", "S2", "N1", "N2", "switch"}


class TestReporting:
    def test_reports_flow_to_history_and_subscribers(self):
        build, monitor = monitored()
        monitor.watch_path("S1", "N1")
        seen = []
        monitor.subscribe(seen.append)
        monitor.start()
        build.network.run(10.0)
        series = monitor.history.series("S1<->N1")
        assert len(series) >= 3
        assert len(seen) == len(series)

    def test_load_visible_in_reports(self):
        build, monitor = monitored()
        label = monitor.watch_path("S1", "N1")
        net = build.network
        StaircaseLoad(
            net.host("L"),
            net.ip_of("N1"),
            StepSchedule([(2.0, 300_000.0), (30.0, 0.0)]),
        ).start()
        monitor.start()
        net.run(30.0)
        used = monitor.history.series(label).used()
        assert used.max() == pytest.approx(300_000 * 1.019, rel=0.05)
        # Available on the hub path tops out at 1.25 MB/s minus the load.
        available = monitor.history.series(label).available()
        assert available.min() == pytest.approx(10e6 / 8 - 300_000 * 1.019, rel=0.06)

    def test_switch_path_isolated_from_hub_load(self):
        build, monitor = monitored()
        hub_label = monitor.watch_path("S1", "N1")
        sw_label = monitor.watch_path("S1", "S2")
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N1"), StepSchedule([(2.0, 300_000.0), (30.0, 0.0)])
        ).start()
        monitor.start()
        net.run(30.0)
        assert monitor.history.series(hub_label).used().max() > 250_000
        assert monitor.history.series(sw_label).used().max() < 20_000

    def test_current_report_on_demand(self):
        build, monitor = monitored()
        label = monitor.watch_path("S1", "N1")
        monitor.start()
        build.network.run(6.0)
        report = monitor.current_report(label)
        assert report.time == 6.0
        with pytest.raises(MonitorError):
            monitor.current_report("nope")

    def test_stats_accounting(self):
        build, monitor = monitored()
        monitor.watch_path("S1", "N1")
        monitor.start()
        build.network.run(10.0)
        stats = monitor.stats()
        assert stats["snmp_requests"] >= stats["poll_cycles"] * 6 - 6
        assert stats["snmp_timeouts"] == 0
        assert stats["reports"] == len(monitor.history.series("S1<->N1"))


class TestLifecycle:
    def test_double_start_rejected(self):
        build, monitor = monitored()
        monitor.start()
        with pytest.raises(MonitorError):
            monitor.start()

    def test_stop_halts_everything(self):
        build, monitor = monitored()
        monitor.watch_path("S1", "N1")
        monitor.start()
        build.network.run(8.0)
        reports = monitor.reports_emitted
        monitor.stop()
        build.network.run(20.0)
        assert monitor.reports_emitted == reports
        assert monitor.manager.outstanding == 0

    def test_bad_report_offset_rejected(self):
        build = build_testbed()
        with pytest.raises(MonitorError):
            NetworkMonitor(build, "L", poll_interval=2.0, report_offset=3.0)

    def test_snmpless_hosts_still_measurable(self):
        """The paper's S4<->S5 case: no agents, measured via the switch."""
        build, monitor = monitored()
        label = monitor.watch_path("S4", "S5")
        net = build.network
        StaircaseLoad(
            net.host("S4"), net.ip_of("S5"), StepSchedule([(2.0, 500_000.0), (30.0, 0.0)])
        ).start()
        monitor.start()
        net.run(30.0)
        series = monitor.history.series(label)
        assert series.used().max() == pytest.approx(500_000 * 1.019, rel=0.05)
        assert series.latest().complete
