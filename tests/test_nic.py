"""Unit tests for interfaces: MIB-II counters and MAC filtering."""

import pytest

from repro.simnet.address import BROADCAST_MAC, IPv4Address, MacAddress
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.nic import Interface, InterfaceError
from repro.simnet.packet import EthernetFrame, IPPacket, UDPDatagram


class Recorder:
    def __init__(self, sim, name="dev"):
        self.sim = sim
        self.name = name
        self.frames = []

    def on_frame(self, iface, frame):
        self.frames.append(frame)


def pair(sim, promiscuous_b=False, mac_b=None):
    dev_a, dev_b = Recorder(sim, "A"), Recorder(sim, "B")
    a = Interface(dev_a, "eth0", MacAddress(0x10), 1e8, promiscuous=True)
    b = Interface(
        dev_b, "eth0", mac_b or MacAddress(0x20), 1e8, promiscuous=promiscuous_b
    )
    Link(sim, a, b, prop_delay=0.0)
    return a, b, dev_a, dev_b


def frame_to(dst_mac, payload=72):
    packet = IPPacket(
        src=IPv4Address("10.0.0.1"),
        dst=IPv4Address("10.0.0.2"),
        payload=UDPDatagram(1, 2, payload_size=payload),
    )
    return EthernetFrame(MacAddress(0x10), dst_mac, packet)  # wire = payload + 28


class TestCounters:
    def test_out_counters_on_transmit(self):
        sim = Simulator()
        a, b, *_ = pair(sim)
        a.transmit(frame_to(MacAddress(0x20), payload=72))
        assert a.counters.out_octets == 100
        assert a.counters.out_ucast_pkts == 1
        assert a.counters.out_nucast_pkts == 0

    def test_in_counters_on_delivery(self):
        sim = Simulator()
        a, b, _, dev_b = pair(sim)
        a.transmit(frame_to(MacAddress(0x20), payload=72))
        sim.run(1.0)
        assert b.counters.in_octets == 100
        assert b.counters.in_ucast_pkts == 1
        assert len(dev_b.frames) == 1

    def test_broadcast_counts_as_nucast(self):
        sim = Simulator()
        a, b, *_ = pair(sim)
        a.transmit(frame_to(BROADCAST_MAC))
        sim.run(1.0)
        assert a.counters.out_nucast_pkts == 1
        assert b.counters.in_nucast_pkts == 1
        assert b.counters.in_ucast_pkts == 0

    def test_counters_accumulate(self):
        sim = Simulator()
        a, b, *_ = pair(sim)
        for _ in range(10):
            a.transmit(frame_to(MacAddress(0x20), payload=72))
        sim.run(1.0)
        assert b.counters.in_octets == 1000
        assert b.counters.in_ucast_pkts == 10

    def test_snapshot_returns_plain_dict(self):
        sim = Simulator()
        a, *_ = pair(sim)
        snap = a.counters.snapshot()
        assert snap["out_octets"] == 0
        a.transmit(frame_to(MacAddress(0x20)))
        assert snap["out_octets"] == 0  # copy, not a view


class TestMacFiltering:
    def test_non_promiscuous_filters_other_macs(self):
        sim = Simulator()
        a, b, _, dev_b = pair(sim, promiscuous_b=False)
        a.transmit(frame_to(MacAddress(0x99)))  # not B's MAC
        sim.run(1.0)
        assert dev_b.frames == []
        assert b.counters.in_octets == 0
        assert b.counters.in_filtered_pkts == 1

    def test_promiscuous_accepts_everything(self):
        sim = Simulator()
        a, b, _, dev_b = pair(sim, promiscuous_b=True)
        a.transmit(frame_to(MacAddress(0x99)))
        sim.run(1.0)
        assert len(dev_b.frames) == 1
        assert b.counters.in_octets == 100

    def test_broadcast_passes_filter(self):
        sim = Simulator()
        a, b, _, dev_b = pair(sim, promiscuous_b=False)
        a.transmit(frame_to(BROADCAST_MAC))
        sim.run(1.0)
        assert len(dev_b.frames) == 1

    def test_multicast_passes_filter(self):
        sim = Simulator()
        a, b, _, dev_b = pair(sim, promiscuous_b=False)
        a.transmit(frame_to(MacAddress("01:00:5e:00:00:01")))
        sim.run(1.0)
        assert len(dev_b.frames) == 1


class TestAdminState:
    def test_transmit_while_down_discards(self):
        sim = Simulator()
        a, *_ = pair(sim)
        a.admin_up = False
        assert a.transmit(frame_to(MacAddress(0x20))) is False
        assert a.counters.out_discards == 1
        assert a.counters.out_octets == 0

    def test_receive_while_down_discards(self):
        sim = Simulator()
        a, b, _, dev_b = pair(sim)
        b.admin_up = False
        a.transmit(frame_to(MacAddress(0x20)))
        sim.run(1.0)
        assert dev_b.frames == []
        assert b.counters.in_discards == 1


class TestMisc:
    def test_transmit_unconnected_raises(self):
        sim = Simulator()
        iface = Interface(Recorder(sim), "eth0", MacAddress(1), 1e8)
        with pytest.raises(InterfaceError):
            iface.transmit(frame_to(MacAddress(2)))

    def test_non_positive_speed_rejected(self):
        sim = Simulator()
        with pytest.raises(InterfaceError):
            Interface(Recorder(sim), "eth0", MacAddress(1), 0)

    def test_full_name(self):
        sim = Simulator()
        iface = Interface(Recorder(sim, "S1"), "hme0", MacAddress(1), 1e8)
        assert iface.full_name == "S1.hme0"

    def test_rx_tap_invoked(self):
        sim = Simulator()
        a, b, *_ = pair(sim, promiscuous_b=True)
        seen = []
        b.rx_tap = seen.append
        a.transmit(frame_to(MacAddress(0x20)))
        sim.run(1.0)
        assert len(seen) == 1
