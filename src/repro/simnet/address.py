"""MAC and IPv4 address value types for the LAN simulator.

Both types are small immutable wrappers around integers with the usual
textual forms.  They exist so that frames, interfaces and the SNMP
``ifPhysAddress`` column can carry real, comparable addresses instead of
bare strings, and so that allocation of fresh addresses is centralised and
deterministic.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterator, Union

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")
_IP_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$")


class AddressError(ValueError):
    """Raised for malformed address literals or exhausted allocators."""


@total_ordering
class MacAddress:
    """48-bit IEEE MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
            return
        if isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address {value!r}")
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
            return
        if isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise AddressError(f"MAC address out of range: {value!r}")
            self._value = value
            return
        raise AddressError(f"cannot build MacAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool((self._value >> 40) & 0x01)

    def to_bytes(self) -> bytes:
        """Six-octet wire form, as served by SNMP ``ifPhysAddress``."""
        return self._value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __lt__(self, other: "MacAddress") -> bool:
        if not isinstance(other, MacAddress):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))


BROADCAST_MAC = MacAddress((1 << 48) - 1)


@total_ordering
class IPv4Address:
    """32-bit IPv4 address in dotted-quad notation."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
            return
        if isinstance(value, str):
            if not _IP_RE.match(value):
                raise AddressError(f"malformed IPv4 address {value!r}")
            octets = [int(p) for p in value.split(".")]
            if any(o > 255 for o in octets):
                raise AddressError(f"IPv4 octet out of range in {value!r}")
            self._value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
            return
        if isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise AddressError(f"IPv4 address out of range: {value!r}")
            self._value = value
            return
        raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """True if this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"bad prefix length {prefix_len!r}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (network._value & mask)

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self._value == other._value

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))


class MacAllocator:
    """Deterministic allocator of locally-administered unicast MACs.

    Addresses are drawn from ``02:00:00:xx:xx:xx`` (locally administered,
    unicast) so they can never collide with the broadcast address or look
    like real vendor OUIs.
    """

    _BASE = 0x020000000000

    def __init__(self) -> None:
        self._next = 1

    def allocate(self) -> MacAddress:
        if self._next >= (1 << 24):
            raise AddressError("MAC allocator exhausted")
        mac = MacAddress(self._BASE | self._next)
        self._next += 1
        return mac

    def __iter__(self) -> Iterator[MacAddress]:  # pragma: no cover - convenience
        while True:
            yield self.allocate()


class IPv4Allocator:
    """Deterministic allocator of host addresses inside one subnet."""

    def __init__(self, network: str = "10.0.0.0", prefix_len: int = 16) -> None:
        self.network = IPv4Address(network)
        self.prefix_len = prefix_len
        host_bits = 32 - prefix_len
        if host_bits < 2:
            raise AddressError("subnet too small for allocation")
        self._max_hosts = (1 << host_bits) - 2  # exclude network + broadcast
        self._next = 1

    def allocate(self) -> IPv4Address:
        if self._next > self._max_hosts:
            raise AddressError(f"IPv4 allocator exhausted in {self.network}/{self.prefix_len}")
        addr = IPv4Address(self.network.value + self._next)
        self._next += 1
        return addr
