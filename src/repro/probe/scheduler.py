"""Budgeted scheduling of probe trains across a monitor's watched paths.

Active probing has the same self-awareness obligation SNMP polling does:
the measurement must not perturb what it measures.  The scheduler makes
that a provable bound rather than a hope -- it launches **one train per
round**, and sizes the round interval so that even if every round's
train crossed the same link, that link would carry at most
``budget_fraction`` of its capacity in probe bytes:

    round_interval = max over paths of
        train_bytes / (budget_fraction * narrowest_bytes_per_s)

Within that budget, rounds go to the least-recently-probed path, with a
priority boost for paths that most need a second opinion: passive
report degraded, confidence below ``priority_confidence``, or an active
cross-validation disagreement.  A train that never completes (flapped
link, blackholed probes) is abandoned by its own timeout, and the
in-flight guard merely skips rounds until then -- the scheduler cannot
wedge, and a skipped round only *lowers* probe load, never raises it.

Each completed train is cross-validated against the passive path report
(see :mod:`repro.probe.crossval`); confirmed disagreements surface as
telemetry events, stream :class:`~repro.stream.events.ProbeDisagreement`
deliveries, integrity verdicts, and a confidence cap on the path's
reports until the planes re-agree.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.probe.crossval import ProbeCrossValidator, ProbeDisagreementFinding
from repro.probe.stats import ProbeReport
from repro.probe.train import PROBE_TOS, ProbeError, ProbeTrain
from repro.stream.events import ProbeDisagreement, pair_key
from repro.telemetry.events import (
    PROBE_DISAGREEMENT,
    PROBE_RECOVERED,
    PROBE_TRAIN_COMPLETED,
)

#: Default ceiling on probe load per link, as a fraction of its capacity.
DEFAULT_BUDGET_FRACTION = 0.02

# Metric family names (see register_probe_metrics).
TRAINS_TOTAL = "probe_trains_total"
PACKETS_SENT_TOTAL = "probe_packets_sent_total"
PACKETS_LOST_TOTAL = "probe_packets_lost_total"
BYTES_SENT_TOTAL = "probe_bytes_sent_total"
DISAGREEMENTS_TOTAL = "probe_disagreements_total"
RECOVERIES_TOTAL = "probe_recoveries_total"
ACTIVE_DISAGREEMENTS = "probe_active_disagreements"


def register_probe_metrics(registry) -> None:
    """Create (or fetch) the probe metric families on ``registry``.

    Safe to call repeatedly -- families are get-or-create, mirroring
    :func:`repro.stream.manager.register_stream_metrics`.
    """
    registry.counter(TRAINS_TOTAL, "Probe trains completed (incl. abandoned)")
    registry.counter(PACKETS_SENT_TOTAL, "Probe packets sent")
    registry.counter(PACKETS_LOST_TOTAL, "Probe packets lost or late")
    registry.counter(BYTES_SENT_TOTAL, "Probe wire bytes sent")
    registry.counter(
        DISAGREEMENTS_TOTAL, "Debounced active/passive disagreement findings"
    )
    registry.counter(RECOVERIES_TOTAL, "Disagreements that re-agreed and cleared")
    registry.gauge(
        ACTIVE_DISAGREEMENTS, "Paths currently under an active disagreement cap"
    )


class ProbeScheduler:
    """Round-robin probe trains over a monitor's watched paths.

    ``monitor`` is a :class:`~repro.core.monitor.NetworkMonitor`; the
    scheduler reads its watch table each round, so paths added or
    removed after :meth:`start` are picked up automatically.
    """

    def __init__(
        self,
        monitor,
        budget_fraction: float = DEFAULT_BUDGET_FRACTION,
        count: int = 16,
        payload_size: int = 1472,
        warmup: int = 2,
        timeout: float = 1.0,
        round_interval: Optional[float] = None,
        cross_validate: bool = True,
        rel_tolerance: float = 0.35,
        abs_floor_bps: float = 100_000.0,
        breach_count: int = 2,
        confidence_cap: float = 0.4,
        priority_confidence: float = 0.7,
        tos: int = PROBE_TOS,
        on_report: Optional[Callable[[ProbeReport], None]] = None,
    ) -> None:
        if not 0.0 < budget_fraction <= 0.25:
            raise ProbeError(
                f"budget_fraction out of (0, 0.25]: {budget_fraction!r}"
            )
        if round_interval is not None and round_interval <= 0:
            raise ProbeError(f"round_interval must be > 0: {round_interval!r}")
        self.monitor = monitor
        self.sim = monitor.sim
        self.budget_fraction = budget_fraction
        self.count = count
        self.payload_size = payload_size
        self.warmup = warmup
        self.timeout = timeout
        self.tos = tos
        self.on_report = on_report
        self._explicit_interval = round_interval
        self.round_interval: Optional[float] = round_interval
        self.priority_confidence = priority_confidence
        self.validator: Optional[ProbeCrossValidator] = None
        if cross_validate:
            self.validator = ProbeCrossValidator(
                calculator=monitor.calculator,
                rel_tolerance=rel_tolerance,
                abs_floor_bps=abs_floor_bps,
                breach_count=breach_count,
                confidence_cap=confidence_cap,
            )
        #: Latest completed report per watch label.
        self.reports: Dict[str, ProbeReport] = {}
        #: Trains completed per watch label (the fairness ledger).
        self.trains_per_path: Dict[str, int] = {}
        self._last_probed: Dict[str, float] = {}
        self._announced: Dict[str, str] = {}  # label -> announced cause
        self._inflight: Optional[str] = None
        self._task = None
        self.rounds = 0
        self.rounds_skipped = 0
        self.trains_started = 0
        self.trains_abandoned = 0

        registry = monitor.telemetry.registry
        register_probe_metrics(registry)
        self._m_trains = registry.counter(TRAINS_TOTAL, "")
        self._m_sent = registry.counter(PACKETS_SENT_TOTAL, "")
        self._m_lost = registry.counter(PACKETS_LOST_TOTAL, "")
        self._m_bytes = registry.counter(BYTES_SENT_TOTAL, "")
        self._m_disagreements = registry.counter(DISAGREEMENTS_TOTAL, "")
        self._m_recoveries = registry.counter(RECOVERIES_TOTAL, "")
        registry.gauge(ACTIVE_DISAGREEMENTS, "").set_function(
            lambda: float(len(self.validator.active)) if self.validator else 0.0
        )

    # ------------------------------------------------------------------
    # Budget arithmetic
    # ------------------------------------------------------------------
    @property
    def train_bytes(self) -> int:
        """Wire bytes one train puts on every link it crosses."""
        from repro.probe.train import _WIRE_OVERHEAD

        return self.count * (self.payload_size + _WIRE_OVERHEAD)

    def narrowest_bytes(self, label: str) -> float:
        """Capacity (bytes/s) of the narrowest link on ``label``'s path."""
        watch = self.monitor._watches[label]
        spec = self.monitor.spec
        return min(spec.effective_bandwidth(conn) for conn in watch.path) / 8.0

    def required_interval(self, label: str) -> float:
        """Round interval keeping ``label``'s narrowest link in budget."""
        return self.train_bytes / (self.budget_fraction * self.narrowest_bytes(label))

    def _compute_interval(self) -> float:
        labels = list(self.monitor._watches)
        if not labels:
            raise ProbeError("no watched paths to probe; call watch_path() first")
        return max(self.required_interval(label) for label in labels)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._task is not None

    def start(
        self, at: Optional[float] = None, after: Optional[float] = None
    ) -> None:
        """Begin probing rounds.

        The first round fires at ``at`` when given; otherwise one round
        interval past ``max(now, after)`` -- the monitor passes its first
        report time as ``after`` so cross-validation never compares a
        train against a passive report with no samples behind it.
        """
        if self._task is not None:
            raise ProbeError("probe scheduler already started")
        interval = (
            self._explicit_interval
            if self._explicit_interval is not None
            else self._compute_interval()
        )
        self.round_interval = interval
        if at is None:
            base = self.sim.now if after is None else max(self.sim.now, after)
            at = base + interval
        self._task = self.sim.call_every(interval, self._round, start=at)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def _needs_attention(self, label: str) -> bool:
        if self.validator is not None and label in self.validator.active:
            return True
        try:
            report = self.monitor.current_report(label)
        except Exception:
            return False
        return report.degraded or report.confidence < self.priority_confidence

    def _pick(self) -> Optional[str]:
        labels = list(self.monitor._watches)
        if not labels:
            return None
        # Drop ledger entries for watches that went away.
        for stale in set(self._last_probed) - set(labels):
            self._last_probed.pop(stale, None)
        return min(
            labels,
            key=lambda lb: (
                not self._needs_attention(lb),
                self._last_probed.get(lb, -math.inf),
            ),
        )

    def _round(self) -> None:
        self.rounds += 1
        if self._inflight is not None:
            # A train is still outstanding (its timeout will reap it);
            # skipping only lowers probe load, so the budget bound holds.
            self.rounds_skipped += 1
            return
        label = self._pick()
        if label is None:
            self.rounds_skipped += 1
            return
        watch = self.monitor._watches[label]
        src = self.monitor.network.host(watch.src)
        dst = self.monitor.network.host(watch.dst)
        train = ProbeTrain(
            src,
            dst,
            count=self.count,
            payload_size=self.payload_size,
            warmup=self.warmup,
            timeout=self.timeout,
            tos=self.tos,
            on_complete=lambda report, label=label: self._on_done(label, report),
        )
        self._inflight = label
        self._last_probed[label] = self.sim.now
        self.trains_started += 1
        train.start()

    # ------------------------------------------------------------------
    # Completion + cross-validation
    # ------------------------------------------------------------------
    def _on_done(self, label: str, report: ProbeReport) -> None:
        self._inflight = None
        self.reports[label] = report
        self.trains_per_path[label] = self.trains_per_path.get(label, 0) + 1
        if not report.delivered:
            self.trains_abandoned += 1
        self._m_trains.inc()
        self._m_sent.inc(report.sent)
        self._m_lost.inc(report.sent - report.received)
        self._m_bytes.inc(report.train_bytes)
        now = self.sim.now
        self.monitor.telemetry.events.publish(
            PROBE_TRAIN_COMPLETED,
            now,
            path=label,
            achievable_bps=report.achievable_bps,
            loss_rate=report.loss_rate,
            jitter_s=report.jitter_s,
            delivered=report.delivered,
        )
        if self.on_report is not None:
            self.on_report(report)
        if self.validator is None:
            return
        try:
            passive = self.monitor.current_report(label, _probe_cap=False)
        except Exception:
            return  # watch vanished mid-flight; nothing to compare against
        finding, recovered = self.validator.observe(report, passive, now)
        if recovered:
            self._m_recoveries.inc()
            self._announced.pop(label, None)
            self.monitor.telemetry.events.publish(
                PROBE_RECOVERED,
                now,
                path=label,
                achievable_bps=report.achievable_bps,
                passive_bps=passive.available_bps,
            )
        if finding is None:
            return
        # Trust decays every sustaining round (like passive cross-checks),
        # but the event fan-out announces only new or re-localized findings.
        if self.monitor.integrity is not None:
            self.monitor.integrity.apply_external_verdicts(
                self.validator.verdicts_for(finding), now
            )
        if self._announced.get(label) == finding.cause:
            return
        self._announced[label] = finding.cause
        self._m_disagreements.inc()
        self.monitor.telemetry.events.publish(
            PROBE_DISAGREEMENT,
            now,
            path=label,
            probe_bps=finding.probe_bps,
            passive_bps=finding.passive_bps,
            cause=finding.cause,
            blamed=finding.blamed,
        )
        if self.monitor.stream is not None:
            event = ProbeDisagreement(
                pair=pair_key(finding.src, finding.dst),
                time=now,
                epoch=self.monitor.stream.clock.epoch,
                report=passive,
                probe_bps=finding.probe_bps,
                passive_bps=finding.passive_bps,
                cause=finding.cause,
                blamed=finding.blamed,
            )
            self.monitor.stream.manager.deliver(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def confidence_cap_for(self, label: str) -> Optional[float]:
        if self.validator is None:
            return None
        return self.validator.confidence_cap_for(label)

    def findings(self) -> List[ProbeDisagreementFinding]:
        """Active disagreement findings, ordered by path label."""
        if self.validator is None:
            return []
        return [self.validator.active[k] for k in sorted(self.validator.active)]

    def stats(self) -> Dict[str, object]:
        return {
            "round_interval": self.round_interval,
            "budget_fraction": self.budget_fraction,
            "train_bytes": self.train_bytes,
            "rounds": self.rounds,
            "rounds_skipped": self.rounds_skipped,
            "trains_started": self.trains_started,
            "trains_abandoned": self.trains_abandoned,
            "trains_per_path": dict(self.trains_per_path),
            "comparisons": self.validator.comparisons if self.validator else 0,
            "disagreements": self.validator.disagreements if self.validator else 0,
            "active_disagreements": (
                sorted(self.validator.active) if self.validator else []
            ),
        }
