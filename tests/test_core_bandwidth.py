"""Unit tests for the bandwidth rules, on synthetic rate tables.

These tests drive :class:`BandwidthCalculator` directly with hand-made
:class:`InterfaceRates` samples so each rule is checked in isolation from
the SNMP machinery (which test_core_monitor exercises end-to-end).
"""

import pytest

from repro.core.bandwidth import BandwidthCalculator
from repro.core.poller import InterfaceRates, RateTable
from repro.core.traversal import find_path
from repro.spec.parser import parse_spec

SPEC = """
network topology t {
    host L  { snmp community "public"; }
    host S1 { snmp community "public"; }
    host S4 { }
    host N1 { snmp community "public"; interface el0 { speed 10 Mbps; } }
    host N2 { snmp community "public"; interface el0 { speed 10 Mbps; } }
    switch sw { snmp community "public"; ports 6; }
    hub hb { ports 4 speed 10 Mbps; }
    connect L.eth0  <-> sw.port1;
    connect S1.eth0 <-> sw.port2;
    connect S4.eth0 <-> sw.port3;
    connect sw.port4 <-> hb.port1;
    connect N1.el0  <-> hb.port2;
    connect N2.el0  <-> hb.port3;
}
"""


def setup():
    spec = parse_spec(SPEC)
    rates = RateTable()
    calc = BandwidthCalculator(spec, rates)
    return spec, rates, calc


def feed(rates, node, if_index, in_bps, out_bps, t=10.0):
    rates.update(
        InterfaceRates(node, if_index, t, 2.0, in_bps, out_bps, 0.0, 0.0)
    )


def conn(spec, a, b):
    for c in spec.connections:
        if {c.end_a.node, c.end_b.node} == {a, b}:
            return c
    raise AssertionError


class TestSwitchRule:
    def test_u_equals_t(self):
        spec, rates, calc = setup()
        feed(rates, "S1", 1, in_bps=100_000, out_bps=20_000)
        m = calc.measure_connection(conn(spec, "S1", "sw"))
        assert m.rule == "switch"
        assert m.used_bps == 120_000
        assert m.capacity_bps == 100e6 / 8
        assert m.available_bps == 100e6 / 8 - 120_000

    def test_unmeasured_without_sample(self):
        spec, rates, calc = setup()
        m = calc.measure_connection(conn(spec, "S1", "sw"))
        assert m.rule == "unmeasured"
        assert not m.measured
        assert m.used_bps == 0.0

    def test_snmpless_host_uses_switch_port(self):
        spec, rates, calc = setup()
        feed(rates, "sw", 3, in_bps=0, out_bps=50_000)  # port to S4
        m = calc.measure_connection(conn(spec, "S4", "sw"))
        assert m.rule == "switch"
        assert m.used_bps == 50_000
        assert m.source.node == "sw"

    def test_other_hosts_do_not_leak(self):
        """Traffic to S1 must not appear on S4's connection."""
        spec, rates, calc = setup()
        feed(rates, "S1", 1, in_bps=1_000_000, out_bps=0)
        feed(rates, "sw", 3, in_bps=0, out_bps=0)
        m = calc.measure_connection(conn(spec, "S4", "sw"))
        assert m.used_bps == 0.0


class TestHubRule:
    def test_u_is_sum_of_host_legs(self):
        """u_i = t_1 + ... + t_n for hosts on the hub (paper §3.3)."""
        spec, rates, calc = setup()
        feed(rates, "N1", 1, in_bps=200_000, out_bps=0)
        feed(rates, "N2", 1, in_bps=150_000, out_bps=0)
        m1 = calc.measure_connection(conn(spec, "N1", "hb"))
        m2 = calc.measure_connection(conn(spec, "N2", "hb"))
        assert m1.rule == "hub" and m2.rule == "hub"
        assert m1.used_bps == m2.used_bps == 350_000

    def test_uplink_shares_hub_usage(self):
        spec, rates, calc = setup()
        feed(rates, "N1", 1, in_bps=100_000, out_bps=0)
        feed(rates, "N2", 1, in_bps=0, out_bps=0)
        uplink = calc.measure_connection(conn(spec, "sw", "hb"))
        assert uplink.rule == "hub"
        assert uplink.used_bps == 100_000

    def test_clamped_to_hub_speed(self):
        """"u_i cannot exceed the maximum speed of the hub"."""
        spec, rates, calc = setup()
        feed(rates, "N1", 1, in_bps=900_000, out_bps=0)
        feed(rates, "N2", 1, in_bps=900_000, out_bps=0)
        m = calc.measure_connection(conn(spec, "N1", "hb"))
        assert m.used_bps == 10e6 / 8  # 1.25 MB/s
        assert m.available_bps == 0.0

    def test_partial_measurement_still_sums(self):
        spec, rates, calc = setup()
        feed(rates, "N1", 1, in_bps=100_000, out_bps=0)
        # N2 never sampled: the sum covers what is known.
        m = calc.measure_connection(conn(spec, "N1", "hb"))
        assert m.rule == "hub"
        assert m.used_bps == 100_000

    def test_hub_with_no_samples_unmeasured(self):
        spec, rates, calc = setup()
        m = calc.measure_connection(conn(spec, "N1", "hb"))
        assert m.rule == "unmeasured"

    def test_hub_of(self):
        spec, rates, calc = setup()
        assert calc.hub_of(conn(spec, "N1", "hb")) == "hb"
        assert calc.hub_of(conn(spec, "sw", "hb")) == "hb"
        assert calc.hub_of(conn(spec, "S1", "sw")) is None


class TestPathMeasurement:
    def test_available_is_min_rule(self):
        """A = min(a_1 ... a_n): the 10 Mb/s hub bounds the S1->N1 path."""
        spec, rates, calc = setup()
        feed(rates, "S1", 1, in_bps=0, out_bps=0)
        feed(rates, "sw", 4, in_bps=0, out_bps=0)
        feed(rates, "N1", 1, in_bps=200_000, out_bps=0)
        feed(rates, "N2", 1, in_bps=0, out_bps=0)
        path = find_path(spec, "S1", "N1")
        report = calc.measure_path(path, "S1", "N1", time=10.0)
        assert report.available_bps == 10e6 / 8 - 200_000
        assert report.used_bps == 200_000
        assert report.bottleneck.connection is conn(spec, "N1", "hb") or \
               report.bottleneck.connection is conn(spec, "sw", "hb")

    def test_used_is_max_over_connections(self):
        spec, rates, calc = setup()
        feed(rates, "S1", 1, in_bps=500_000, out_bps=0)
        feed(rates, "L", 1, in_bps=0, out_bps=0)
        path = find_path(spec, "S1", "L")
        report = calc.measure_path(path, "S1", "L", time=1.0)
        assert report.used_bps == 500_000

    def test_complete_flag(self):
        spec, rates, calc = setup()
        path = find_path(spec, "S1", "N1")
        report = calc.measure_path(path, "S1", "N1", time=0.0)
        assert not report.complete
        feed(rates, "S1", 1, 0, 0)
        feed(rates, "sw", 4, 0, 0)
        feed(rates, "N1", 1, 0, 0)
        report = calc.measure_path(path, "S1", "N1", time=1.0)
        assert report.complete

    def test_capacity_is_narrowest_link(self):
        spec, rates, calc = setup()
        path = find_path(spec, "S1", "N1")
        report = calc.measure_path(path, "S1", "N1", time=0.0)
        assert report.capacity_bps == 10e6 / 8

    def test_counter_source_cached(self):
        spec, rates, calc = setup()
        c = conn(spec, "S1", "sw")
        assert calc.counter_source(c) is calc.counter_source(c)
