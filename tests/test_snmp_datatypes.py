"""Unit tests for SNMP value types and their wire forms."""

import pytest

from repro.snmp import ber
from repro.snmp.datatypes import (
    Counter32,
    Counter64,
    EndOfMibView,
    Gauge32,
    Integer,
    IpAddress,
    NoSuchInstance,
    NoSuchObject,
    Null,
    ObjectIdentifier,
    OctetString,
    TimeTicks,
    decode_value,
)
from repro.snmp.oid import Oid


def roundtrip(value):
    decoded, end = decode_value(value.encode())
    assert end == len(value.encode())
    return decoded


class TestRoundtrips:
    @pytest.mark.parametrize(
        "value",
        [
            Integer(0),
            Integer(-42),
            Integer(2**31 - 1),
            OctetString(b"community"),
            OctetString(""),
            Null(),
            ObjectIdentifier("1.3.6.1.2.1.1.3.0"),
            IpAddress("10.0.0.1"),
            Counter32(0),
            Counter32((1 << 32) - 1),
            Gauge32(100_000_000),
            TimeTicks(360000),
            Counter64(1 << 40),
            NoSuchObject(),
            NoSuchInstance(),
            EndOfMibView(),
        ],
    )
    def test_encode_decode_identity(self, value):
        assert roundtrip(value) == value

    def test_unknown_tag_rejected(self):
        with pytest.raises(ber.BerError):
            decode_value(bytes([0x77, 0x01, 0x00]))

    def test_exception_value_with_content_rejected(self):
        with pytest.raises(ber.BerError):
            decode_value(bytes([0x80, 0x01, 0x00]))


class TestCounter32:
    def test_wrap_truncates_raw_counter(self):
        raw = (1 << 32) + 1234
        assert Counter32.wrap(raw).value == 1234

    def test_delta_simple(self):
        assert Counter32(5000).delta(Counter32(3000)) == 2000

    def test_delta_across_wrap(self):
        """The poller's 'old subtracted from new' must survive a wrap."""
        old = Counter32((1 << 32) - 100)
        new = Counter32(50)
        assert new.delta(old) == 150

    def test_out_of_range_rejected(self):
        with pytest.raises(ber.BerError):
            Counter32(1 << 32)
        with pytest.raises(ber.BerError):
            Counter32(-1)


class TestTimeTicks:
    def test_from_seconds_is_hundredths(self):
        assert TimeTicks.from_seconds(2.0).value == 200

    def test_to_seconds_roundtrip(self):
        assert TimeTicks.from_seconds(123.45).to_seconds() == pytest.approx(123.45)

    def test_delta_seconds(self):
        t1 = TimeTicks.from_seconds(10.0)
        t2 = TimeTicks.from_seconds(12.5)
        assert t2.delta_seconds(t1) == pytest.approx(2.5)

    def test_delta_across_wrap(self):
        t1 = TimeTicks((1 << 32) - 100)
        t2 = TimeTicks(100)
        assert t2.delta_seconds(t1) == pytest.approx(2.0)

    def test_from_seconds_wraps_like_agent(self):
        # 2^32 hundredths ~ 497 days; the value must wrap, not overflow.
        big = (1 << 32) / 100.0 + 1.0
        assert TimeTicks.from_seconds(big).value == 100


class TestIpAddress:
    def test_text_roundtrip(self):
        assert IpAddress("192.168.1.1").as_text() == "192.168.1.1"

    def test_wrong_length_rejected(self):
        with pytest.raises(ber.BerError):
            IpAddress(b"\x01\x02\x03")
        with pytest.raises(ber.BerError):
            IpAddress("1.2.3")


class TestEquality:
    def test_same_value_different_type_not_equal(self):
        assert Counter32(5) != Gauge32(5)
        assert Integer(5) != Counter32(5)

    def test_octetstring_accepts_str(self):
        assert OctetString("abc") == OctetString(b"abc")

    def test_hashable(self):
        assert len({Counter32(5), Counter32(5), Gauge32(5)}) == 2
