"""Integration tests for the experiment drivers.

The full paper runs (480 s for Fig 4) are exercised by the benchmark
harness; here shorter, structurally identical runs assert the properties
the paper claims: measured tracks generated, hub paths see sums, switch
paths isolate, error statistics land in the right band.
"""

import numpy as np
import pytest

from repro.analysis.series import stable_mask
from repro.analysis.stats import compute_table2
from repro.experiments import fig5, fig6
from repro.experiments.scenarios import Scenario
from repro.experiments.testbed import MONITOR_HOST, TESTBED_SPEC_TEXT, build_testbed
from repro.simnet.trafficgen import KBPS, StepSchedule
from repro.spec.parser import parse_spec


class TestTestbed:
    def test_layout_matches_figure3(self):
        spec = parse_spec(TESTBED_SPEC_TEXT)
        hosts = {n.name for n in spec.hosts()}
        assert hosts == {"L", "S1", "S2", "S3", "S4", "S5", "S6", "N1", "N2"}
        snmp_nodes = {n.name for n in spec.nodes if n.snmp_enabled}
        assert snmp_nodes == {"L", "S1", "S2", "N1", "N2", "switch"}

    def test_hub_hosts_are_the_nt_machines(self):
        spec = parse_spec(TESTBED_SPEC_TEXT)
        hub_conns = spec.connections_of("hub")
        peers = {c.other_end("hub").node for c in hub_conns}
        assert peers == {"switch", "N1", "N2"}

    def test_build_is_deterministic(self):
        b1 = build_testbed()
        b2 = build_testbed()
        assert sorted(b1.agents) == sorted(b2.agents)
        assert str(b1.network.ip_of("N1")) == str(b2.network.ip_of("N1"))


class TestScenarioMechanics:
    def test_series_pair_alignment(self):
        sc = Scenario(seed=0, chatter_rate=0.0)
        label = sc.watch("S1", "N1")
        sc.add_load("L", "N1", StepSchedule.pulse(6.0, 20.0, 100 * KBPS))
        sc.run(30.0)
        pair = sc.series_pair(label, ["N1"])
        assert len(pair.times) == len(pair.measured_kbps)
        on = pair.generated_kbps > 0
        # Measured during the pulse must clearly exceed measured outside it.
        assert pair.measured_kbps[on].mean() > 50 * pair.measured_kbps[~on].mean() + 1

    def test_duplicate_load_rejected(self):
        sc = Scenario(seed=0)
        sc.add_load("L", "N1", StepSchedule.pulse(1.0, 2.0, 1000.0))
        with pytest.raises(ValueError):
            sc.add_load("L", "N1", StepSchedule.pulse(3.0, 4.0, 1000.0))

    def test_generated_rate_sums_loads_to_same_dst(self):
        sc = Scenario(seed=0)
        sc.add_load("L", "N1", StepSchedule.pulse(0.0, 10.0, 1000.0))
        sc.add_load("S2", "N1", StepSchedule.pulse(5.0, 10.0, 500.0))
        assert sc.generated_rate_at("N1", 6.0) == 1500.0
        assert sc.generated_rate_at("N1", 2.0) == 1000.0
        assert sc.generated_rate_at("N2", 6.0) == 0.0


class TestShortStaircase:
    """A compressed Figure-4: 2 levels, hub path, Table-2 statistics."""

    def test_measured_tracks_staircase(self):
        sc = Scenario(seed=1)
        label = sc.watch("S1", "N1")
        schedule = StepSchedule(
            [(10.0, 100 * KBPS), (40.0, 200 * KBPS), (70.0, 0.0)]
        )
        sc.add_load("L", "N1", schedule)
        sc.run(100.0)
        pair = sc.series_pair(label, ["N1"])
        stable = stable_mask(pair.times, schedule, window=2.0, guard=1.0)
        stats = compute_table2(
            pair.measured_kbps, pair.generated_kbps, stable=stable
        )
        assert [lv.generated for lv in stats.levels] == [100.0, 200.0]
        # Systematic error: headers ~1.9% plus a little monitoring noise.
        assert 0.5 < stats.mean_pct_error < 6.0
        # Background: chatter + SNMP polling, same order as the paper's 0.8.
        assert 0.1 < stats.background < 5.0
        # Measured is consistently ABOVE generated (headers), not below.
        for level in stats.levels:
            assert level.avg_less_background > level.generated


class TestFig5Short:
    def test_hub_paths_see_sum(self):
        result = fig5.run(seed=2)
        for label in ("S1<->N1", "S1<->N2"):
            pair = result.pairs[label]
            # During the overlap the hub carries 400 KB/s on both paths.
            overlap = (pair.times > 44) & (pair.times < 58)
            assert pair.measured_kbps[overlap].mean() == pytest.approx(400, rel=0.08)
            # Single-load windows: 200 KB/s.
            single = (pair.times > 24) & (pair.times < 38)
            assert pair.measured_kbps[single].mean() == pytest.approx(200, rel=0.08)
        for stats in result.stats.values():
            assert stats.mean_pct_error < 8.0
            assert stats.max_pct_error < 25.0


class TestFig6Short:
    def test_switch_paths_isolate(self):
        result = fig6.run(seed=2)
        s2 = result.pairs["S1<->S2"]
        s3 = result.pairs["S1<->S3"]
        # Load to S2 (20-60 s) appears only on S1<->S2.
        window = (s2.times > 24) & (s2.times < 38)
        assert s2.measured_kbps[window].mean() == pytest.approx(2000, rel=0.08)
        assert s3.measured_kbps[window].mean() < 100
        # Load to S3 (40-80 s, after S2's ends at 60) only on S1<->S3.
        window3 = (s3.times > 64) & (s3.times < 78)
        assert s3.measured_kbps[window3].mean() == pytest.approx(2000, rel=0.08)
        assert s2.measured_kbps[window3].mean() < 100
        # Load to S1 (100-120 s) on BOTH paths.
        window1 = (s2.times > 104) & (s2.times < 118)
        assert s2.measured_kbps[window1].mean() == pytest.approx(2000, rel=0.08)
        assert s3.measured_kbps[window1].mean() == pytest.approx(2000, rel=0.08)

    def test_accuracy_statistics_in_band(self):
        result = fig6.run(seed=2)
        for stats in result.stats.values():
            assert stats.mean_pct_error < 6.0  # paper: 2.2 %


class TestDeterminism:
    def test_same_seed_identical_series(self):
        runs = []
        for _ in range(2):
            sc = Scenario(seed=7)
            label = sc.watch("S1", "N1")
            sc.add_load("L", "N1", StepSchedule.pulse(5.0, 15.0, 150 * KBPS))
            sc.run(25.0)
            runs.append(sc.path_series(label).used())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_different_seed_differs(self):
        used = []
        for seed in (1, 2):
            sc = Scenario(seed=seed)
            label = sc.watch("S1", "N1")
            sc.add_load("L", "N1", StepSchedule.pulse(5.0, 15.0, 150 * KBPS))
            sc.run(25.0)
            used.append(sc.path_series(label).used())
        assert not np.array_equal(used[0], used[1])
