"""Soak test: the monitor at an order of magnitude beyond the testbed.

A 48-host, 4-switch campus with a dozen concurrent loads, monitored for
two simulated minutes: every watched path must report sanely, timeouts
must stay at zero, and the simulator must get through it in bounded
wall-clock (guarded loosely; this is a correctness soak, not a bench).
"""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    InterfaceSpec,
    NodeSpec,
    TopologySpec,
)

N_SWITCHES = 4
HOSTS_PER_SWITCH = 12


def campus_spec() -> TopologySpec:
    nodes = []
    connections = []
    for s in range(N_SWITCHES):
        nodes.append(
            NodeSpec(
                f"sw{s}",
                kind=DeviceKind.SWITCH,
                interfaces=[InterfaceSpec(f"port{p + 1}") for p in range(16)],
                snmp_enabled=True,
            )
        )
    # Chain the switches: sw0 - sw1 - sw2 - sw3.
    for s in range(N_SWITCHES - 1):
        connections.append(
            ConnectionSpec(
                InterfaceRef(f"sw{s}", "port15"), InterfaceRef(f"sw{s + 1}", "port16")
            )
        )
    for s in range(N_SWITCHES):
        for h in range(HOSTS_PER_SWITCH):
            name = f"h{s}_{h}"
            nodes.append(
                NodeSpec(
                    name,
                    interfaces=[InterfaceSpec("eth0")],
                    snmp_enabled=(h % 3 == 0),  # a third run agents
                )
            )
            connections.append(
                ConnectionSpec(
                    InterfaceRef(name, "eth0"), InterfaceRef(f"sw{s}", f"port{h + 1}")
                )
            )
    return TopologySpec("campus", nodes, connections)


@pytest.mark.parametrize("seed", [0])
def test_campus_soak(seed):
    spec = campus_spec()
    build = build_network(spec)
    net = build.network
    monitor = NetworkMonitor(build, "h0_0", poll_interval=2.0, seed=seed)

    # Watch six cross-campus paths.
    watches = [
        monitor.watch_path("h0_1", "h3_1"),
        monitor.watch_path("h0_2", "h2_5"),
        monitor.watch_path("h1_3", "h3_7"),
        monitor.watch_path("h1_0", "h1_6"),
        monitor.watch_path("h2_0", "h3_0"),
        monitor.watch_path("h0_4", "h2_9"),
    ]
    # A dozen concurrent loads in both directions across the trunks.
    rng_pairs = [
        ("h0_1", "h3_1", 200), ("h3_2", "h0_3", 150), ("h1_3", "h3_7", 100),
        ("h2_5", "h0_2", 250), ("h1_0", "h1_6", 300), ("h3_9", "h0_9", 120),
        ("h2_0", "h3_0", 180), ("h0_4", "h2_9", 90), ("h3_4", "h1_8", 210),
        ("h2_2", "h1_1", 160), ("h0_7", "h3_5", 140), ("h1_9", "h2_7", 110),
    ]
    for src, dst, rate in rng_pairs:
        StaircaseLoad(
            net.host(src), net.ip_of(dst), StepSchedule.pulse(10.0, 110.0, rate * KBPS)
        ).start()

    monitor.start()
    net.run(120.0)

    stats = monitor.stats()
    assert stats["snmp_timeouts"] == 0
    assert stats["poll_errors"] == 0
    for label in watches:
        series = monitor.history.series(label)
        assert len(series) >= 50
        # Sanity: usage non-negative, availability never exceeds capacity.
        assert (series.used() >= 0).all()
        capacity = series.reports[0].capacity_bps
        assert (series.available() <= capacity + 1e-6).all()
    # The h0_1 <-> h3_1 path crosses all three trunks and carries both
    # its own 200 KB/s and shares trunks with other flows: its used
    # bandwidth must reflect at least its own load.
    series = monitor.history.series(watches[0])
    mid = series.between(30.0, 100.0)
    assert mid.used().mean() > 200_000


@pytest.mark.parametrize("seed", [0])
def test_campus_soak_bounded_history_under_retention(seed):
    """Retention keeps history memory bounded without touching QoS results.

    Two identical campus runs, one with unlimited history and one with a
    40-second retention window: inside the retained window every series
    must decode to exactly the same arrays (so QoS conclusions are
    unchanged), while total storage stays bounded and the monitor
    reports the dropped samples it spilled.
    """
    spec = campus_spec()
    results = {}
    for retention in (None, 40.0):
        build = build_network(spec)
        net = build.network
        monitor = NetworkMonitor(
            build, "h0_0", poll_interval=2.0, seed=seed,
            history_retention_s=retention,
            # Small chunks so retention actually gets sealed chunks to
            # drop within a two-minute run.
            )
        monitor.history.db.chunk_size = 16
        watches = [
            monitor.watch_path("h0_1", "h3_1"),
            monitor.watch_path("h1_3", "h3_7"),
            monitor.watch_path("h2_0", "h3_0"),
        ]
        for src, dst, rate in [
            ("h0_1", "h3_1", 200), ("h1_3", "h3_7", 100), ("h2_0", "h3_0", 180),
        ]:
            StaircaseLoad(
                net.host(src), net.ip_of(dst),
                StepSchedule.pulse(10.0, 110.0, rate * KBPS),
            ).start()
        monitor.start()
        net.run(120.0)
        results[retention] = (monitor, watches)

    unlimited, watches = results[None]
    retained, _ = results[40.0]

    # Retention actually dropped data, and the monitor accounts for it.
    dropped = retained.history.dropped_samples
    assert dropped > 0
    assert retained.stats()["history_dropped"] == dropped
    assert unlimited.history.dropped_samples == 0

    # Memory is bounded: the retained run stores strictly less, and no
    # series holds more than retention-window + one-chunk of samples.
    assert (retained.history.storage_stats().nbytes
            < unlimited.history.storage_stats().nbytes)
    max_samples = int(40.0 / 2.0) + 16 + 1  # window + straddling chunk slack
    for label in watches:
        series = retained.history.series(label)
        assert len(series) <= max_samples
        assert len(series.reports) == len(series)  # pruned in lockstep

    # QoS detection is unchanged: within the surviving window both runs
    # decode bit-identical measurement arrays.
    for label in watches:
        full = unlimited.history.series(label)
        trimmed = retained.history.series(label)
        floor = trimmed.times()[0]
        window_full = full.between(floor, 1e9)
        window_trim = trimmed.between(floor, 1e9)
        assert (window_full.times() == window_trim.times()).all()
        assert (
            window_full.used().view("uint64")
            == window_trim.used().view("uint64")
        ).all()
        assert (
            window_full.available().view("uint64")
            == window_trim.available().view("uint64")
        ).all()
        # The latest report -- what the RM middleware acts on -- agrees.
        assert trimmed.latest().available_bps == full.latest().available_bps
        assert trimmed.latest().status == full.latest().status
