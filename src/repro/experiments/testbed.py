"""The LIRTSS LAN testbed (paper Figure 3), as a specification.

"The network is a LAN system with one 100 Mbps switch and one 10 Mbps
hub.  One Linux machine (L), two Solaris 7 machines (S1, S2), and four
machines (S3-S6) are connected to the switch.  Two other Windows NT
machines (N1 and N2) are connected to the hub, which is connected to the
switch.  Our network monitoring program was running on the Linux machine
L.  SNMP demons were available on L, N1, N2, S1, S2, and the switch."

The spec below encodes exactly that, including which nodes run agents.
S3-S6 deliberately have none: the monitor must measure them through the
switch's port counters, as the paper demonstrates for the S4-S5 pair.

``snmp_cache`` models the era's agent behaviour of serving counters from
a timer-refreshed snapshot (the source of the paper's polling-delay
spikes); the Windows NT agents get a coarser timer than the Unix ones.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.engine import Simulator
from repro.spec.builder import BuildResult, build_network
from repro.spec.parser import parse_spec

MONITOR_HOST = "L"
SWITCH = "switch"
HUB = "hub"

TESTBED_SPEC_TEXT = """
# LIRTSS laboratory testbed, Figure 3 of the paper.
network topology lirtss {
    host L  { os "Linux";     snmp community "public"; snmp_cache "0.25";
              interface eth0 { speed 100 Mbps; } }
    host S1 { os "Solaris 7"; snmp community "public"; snmp_cache "0.25";
              interface hme0 { speed 100 Mbps; } }
    host S2 { os "Solaris 7"; snmp community "public"; snmp_cache "0.25";
              interface hme0 { speed 100 Mbps; } }
    host S3 { os "Solaris";   interface hme0 { speed 100 Mbps; } }
    host S4 { os "Solaris";   interface hme0 { speed 100 Mbps; } }
    host S5 { os "Solaris";   interface hme0 { speed 100 Mbps; } }
    host S6 { os "Solaris";   interface hme0 { speed 100 Mbps; } }
    host N1 { os "Win NT";    snmp community "public"; snmp_cache "0.5";
              interface el0  { speed 10 Mbps; } }
    host N2 { os "Win NT";    snmp community "public"; snmp_cache "0.5";
              interface el0  { speed 10 Mbps; } }

    switch switch { snmp community "public"; snmp_cache "0.25";
                    ports 10 speed 100 Mbps; }
    hub hub { ports 4 speed 10 Mbps; }

    connect L.eth0  <-> switch.port1;
    connect S1.hme0 <-> switch.port2;
    connect S2.hme0 <-> switch.port3;
    connect S3.hme0 <-> switch.port4;
    connect S4.hme0 <-> switch.port5;
    connect S5.hme0 <-> switch.port6;
    connect S6.hme0 <-> switch.port7;
    connect switch.port8 <-> hub.port1;
    connect N1.el0  <-> hub.port2;
    connect N2.el0  <-> hub.port3;
}
"""


def build_testbed(
    sim: Optional[Simulator] = None,
    agent_seed: int = 0,
) -> BuildResult:
    """Parse, validate and instantiate the Figure 3 testbed."""
    spec = parse_spec(TESTBED_SPEC_TEXT)
    return build_network(spec, sim=sim, agent_seed=agent_seed)
