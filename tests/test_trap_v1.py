"""Tests for SNMPv1 Trap-PDU support (RFC 1157 format, RFC 2576 mapping)."""

import pytest

from repro.simnet.network import Network
from repro.snmp import ber
from repro.snmp.datatypes import Integer, IpAddress, TimeTicks
from repro.snmp.message import VERSION_1, Message
from repro.snmp.mib import IF_INDEX
from repro.snmp.oid import Oid
from repro.snmp.pdu import VarBind
from repro.snmp.trap import (
    GENERIC_ENTERPRISE_SPECIFIC,
    GENERIC_LINK_DOWN,
    GENERIC_LINK_UP,
    TRAP_LINK_DOWN,
    TRAP_LINK_UP,
    TrapReceiver,
    TrapV1Pdu,
)

ENTERPRISE = Oid("1.3.6.1.4.1.99999.1")


def v1_trap(generic=GENERIC_LINK_DOWN, specific=0, if_index=1):
    return TrapV1Pdu(
        enterprise=ENTERPRISE,
        agent_addr=IpAddress("10.0.0.2"),
        generic_trap=generic,
        specific_trap=specific,
        timestamp=TimeTicks(4242),
        varbinds=[VarBind(IF_INDEX + str(if_index), Integer(if_index))],
    )


class TestWireFormat:
    def test_roundtrip(self):
        pdu = v1_trap()
        decoded, end = TrapV1Pdu.decode(pdu.encode())
        assert end == len(pdu.encode())
        assert decoded.enterprise == ENTERPRISE
        assert decoded.agent_addr == IpAddress("10.0.0.2")
        assert decoded.generic_trap == GENERIC_LINK_DOWN
        assert decoded.timestamp == TimeTicks(4242)
        assert decoded.varbinds == pdu.varbinds

    def test_message_envelope_roundtrip(self):
        raw = Message(VERSION_1, "public", v1_trap()).encode()
        decoded = Message.decode(raw)
        assert isinstance(decoded.pdu, TrapV1Pdu)
        assert decoded.pdu.kind == "trap-v1"
        assert decoded.community == "public"

    def test_malformed_rejected(self):
        raw = Message(VERSION_1, "public", v1_trap()).encode()
        with pytest.raises(ber.BerError):
            Message.decode(raw[:-3])

    def test_v2_identity_mapping(self):
        assert v1_trap(GENERIC_LINK_DOWN).v2_identity() == TRAP_LINK_DOWN
        assert v1_trap(GENERIC_LINK_UP).v2_identity() == TRAP_LINK_UP

    def test_enterprise_specific_identity(self):
        pdu = v1_trap(GENERIC_ENTERPRISE_SPECIFIC, specific=7)
        assert pdu.v2_identity() == ENTERPRISE.extend(0, 7)


class TestReceiverInterop:
    def test_v1_trap_delivered_as_event(self):
        net = Network()
        sender = net.add_host("S")
        receiver_host = net.add_host("R")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(sender, sw)
        net.connect(receiver_host, sw)
        net.announce_hosts()
        events = []
        TrapReceiver(receiver_host, callback=events.append)
        raw = Message(VERSION_1, "public", v1_trap(if_index=3)).encode()
        sender.create_socket().sendto(raw, (receiver_host.primary_ip, 162))
        net.run(1.0)
        assert len(events) == 1
        event = events[0]
        assert event.is_link_down
        assert event.if_index() == 3
        assert event.uptime == TimeTicks(4242)

    def test_v1_and_v2_coexist(self):
        net = Network()
        sender = net.add_host("S")
        receiver_host = net.add_host("R")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(sender, sw)
        net.connect(receiver_host, sw)
        net.announce_hosts()
        events = []
        TrapReceiver(receiver_host, callback=events.append)
        from repro.snmp.message import VERSION_2C
        from repro.snmp.trap import build_trap_pdu

        sock = sender.create_socket()
        sock.sendto(
            Message(VERSION_1, "public", v1_trap()).encode(),
            (receiver_host.primary_ip, 162),
        )
        sock.sendto(
            Message(
                VERSION_2C, "public", build_trap_pdu(TimeTicks(1), TRAP_LINK_UP)
            ).encode(),
            (receiver_host.primary_ip, 162),
        )
        net.run(1.0)
        assert [e.is_link_down for e in events] == [True, False]
