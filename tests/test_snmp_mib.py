"""Unit tests for the MIB tree, MIB-II bindings and the caching view."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.sockets import DISCARD_PORT
from repro.snmp.datatypes import Counter32, Gauge32, Integer, OctetString, TimeTicks
from repro.snmp.mib import (
    CachingMibTree,
    IF_IN_OCTETS,
    IF_NUMBER,
    IF_PHYS_ADDRESS,
    IF_SPEED,
    MibError,
    MibTree,
    SYS_NAME,
    SYS_UPTIME,
    build_mib2,
    DOT1D_TP_FDB_PORT,
)
from repro.snmp.oid import Oid


class TestMibTree:
    def test_get_registered_scalar(self):
        tree = MibTree()
        tree.register(Oid("1.3.1.0"), Integer(5))
        assert tree.get(Oid("1.3.1.0")) == Integer(5)

    def test_get_missing_returns_none(self):
        assert MibTree().get(Oid("1.3")) is None

    def test_callable_accessor_reads_live(self):
        tree = MibTree()
        box = {"v": 1}
        tree.register(Oid("1.3.1.0"), lambda: Integer(box["v"]))
        assert tree.get(Oid("1.3.1.0")) == Integer(1)
        box["v"] = 2
        assert tree.get(Oid("1.3.1.0")) == Integer(2)

    def test_double_registration_rejected(self):
        tree = MibTree()
        tree.register(Oid("1.3.1.0"), Integer(1))
        with pytest.raises(MibError):
            tree.register(Oid("1.3.1.0"), Integer(2))

    def test_get_next_lexicographic(self):
        tree = MibTree()
        for text in ("1.3.1.0", "1.3.2.0", "1.3.10.0"):
            tree.register(Oid(text), Integer(0))
        hit = tree.get_next(Oid("1.3.1.0"))
        assert hit[0] == Oid("1.3.2.0")
        # 2 < 10 numerically, not as strings
        assert tree.get_next(Oid("1.3.2.0"))[0] == Oid("1.3.10.0")

    def test_get_next_from_prefix(self):
        tree = MibTree()
        tree.register(Oid("1.3.6.1.2.1.1.3.0"), TimeTicks(0))
        assert tree.get_next(Oid("1.3.6.1.2.1.1.3"))[0] == Oid("1.3.6.1.2.1.1.3.0")

    def test_get_next_end_of_mib(self):
        tree = MibTree()
        tree.register(Oid("1.3.1.0"), Integer(0))
        assert tree.get_next(Oid("1.3.1.0")) is None

    def test_walk_all_sorted(self):
        tree = MibTree()
        for text in ("1.3.2.0", "1.3.1.0", "1.4.0"):
            tree.register(Oid(text), Integer(0))
        oids = [oid for oid, _v in tree.walk_all()]
        assert oids == sorted(oids)
        assert len(oids) == 3

    def test_has_subtree(self):
        tree = MibTree()
        tree.register(Oid("1.3.1.5"), Integer(0))
        assert tree.has_subtree(Oid("1.3.1"))
        assert tree.has_subtree(Oid("1.3"))
        assert not tree.has_subtree(Oid("1.4"))


def make_host_net():
    net = Network()
    host = net.add_host("S1", os_label="Solaris 7")
    peer = net.add_host("peer")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(host, sw)
    net.connect(peer, sw)
    net.announce_hosts()
    return net, host, peer


class TestMib2:
    def test_table1_objects_present(self):
        """Every MIB-II object in the paper's Table 1 must resolve."""
        net, host, _ = make_host_net()
        tree = build_mib2(host, net.sim)
        table1 = [
            "1.3.6.1.2.1.1.3.0",  # sysUpTime
            "1.3.6.1.2.1.2.2.1.5.1",  # ifSpeed
            "1.3.6.1.2.1.2.2.1.10.1",  # ifInOctets
            "1.3.6.1.2.1.2.2.1.11.1",  # ifInUcastPkts
            "1.3.6.1.2.1.2.2.1.16.1",  # ifOutOctets
            "1.3.6.1.2.1.2.2.1.18.1",  # ifOutNUcastPkts
        ]
        for text in table1:
            assert tree.get(Oid(text)) is not None, text

    def test_sysuptime_tracks_clock(self):
        net, host, _ = make_host_net()
        tree = build_mib2(host, net.sim)
        net.run(12.34)
        uptime = tree.get(SYS_UPTIME)
        assert uptime == TimeTicks(1234)

    def test_sysname(self):
        net, host, _ = make_host_net()
        tree = build_mib2(host, net.sim)
        assert tree.get(SYS_NAME) == OctetString(b"S1")

    def test_ifspeed_static(self):
        net, host, _ = make_host_net()
        tree = build_mib2(host, net.sim)
        assert tree.get(IF_SPEED + "1") == Gauge32(100_000_000)

    def test_ifnumber(self):
        net, host, _ = make_host_net()
        tree = build_mib2(host, net.sim)
        assert tree.get(IF_NUMBER) == Integer(1)

    def test_ifphysaddress_is_mac(self):
        net, host, _ = make_host_net()
        tree = build_mib2(host, net.sim)
        got = tree.get(IF_PHYS_ADDRESS + "1")
        assert got == OctetString(host.interfaces[0].mac.to_bytes())

    def test_counters_read_live_and_wrap(self):
        net, host, peer = make_host_net()
        tree = build_mib2(host, net.sim)
        assert tree.get(IF_IN_OCTETS + "1") == Counter32(0)
        peer.create_socket().sendto(972, (host.primary_ip, DISCARD_PORT))
        net.run(1.0)
        after = tree.get(IF_IN_OCTETS + "1")
        assert after.value >= 1000
        # Force a wrap: the MIB must truncate the raw 64-bit counter.
        host.interfaces[0].counters.in_octets = (1 << 32) + 42
        assert tree.get(IF_IN_OCTETS + "1") == Counter32(42)

    def test_ifspeed_clamped_to_gauge32(self):
        net = Network()
        host = net.add_host("fast", speed_bps=10e9)  # 10 Gb/s > 2^32
        tree = build_mib2(host, net.sim)
        assert tree.get(IF_SPEED + "1") == Gauge32((1 << 32) - 1)


class TestBridgeFdb:
    def test_fdb_rows_appear_after_learning(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(a, sw)
        net.connect(b, sw)
        net.announce_hosts()
        net.run(0.1)
        tree = build_mib2(sw, net.sim)
        # Walk the FDB port column: one row per learned MAC.
        rows = []
        cursor = DOT1D_TP_FDB_PORT
        while True:
            hit = tree.get_next(cursor)
            if hit is None or not hit[0].startswith(DOT1D_TP_FDB_PORT):
                break
            rows.append(hit)
            cursor = hit[0]
        assert len(rows) == 2
        ports = sorted(v.value for _oid, v in rows)
        assert ports == [1, 2]  # A on port1, B on port2

    def test_fdb_get_exact(self):
        net = Network()
        a = net.add_host("A")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(a, sw)
        net.announce_hosts()
        net.run(0.1)
        tree = build_mib2(sw, net.sim)
        index = ".".join(str(x) for x in a.interfaces[0].mac.to_bytes())
        assert tree.get(DOT1D_TP_FDB_PORT + index) == Integer(1)
        assert tree.get(DOT1D_TP_FDB_PORT + "9.9.9.9.9.9") is None


class TestCachingMibTree:
    def test_counters_stale_between_refreshes(self):
        net, host, peer = make_host_net()
        inner = build_mib2(host, net.sim)
        cached = CachingMibTree(inner, net.sim, refresh_interval=1.0)
        net.run(0.5)  # first snapshot happened at t=0
        host.interfaces[0].counters.in_octets = 5000
        # Still serving the t=0 snapshot:
        assert cached.get(IF_IN_OCTETS + "1") == Counter32(0)
        net.run(1.5)  # snapshot at t=1.0 picked up the new value
        assert cached.get(IF_IN_OCTETS + "1") == Counter32(5000)

    def test_system_group_always_fresh(self):
        net, host, _ = make_host_net()
        cached = CachingMibTree(build_mib2(host, net.sim), net.sim, 10.0)
        net.run(5.0)
        assert cached.get(SYS_UPTIME) == TimeTicks(500)

    def test_non_positive_interval_rejected(self):
        net, host, _ = make_host_net()
        with pytest.raises(MibError):
            CachingMibTree(build_mib2(host, net.sim), net.sim, 0.0)

    def test_get_next_uses_cached_values(self):
        net, host, _ = make_host_net()
        inner = build_mib2(host, net.sim)
        cached = CachingMibTree(inner, net.sim, 1.0)
        net.run(0.2)
        host.interfaces[0].counters.in_octets = 999
        hit = cached.get_next(IF_IN_OCTETS)
        assert hit[0] == IF_IN_OCTETS + "1"
        assert hit[1] == Counter32(0)  # snapshot value, not live
