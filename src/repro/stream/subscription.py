"""One subscriber's bounded event queue and its overflow policy.

The scaling contract of the whole stream layer lives here: a
subscription holds **O(bound)** memory however fast events arrive and
however slowly its consumer drains -- thousands of slow consumers cost
the publisher thousands of small queues, never thousands of unbounded
backlogs.  What happens when the bound is hit is the subscriber's
choice:

``drop_oldest``
    The queue is a ring: a new event evicts the oldest undelivered one.
    The consumer keeps up with *now* at the price of holes in the
    history; the strictly-increasing event epochs make the holes
    visible (a gap in epochs = dropped events).

``conflate``
    Newest value per pair wins.  The queue holds at most one pending
    event per pair; a fresh event for an already-queued pair *replaces*
    it in place (same queue position, zero growth).  Only when the
    bound is hit by a brand-new pair is the oldest pair's pending event
    evicted.  This is the natural policy for dashboards and placement
    searches: they want current state, not history.

``block``
    Nothing is ever silently lost mid-stream: when the queue is full,
    new events are refused and the subscription enters a *stalled*
    state.  Because the publisher cannot (and in a discrete-event
    simulation, must not) suspend the measurement loop for one slow
    consumer, stalling instead marks the subscription for **resync**:
    after the consumer drains its backlog, the next publish cycle
    re-delivers the *current* value of every pair the subscription
    missed while stalled, stamped with the current epoch.  The consumer
    sees a gap, then a coherent fresh baseline -- the same contract a
    reconnecting watch client gets from any production event API.

All three policies expose the same pull interface (:meth:`poll`,
:meth:`drain`) plus an optional push ``callback`` that delivers events
synchronously and bypasses the queue entirely (used by the RM
middleware, whose detectors are O(1) per event).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.stream.events import StreamEvent

__all__ = ["OverflowPolicy", "Subscription"]

PairKey = Tuple[str, str]

DEFAULT_QUEUE_BOUND = 256


class OverflowPolicy(Enum):
    DROP_OLDEST = "drop_oldest"
    CONFLATE = "conflate"
    BLOCK = "block"


class Subscription:
    """One consumer's view of the stream: selection, queue, policy.

    ``pairs`` restricts delivery to the given unordered host pairs
    (``None``: every pair the publisher covers).  ``deliver_unchanged``
    requests an event for every subscribed pair on every publish cycle,
    bypassing both the dirty-pair skip and the significance filter --
    the mode the RM adapter uses so its sample-counting hysteresis sees
    the same per-cycle cadence snapshot consumers see.
    """

    def __init__(
        self,
        name: str,
        pairs: Optional[Set[PairKey]] = None,
        policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST,
        bound: int = DEFAULT_QUEUE_BOUND,
        callback: Optional[Callable[[StreamEvent], None]] = None,
        deliver_unchanged: bool = False,
    ) -> None:
        if bound < 1:
            raise ValueError(f"queue bound must be >= 1, got {bound!r}")
        self.name = name
        self.pairs = pairs
        self.policy = policy
        self.bound = bound
        self.callback = callback
        self.deliver_unchanged = deliver_unchanged
        self._queue: Deque[StreamEvent] = deque()
        self._conflated: "OrderedDict[PairKey, StreamEvent]" = OrderedDict()
        self.stalled = False
        self._missed_pairs: Set[PairKey] = set()
        # Counters (the manager aggregates these into telemetry).
        self.events_delivered = 0  # accepted into the queue / callback
        self.events_dropped = 0  # evicted or refused by the bound
        self.events_conflated = 0  # replaced in place by a newer value
        self.high_watermark = 0  # deepest the queue has ever been

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def wants(self, pair: PairKey) -> bool:
        return self.pairs is None or pair in self.pairs

    # ------------------------------------------------------------------
    # Publisher side
    # ------------------------------------------------------------------
    def offer(self, event: StreamEvent) -> bool:
        """Enqueue (or push) one event; False when refused by ``block``."""
        if self.callback is not None:
            self.callback(event)
            self.events_delivered += 1
            return True
        if self.policy is OverflowPolicy.CONFLATE:
            self._offer_conflated(event)
            return True
        if len(self._queue) >= self.bound:
            if self.policy is OverflowPolicy.DROP_OLDEST:
                self._queue.popleft()
                self.events_dropped += 1
            else:  # BLOCK: refuse, remember what was missed, resync later
                self.stalled = True
                self._missed_pairs.add(event.pair)
                self.events_dropped += 1
                return False
        self._queue.append(event)
        self.events_delivered += 1
        self._note_depth()
        return True

    def _offer_conflated(self, event: StreamEvent) -> None:
        if event.pair in self._conflated:
            # Newest value per pair wins, in the pair's existing slot.
            self._conflated[event.pair] = event
            self.events_conflated += 1
            return
        if len(self._conflated) >= self.bound:
            self._conflated.popitem(last=False)  # evict the oldest pair
            self.events_dropped += 1
        self._conflated[event.pair] = event
        self.events_delivered += 1
        self._note_depth()

    def _note_depth(self) -> None:
        depth = len(self)
        if depth > self.high_watermark:
            self.high_watermark = depth

    # -- block-policy resync -------------------------------------------
    def resync_pairs(self) -> Set[PairKey]:
        """Pairs missed while stalled, ready for re-delivery -- empty
        until the consumer has drained the backlog (the resync must
        land *behind* the events the consumer already holds)."""
        if not self.stalled or len(self._queue) > 0:
            return set()
        return set(self._missed_pairs)

    def resynced(self, delivered: Optional[Set[PairKey]] = None) -> None:
        """The publisher re-delivered ``delivered`` missed pairs (None:
        all of them); unstall once nothing is missing.  A resync can be
        partial -- the backlog bound also caps how many re-deliveries
        fit per drain round -- in which case the subscription stays
        stalled and the remaining pairs wait for the next round."""
        if delivered is None:
            self._missed_pairs.clear()
        else:
            self._missed_pairs -= delivered
        if not self._missed_pairs:
            self.stalled = False

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def poll(self) -> Optional[StreamEvent]:
        """The oldest pending event, or None."""
        if self.policy is OverflowPolicy.CONFLATE:
            if not self._conflated:
                return None
            _, event = self._conflated.popitem(last=False)
            return event
        if not self._queue:
            return None
        return self._queue.popleft()

    def drain(self, limit: Optional[int] = None) -> List[StreamEvent]:
        """Up to ``limit`` pending events, oldest first (None: all)."""
        out: List[StreamEvent] = []
        while limit is None or len(out) < limit:
            event = self.poll()
            if event is None:
                break
            out.append(event)
        return out

    def pending(self) -> int:
        return len(self)

    def __len__(self) -> int:
        if self.policy is OverflowPolicy.CONFLATE:
            return len(self._conflated)
        return len(self._queue)

    def stats(self) -> Dict[str, int]:
        return {
            "pending": len(self),
            "delivered": self.events_delivered,
            "dropped": self.events_dropped,
            "conflated": self.events_conflated,
            "high_watermark": self.high_watermark,
            "stalled": int(self.stalled),
        }
