"""The network-topology data model (paper Figure 2, extended).

The paper models a LAN as hosts/devices with named interfaces joined by
strictly 1-to-1 connections.  These classes are the declarative form: the
spec-language parser produces them, :mod:`repro.spec.builder` turns them
into live simulated devices, and the monitor's path traversal reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class TopologyError(ValueError):
    """Raised for structurally invalid topologies."""


class DeviceKind(str, Enum):
    """What a node is; the monitor's bandwidth rules depend on this."""

    HOST = "host"
    SWITCH = "switch"
    HUB = "hub"


@dataclass
class InterfaceSpec:
    """One named network interface on a node."""

    local_name: str
    speed_bps: float = 100e6
    mtu: int = 1500

    def __post_init__(self) -> None:
        if not self.local_name:
            raise TopologyError("interface needs a local name")
        if self.speed_bps <= 0:
            raise TopologyError(
                f"interface {self.local_name!r} has non-positive speed {self.speed_bps!r}"
            )


@dataclass(frozen=True)
class InterfaceRef:
    """A (node, interface) endpoint reference, e.g. ``S1.eth0``."""

    node: str
    interface: str

    def __str__(self) -> str:
        return f"{self.node}.{self.interface}"


@dataclass
class NodeSpec:
    """A host or network device."""

    name: str
    kind: DeviceKind = DeviceKind.HOST
    interfaces: List[InterfaceSpec] = field(default_factory=list)
    os_label: str = "generic"
    snmp_enabled: bool = False
    snmp_community: str = "public"
    # Free-form attributes from the spec file (locations, roles...).
    attributes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node needs a name")
        seen = set()
        for iface in self.interfaces:
            if iface.local_name in seen:
                raise TopologyError(
                    f"duplicate interface {iface.local_name!r} on node {self.name!r}"
                )
            seen.add(iface.local_name)

    def interface(self, local_name: str) -> InterfaceSpec:
        for iface in self.interfaces:
            if iface.local_name == local_name:
                return iface
        raise TopologyError(f"node {self.name!r} has no interface {local_name!r}")

    @property
    def is_device(self) -> bool:
        return self.kind in (DeviceKind.SWITCH, DeviceKind.HUB)

    @property
    def stp_enabled(self) -> bool:
        """Does this switch declare spanning tree (``stp "on"``)?"""
        return (
            self.kind is DeviceKind.SWITCH
            and self.attributes.get("stp", "").lower() in ("on", "true", "yes", "1")
        )


@dataclass
class ConnectionSpec:
    """A 1-to-1 physical connection between two interface endpoints.

    The paper: "A network connection is specified as a pair of interfaces
    that are physically connected to each other.  In this model, the
    connection must be 1-to-1."
    """

    end_a: InterfaceRef
    end_b: InterfaceRef
    bandwidth_bps: Optional[float] = None  # None: min of the endpoint speeds

    def __post_init__(self) -> None:
        if self.end_a == self.end_b:
            raise TopologyError(f"connection joins {self.end_a} to itself")
        if self.end_a.node == self.end_b.node:
            raise TopologyError(
                f"connection joins two interfaces of the same node {self.end_a.node!r}"
            )
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise TopologyError(f"non-positive connection bandwidth {self.bandwidth_bps!r}")

    def endpoints(self) -> Tuple[InterfaceRef, InterfaceRef]:
        return (self.end_a, self.end_b)

    def touches(self, node: str) -> bool:
        return self.end_a.node == node or self.end_b.node == node

    def other_end(self, node: str) -> InterfaceRef:
        """The endpoint NOT on ``node``."""
        if self.end_a.node == node:
            return self.end_b
        if self.end_b.node == node:
            return self.end_a
        raise TopologyError(f"connection {self} does not touch node {node!r}")

    def __str__(self) -> str:
        return f"{self.end_a} <-> {self.end_b}"


@dataclass
class QosPathSpec:
    """A real-time communication path with QoS requirements.

    The DeSiDeRaTa middleware consumes monitor reports against these
    requirements (the paper's "network QoS specification").
    """

    name: str
    src: str
    dst: str
    min_available_bps: Optional[float] = None
    max_utilization: Optional[float] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"QoS path {self.name!r} has identical endpoints")
        if self.min_available_bps is not None and self.min_available_bps < 0:
            raise TopologyError(f"negative min_available for path {self.name!r}")
        if self.max_utilization is not None and not 0 < self.max_utilization <= 1:
            raise TopologyError(
                f"max_utilization for path {self.name!r} must be in (0, 1]"
            )


@dataclass
class AppFlowSpec:
    """One declared data flow from an application to a peer application."""

    dst_app: str
    rate_bps: float  # bits/second, like every spec-language rate

    def __post_init__(self) -> None:
        if not self.dst_app:
            raise TopologyError("flow needs a destination application")
        if self.rate_bps <= 0:
            raise TopologyError(f"non-positive flow rate {self.rate_bps!r}")


@dataclass
class ApplicationSpec:
    """A real-time application and its initial placement.

    DeSiDeRaTa's specification language describes "all the software
    applications under its control"; the network extension reduces an
    application to what the network monitor needs: where it runs and what
    it sends to whom.
    """

    name: str
    host: str
    flows: List[AppFlowSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("application needs a name")
        if not self.host:
            raise TopologyError(f"application {self.name!r} needs a host placement")
        seen = set()
        for flow in self.flows:
            if flow.dst_app == self.name:
                raise TopologyError(f"application {self.name!r} sends to itself")
            if flow.dst_app in seen:
                raise TopologyError(
                    f"application {self.name!r} declares two flows to "
                    f"{flow.dst_app!r}"
                )
            seen.add(flow.dst_app)


@dataclass
class TopologySpec:
    """The complete declarative topology (paper's ``NetworkTopology``)."""

    name: str = "network"
    nodes: List[NodeSpec] = field(default_factory=list)
    connections: List[ConnectionSpec] = field(default_factory=list)
    qos_paths: List[QosPathSpec] = field(default_factory=list)
    applications: List[ApplicationSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise TopologyError(f"no node named {name!r}")

    def has_node(self, name: str) -> bool:
        return any(node.name == name for node in self.nodes)

    def hosts(self) -> List[NodeSpec]:
        return [n for n in self.nodes if n.kind == DeviceKind.HOST]

    def devices(self) -> List[NodeSpec]:
        return [n for n in self.nodes if n.is_device]

    def connections_of(self, node_name: str) -> List[ConnectionSpec]:
        return [c for c in self.connections if c.touches(node_name)]

    def connection_at(self, ref: InterfaceRef) -> Optional[ConnectionSpec]:
        for conn in self.connections:
            if ref in conn.endpoints():
                return conn
        return None

    def effective_bandwidth(self, conn: ConnectionSpec) -> float:
        """Connection bandwidth: explicit, else min of endpoint speeds."""
        if conn.bandwidth_bps is not None:
            return conn.bandwidth_bps
        speed_a = self.node(conn.end_a.node).interface(conn.end_a.interface).speed_bps
        speed_b = self.node(conn.end_b.node).interface(conn.end_b.interface).speed_bps
        return min(speed_a, speed_b)

    def qos_path(self, name: str) -> QosPathSpec:
        for path in self.qos_paths:
            if path.name == name:
                return path
        raise TopologyError(f"no QoS path named {name!r}")

    def application(self, name: str) -> ApplicationSpec:
        for app in self.applications:
            if app.name == name:
                return app
        raise TopologyError(f"no application named {name!r}")

    def has_application(self, name: str) -> bool:
        return any(app.name == name for app in self.applications)
