"""Embedded compressed time-series storage (the monitor's history engine).

A dependency-free, in-process TSDB in the spirit of Facebook's Gorilla
(Pelkonen et al., VLDB 2015): samples stream into one open *head chunk*
per series and are periodically sealed into immutable, bit-packed chunks
-- delta-of-delta timestamps, XOR-compressed float64 values -- indexed
by min/max time.  Decoding is exact to the bit (NaN payloads, signed
zeros and denormals survive), so figures drawn from the compressed
history are identical to ones drawn from raw sample lists.

Layers, bottom up:

- :mod:`repro.tsdb.bits`   -- bit-granular writer/reader
- :mod:`repro.tsdb.codec`  -- timestamp + value codecs over those bits
- :mod:`repro.tsdb.chunk`  -- open head chunk and sealed chunks
- :mod:`repro.tsdb.series` -- one multi-field series (chunk list + head)
- :mod:`repro.tsdb.db`     -- named series, retention, stats
- :mod:`repro.tsdb.downsample` -- windowed min/max/mean/last aggregates

:class:`~repro.core.history.MeasurementHistory` is a thin view over a
:class:`TSDB`; the ``repro tsdb`` CLI subcommand surfaces the same stats.
"""

from repro.tsdb.bits import BitReader, BitWriter
from repro.tsdb.chunk import HeadChunk, SealedChunk
from repro.tsdb.codec import (
    TimestampDecoder,
    TimestampEncoder,
    ValueDecoder,
    ValueEncoder,
    decode_column,
    encode_column,
    decode_timestamps,
    encode_timestamps,
)
from repro.tsdb.db import Retention, SeriesStats, TSDB, TsdbError
from repro.tsdb.downsample import AGGREGATES, DownsampledSeries, window_aggregate
from repro.tsdb.series import Series

__all__ = [
    "AGGREGATES",
    "BitReader",
    "BitWriter",
    "DownsampledSeries",
    "HeadChunk",
    "Retention",
    "SealedChunk",
    "Series",
    "SeriesStats",
    "TSDB",
    "TimestampDecoder",
    "TimestampEncoder",
    "TsdbError",
    "ValueDecoder",
    "ValueEncoder",
    "decode_column",
    "decode_timestamps",
    "encode_column",
    "encode_timestamps",
    "window_aggregate",
]
