"""End hosts with a minimal UDP/IP stack.

A :class:`Host` owns one or more interfaces (the paper's model explicitly
allows multi-homed hosts -- "B and D can be hosts with multiple network
connections"), a socket table, an IP fragment-reassembly buffer and a
static route table.

Address resolution is a documented simplification: instead of simulating
ARP request/reply traffic, hosts consult the :class:`~repro.simnet.network.
Network` registry for the destination MAC.  The paper's measurements do
not depend on ARP (steady flows resolve once and cache), so this preserves
the relevant behaviour while keeping the byte accounting clean.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.engine import Simulator
from repro.simnet.nic import Interface
from repro.simnet.packet import (
    DEFAULT_MTU,
    EthernetFrame,
    IPPacket,
    PacketError,
    ReassemblyBuffer,
    UDPDatagram,
    fragment_ip_packet,
)
from repro.simnet.sockets import (
    DISCARD_PORT,
    EPHEMERAL_PORT_BASE,
    EPHEMERAL_PORT_MAX,
    DiscardService,
    SocketError,
    UDPSocket,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.network import Network


class HostError(RuntimeError):
    """Raised for host misconfiguration (no interface, bad routes...)."""


class Host:
    """An end system: interfaces + UDP/IP stack + sockets.

    Hosts do not forward IP traffic (they are not routers); the paper's
    testbed is a single LAN where switches and hubs do the forwarding at
    layer 2.
    """

    kind = "host"

    def __init__(self, sim: Simulator, name: str, os_label: str = "generic") -> None:
        self.sim = sim
        self.name = name
        self.os_label = os_label  # "Linux", "Solaris 7", "Win NT" in Fig. 3
        self.interfaces: List[Interface] = []
        self.network: Optional["Network"] = None
        self._sockets: Dict[int, UDPSocket] = {}
        self._next_ephemeral = EPHEMERAL_PORT_BASE
        self._reassembly = ReassemblyBuffer()
        # Static routes: list of (network, prefix_len, interface).  The
        # longest matching prefix wins; default route is the first
        # interface.
        self._routes: List[Tuple[IPv4Address, int, Interface]] = []
        # Stack statistics.
        self.ip_received = 0
        self.ip_forward_refused = 0
        self.udp_delivered = 0
        self.udp_no_port = 0
        self.discard: Optional[DiscardService] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_interface(
        self,
        local_name: str,
        mac: MacAddress,
        ip: IPv4Address,
        speed_bps: float,
        mtu: int = DEFAULT_MTU,
    ) -> Interface:
        """Create a NIC.  Host NICs are non-promiscuous (see nic.py)."""
        if any(i.local_name == local_name for i in self.interfaces):
            raise HostError(f"duplicate interface name {local_name!r} on {self.name}")
        iface = Interface(
            device=self,
            local_name=local_name,
            mac=mac,
            ip=ip,
            speed_bps=speed_bps,
            mtu=mtu,
            promiscuous=False,
            if_index=len(self.interfaces) + 1,
        )
        self.interfaces.append(iface)
        return iface

    def interface(self, local_name: str) -> Interface:
        for iface in self.interfaces:
            if iface.local_name == local_name:
                return iface
        raise HostError(f"no interface {local_name!r} on host {self.name}")

    def add_route(self, network: IPv4Address, prefix_len: int, iface: Interface) -> None:
        """Install a static route (used only by multi-homed hosts)."""
        if iface not in self.interfaces:
            raise HostError(f"{iface.full_name} does not belong to {self.name}")
        self._routes.append((network, prefix_len, iface))
        self._routes.sort(key=lambda r: -r[1])  # longest prefix first

    def announce(self) -> None:
        """Send a tiny broadcast from every NIC (gratuitous-ARP stand-in).

        Real hosts make themselves known to switches the moment they join
        a LAN (gratuitous ARP, DHCP, NetBIOS...).  Without this, a pure
        traffic sink would never be learned and every frame towards it
        would flood -- corrupting the per-port switch counters the paper's
        monitor relies on.  :meth:`repro.simnet.network.Network.
        announce_hosts` schedules this for all hosts at t=0.
        """
        if self.network is None:
            raise HostError(f"host {self.name} is not part of a Network")
        for iface in self.interfaces:
            if iface.ip is None or iface.link is None:
                continue
            datagram = UDPDatagram(src_port=68, dst_port=68, payload_size=18)
            packet = IPPacket(src=iface.ip, dst=self.network.broadcast_ip, payload=datagram)
            frame = EthernetFrame(
                src=iface.mac, dst=self.network.resolve_mac(self.network.broadcast_ip),
                payload=packet,
            )
            iface.transmit(frame)

    def start_discard_service(self) -> DiscardService:
        """Run the RFC 863 DISCARD sink the load generator targets."""
        if self.discard is None:
            self.discard = DiscardService(self, DISCARD_PORT)
        return self.discard

    @property
    def primary_ip(self) -> IPv4Address:
        if not self.interfaces or self.interfaces[0].ip is None:
            raise HostError(f"host {self.name} has no addressed interface")
        return self.interfaces[0].ip

    # ------------------------------------------------------------------
    # Sockets
    # ------------------------------------------------------------------
    def create_socket(self, port: int = 0) -> UDPSocket:
        """Bind a UDP socket; ``port=0`` picks an ephemeral port."""
        if port == 0:
            port = self._pick_ephemeral()
        if port in self._sockets:
            raise SocketError(f"port {port} already bound on {self.name}")
        sock = UDPSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _pick_ephemeral(self) -> int:
        start = self._next_ephemeral
        port = start
        while port in self._sockets:
            port += 1
            if port > EPHEMERAL_PORT_MAX:
                port = EPHEMERAL_PORT_BASE
            if port == start:
                raise SocketError(f"ephemeral ports exhausted on {self.name}")
        self._next_ephemeral = port + 1
        if self._next_ephemeral > EPHEMERAL_PORT_MAX:
            self._next_ephemeral = EPHEMERAL_PORT_BASE
        return port

    def _release_port(self, port: int) -> None:
        self._sockets.pop(port, None)

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def route_for(self, dst_ip: IPv4Address) -> Interface:
        """Pick the outgoing interface for ``dst_ip``."""
        for network, prefix_len, iface in self._routes:
            if dst_ip.in_subnet(network, prefix_len):
                return iface
        if not self.interfaces:
            raise HostError(f"host {self.name} has no interfaces")
        return self.interfaces[0]

    def send_udp(
        self,
        src_port: int,
        dst_ip: IPv4Address,
        dst_port: int,
        payload: Optional[bytes] = None,
        payload_size: Optional[int] = None,
        tos: int = 0,
    ) -> bool:
        """Encapsulate and transmit a datagram.

        Returns True when every fragment was accepted by the NIC queue;
        a single tail-drop makes the whole datagram count as lost (the
        receiver could never reassemble it).
        """
        if self.network is None:
            raise HostError(f"host {self.name} is not part of a Network")
        iface = self.route_for(dst_ip)
        if iface.ip is None:
            raise HostError(f"{iface.full_name} has no IP address")
        datagram = UDPDatagram(
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            payload_size=payload_size,
        )
        if self._is_local_ip(dst_ip):
            # Loopback: local traffic never touches the wire (and so never
            # perturbs any interface counter), as in a real IP stack.  The
            # monitor polling its own host's agent takes this path.
            packet = IPPacket(src=dst_ip, dst=dst_ip, payload=datagram, tos=tos)
            self.sim.schedule(0.0, self._deliver_udp, packet)
            return True
        dst_mac = self.network.resolve_mac(dst_ip)
        packet = IPPacket(src=iface.ip, dst=dst_ip, payload=datagram, tos=tos)
        ok = True
        for frag in fragment_ip_packet(packet, iface.mtu):
            frame = EthernetFrame(src=iface.mac, dst=dst_mac, payload=frag)
            if not iface.transmit(frame):
                ok = False
        return ok

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_frame(self, iface: Interface, frame: EthernetFrame) -> None:
        """Upward delivery from a NIC (already MAC-filtered there)."""
        packet = frame.payload
        self.ip_received += 1
        if not self._is_local_ip(packet.dst) and not frame.is_broadcast:
            # Hosts do not forward; a mis-switched unicast frame for a
            # different IP is silently refused (counted for diagnostics).
            self.ip_forward_refused += 1
            return
        try:
            complete = self._reassembly.add(packet, self.sim.now)
        except PacketError:
            return
        if complete is None:
            return
        self._deliver_udp(complete)

    def _deliver_udp(self, packet: IPPacket) -> None:
        datagram = packet.payload
        assert datagram is not None
        sock = self._sockets.get(datagram.dst_port)
        if sock is None:
            self.udp_no_port += 1
            return
        self.udp_delivered += 1
        sock._deliver(
            datagram.payload,
            int(datagram.payload_size or 0),
            packet.src,
            datagram.src_port,
        )

    def _is_local_ip(self, ip: IPv4Address) -> bool:
        return any(i.ip == ip for i in self.interfaces)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name} ({self.os_label}) ifs={len(self.interfaces)}>"
