"""Tests for poll-based link-state tracking (the trap backstop)."""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import LinkFailure


def system(traps=False, polling=True):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    label = monitor.watch_path("S1", "N1")
    registry = None
    if traps:
        registry = monitor.enable_trap_listener()
    if polling:
        registry = monitor.enable_oper_status_tracking()
    return build, monitor, label, registry


class TestOperStatusTracking:
    def test_poll_detects_failure_without_traps(self):
        """The S1 leg dies; traps are off; the next poll cycle sees it.

        The failed host's own agent is unreachable, but the *switch* end
        of the connection reports oper-down -- and the connection's
        counter source is S1, so detection must come through the peer's
        status via the same registry mapping.  The S1 side is polled via
        the switch port only when the source resolves there; here the
        host side fails, so we assert on a switch-sourced leg instead:
        S4's connection (counter source: switch port 5).
        """
        build, monitor, label, registry = system(traps=False, polling=True)
        net = build.network
        link = net.host("S4").interfaces[0].link
        LinkFailure(net.sim, link, at=6.0, until=16.0)
        monitor.start()
        net.run(10.0)
        assert len(registry.down_connections()) == 1
        down = registry.down_connections()[0]
        assert down.touches("S4")
        net.run(22.0)
        assert registry.down_connections() == []

    def test_monitored_path_reflects_poll_detected_failure(self):
        build, monitor, label, registry = system(traps=False, polling=True)
        net = build.network
        # Fail the switch<->hub uplink: its counter source is the switch.
        uplink = None
        for conn in build.spec.connections:
            if conn.touches("switch") and conn.touches("hub"):
                uplink = conn
        link = net.switches["switch"].port(8).link
        LinkFailure(net.sim, link, at=6.0, until=20.0)
        monitor.start()
        net.run(10.0)
        report = monitor.current_report(label)
        assert report.available_bps == 0.0
        rules = [m.rule for m in report.connections]
        assert "down" in rules
        net.run(30.0)
        assert monitor.current_report(label).available_bps > 0

    def test_traps_and_polling_compose(self):
        """Both sources enabled share one registry and converge."""
        build, monitor, label, registry = system(traps=True, polling=True)
        assert monitor.enable_trap_listener() is registry or \
            monitor.link_state is registry
        net = build.network
        link = net.host("S4").interfaces[0].link
        LinkFailure(net.sim, link, at=6.0, until=16.0)
        monitor.start()
        net.run(12.0)
        assert len(registry.down_connections()) == 1
        net.run(25.0)
        assert registry.down_connections() == []

    def test_idempotent(self):
        build, monitor, label, registry = system(polling=True)
        assert monitor.enable_oper_status_tracking() is registry

    def test_oper_status_oids_requested(self):
        build, monitor, label, registry = system(polling=True)
        from repro.snmp.mib import IF_OPER_STATUS

        for target in monitor.poller.targets:
            oids = target.oids()
            for index in target.if_indexes:
                assert IF_OPER_STATUS + str(index) in oids

    def test_healthy_network_marks_nothing(self):
        build, monitor, label, registry = system(polling=True)
        monitor.start()
        build.network.run(10.0)
        assert registry.down_connections() == []
        assert registry.events_unmapped == 0
