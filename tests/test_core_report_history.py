"""Unit tests for PathReport math and the measurement history."""

import numpy as np
import pytest

from repro.core.history import MeasurementHistory, PathSeries
from repro.core.report import ConnectionMeasurement, PathReport
from repro.topology.model import ConnectionSpec, InterfaceRef


def measurement(capacity, used, rule="switch", conn_tag="x"):
    conn = ConnectionSpec(
        InterfaceRef(f"a{conn_tag}", "e"), InterfaceRef(f"b{conn_tag}", "e")
    )
    return ConnectionMeasurement(
        connection=conn,
        capacity_bps=capacity,
        used_bps=used,
        source=conn.end_a,
        rule=rule,
    )


def report(time=0.0, measurements=(), name=None):
    return PathReport(
        src="S", dst="D", time=time, connections=tuple(measurements), name=name
    )


class TestConnectionMeasurement:
    def test_available_floor_zero(self):
        m = measurement(capacity=100.0, used=150.0)
        assert m.available_bps == 0.0

    def test_utilization_capped(self):
        assert measurement(100.0, 150.0).utilization == 1.0
        assert measurement(100.0, 25.0).utilization == 0.25

    def test_unmeasured_flag(self):
        m = measurement(100.0, 0.0, rule="unmeasured")
        assert not m.measured


class TestPathReport:
    def test_available_is_min(self):
        r = report(measurements=[measurement(1000, 100, conn_tag="1"),
                                 measurement(500, 300, conn_tag="2")])
        assert r.available_bps == 200.0

    def test_used_is_max_of_measured(self):
        r = report(measurements=[
            measurement(1000, 100, conn_tag="1"),
            measurement(1000, 700, conn_tag="2"),
            measurement(1000, 0, rule="unmeasured", conn_tag="3"),
        ])
        assert r.used_bps == 700.0

    def test_bottleneck_identification(self):
        slow = measurement(500, 450, conn_tag="slow")
        fast = measurement(10000, 100, conn_tag="fast")
        r = report(measurements=[fast, slow])
        assert r.bottleneck is slow

    def test_empty_path_between_distinct_hosts_rejected(self):
        with pytest.raises(ValueError):
            report(measurements=[])

    def test_self_path_allowed(self):
        r = PathReport(src="S", dst="S", time=0.0, connections=())
        assert r.available_bps == float("inf")
        assert r.used_bps == 0.0
        assert r.bottleneck is None

    def test_label_uses_name_override(self):
        r = report(measurements=[measurement(1, 0)], name="telemetry")
        assert r.label == "telemetry"
        r2 = report(measurements=[measurement(1, 0)])
        assert r2.label == "S<->D"

    def test_summary_renders(self):
        text = report(measurements=[measurement(1000, 100)]).summary()
        assert "S<->D" in text and "bottleneck" in text


class TestPathSeries:
    def test_append_and_extract(self):
        series = PathSeries("p")
        for t, used in [(1.0, 10.0), (2.0, 20.0)]:
            series.append(report(time=t, measurements=[measurement(100, used)]))
        np.testing.assert_allclose(series.times(), [1.0, 2.0])
        np.testing.assert_allclose(series.used(), [10.0, 20.0])
        np.testing.assert_allclose(series.available(), [90.0, 80.0])

    def test_out_of_order_rejected(self):
        series = PathSeries("p")
        series.append(report(time=5.0, measurements=[measurement(1, 0)]))
        with pytest.raises(ValueError):
            series.append(report(time=4.0, measurements=[measurement(1, 0)]))

    def test_between_window(self):
        series = PathSeries("p")
        for t in (1.0, 2.0, 3.0, 4.0):
            series.append(report(time=t, measurements=[measurement(1, 0)]))
        sub = series.between(2.0, 4.0)
        np.testing.assert_allclose(sub.times(), [2.0, 3.0])

    def test_custom_extractor(self):
        series = PathSeries("p")
        series.append(report(time=1.0, measurements=[measurement(100, 40)]))
        times, values = series.series(lambda r: r.bottleneck.utilization)
        assert values[0] == pytest.approx(0.4)

    def test_latest(self):
        series = PathSeries("p")
        assert series.latest() is None
        series.append(report(time=1.0, measurements=[measurement(1, 0)]))
        assert series.latest().time == 1.0


class TestMeasurementHistory:
    def test_routing_by_label(self):
        history = MeasurementHistory()
        history.append(report(time=1.0, measurements=[measurement(1, 0)], name="a"))
        history.append(report(time=1.0, measurements=[measurement(1, 0)], name="b"))
        history.append(report(time=2.0, measurements=[measurement(1, 0)], name="a"))
        assert history.labels() == ["a", "b"]
        assert len(history.series("a")) == 2
        assert "a" in history and "zzz" not in history

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            MeasurementHistory().series("missing")
