"""repro -- reproduction of *Monitoring Network QoS in a Dynamic Real-Time
System* (Chen, Tjaden, Welch, Bruggeman, Tong, Pfarr; IPPS/WPDRTS 2002).

The paper adds SNMP-based network bandwidth monitoring to the DeSiDeRaTa
resource-management middleware: topology comes from a specification
language, MIB-II counters are polled periodically, and per-path available
bandwidth is computed with distinct rules for switch- and hub-connected
segments.

Package layout
--------------
- :mod:`repro.core`        -- the monitor itself (poller, path traversal,
  bandwidth rules, reports) plus the paper's future-work extensions
  (latency, discovery, distributed monitoring).
- :mod:`repro.simnet`      -- packet-level LAN simulator standing in for
  the paper's physical testbed.
- :mod:`repro.snmp`        -- from-scratch SNMPv1/v2c (BER codec, MIB-II,
  agent, manager) running over the simulated network.
- :mod:`repro.spec`        -- the specification-language extension.
- :mod:`repro.topology`    -- shared topology model and graph.
- :mod:`repro.rm`          -- miniature DeSiDeRaTa middleware consuming
  monitor reports (QoS detection, diagnosis, reallocation advice).
- :mod:`repro.analysis`    -- the paper's accuracy statistics.
- :mod:`repro.experiments` -- drivers for Figures 4-6 and Table 2.

Quick start
-----------
>>> from repro import Scenario, StepSchedule, KBPS
>>> scenario = Scenario(seed=1)
>>> label = scenario.watch("S1", "N1")
>>> scenario.add_load("L", "N1", StepSchedule.pulse(10.0, 40.0, 200 * KBPS))
'L==>N1'
>>> scenario.run(60.0)
"""

from repro.core.monitor import NetworkMonitor
from repro.core.report import PathReport
from repro.core.traversal import find_path
from repro.experiments.scenarios import Scenario, SeriesPair
from repro.experiments.testbed import TESTBED_SPEC_TEXT, build_testbed
from repro.simnet.network import Network
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import parse_file, parse_spec

__version__ = "1.0.0"

__all__ = [
    "KBPS",
    "Network",
    "NetworkMonitor",
    "PathReport",
    "Scenario",
    "SeriesPair",
    "StaircaseLoad",
    "StepSchedule",
    "TESTBED_SPEC_TEXT",
    "build_network",
    "build_testbed",
    "find_path",
    "parse_file",
    "parse_spec",
    "__version__",
]
