"""Tests for application specs and the closed adaptation loop."""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import TESTBED_SPEC_TEXT
from repro.rm.applications import ApplicationRuntime
from repro.rm.detector import QosState
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.spec.builder import build_network
from repro.spec.parser import ParseError, parse_spec
from repro.spec.validate import validate_spec
from repro.spec.writer import write_spec
from repro.topology.model import AppFlowSpec, ApplicationSpec, TopologyError

APP_SUFFIX = """
    application sensor  { on S1; sends to tracker rate 2400 Kbps; }
    application tracker { on N1; }
}
"""


def spec_with_apps():
    text = TESTBED_SPEC_TEXT.rstrip()[:-1] + APP_SUFFIX
    return parse_spec(text)


class TestApplicationSpec:
    def test_parse_application_blocks(self):
        spec = spec_with_apps()
        sensor = spec.application("sensor")
        assert sensor.host == "S1"
        assert sensor.flows[0].dst_app == "tracker"
        assert sensor.flows[0].rate_bps == 2400e3
        assert spec.application("tracker").flows == []

    def test_missing_placement_rejected(self):
        with pytest.raises(ParseError):
            parse_spec("network topology t { host A { } application x { } }")

    def test_self_flow_rejected(self):
        with pytest.raises(TopologyError):
            ApplicationSpec("x", "A", flows=[AppFlowSpec("x", 1.0)])

    def test_duplicate_flow_rejected(self):
        with pytest.raises(TopologyError):
            ApplicationSpec(
                "x", "A", flows=[AppFlowSpec("y", 1.0), AppFlowSpec("y", 2.0)]
            )

    def test_validation_catches_unknown_host(self):
        text = """
        network topology t {
            host A { }
            application x { on ghost; }
        }
        """
        issues = validate_spec(parse_spec(text), strict=False)
        assert any("unknown host 'ghost'" in i.message for i in issues)

    def test_validation_catches_unknown_peer(self):
        text = """
        network topology t {
            host A { }
            application x { on A; sends to phantom rate 1 Kbps; }
        }
        """
        issues = validate_spec(parse_spec(text), strict=False)
        assert any("unknown application 'phantom'" in i.message for i in issues)

    def test_validation_rejects_device_placement(self):
        text = """
        network topology t {
            host A { } switch sw { ports 2; }
            application x { on sw; }
        }
        """
        issues = validate_spec(parse_spec(text), strict=False)
        assert any("not a host" in i.message for i in issues)

    def test_writer_round_trips_applications(self):
        spec = spec_with_apps()
        again = parse_spec(write_spec(spec))
        assert again.application("sensor").flows[0].rate_bps == 2400e3
        assert again.application("tracker").host == "N1"


def runtime(auto_move=False, headroom=1.3):
    spec = spec_with_apps()
    build = build_network(spec)
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    rt = ApplicationRuntime(build, monitor, auto_move=auto_move, headroom=headroom)
    return build, monitor, rt


class TestRuntimeDeployment:
    def test_flows_deployed_as_traffic(self):
        build, monitor, rt = runtime()
        monitor.start()
        rt.start()
        net = build.network
        net.run(20.0)
        # 2400 Kb/s = 300 KB/s must be arriving at N1's discard sink.
        received = net.host("N1").discard.octets
        assert received == pytest.approx(300_000 * 20, rel=0.1)

    def test_flow_watched_under_its_label(self):
        build, monitor, rt = runtime()
        rt.start()
        assert "sensor->tracker" in monitor.watched_paths()
        assert rt.flow_labels() == ["sensor->tracker"]

    def test_requirement_derived_from_rate(self):
        build, monitor, rt = runtime(headroom=1.5)
        rt.start()
        flow = rt._flows["sensor->tracker"]
        assert flow.requirement.min_available_bps == pytest.approx(
            2400e3 / 8 * 1.5
        )

    def test_healthy_flow_stays_ok(self):
        build, monitor, rt = runtime()
        monitor.start()
        rt.start()
        build.network.run(30.0)
        assert rt.state_of("sensor->tracker") is QosState.OK
        assert rt.moves == []

    def test_double_start_rejected(self):
        build, monitor, rt = runtime()
        rt.start()
        with pytest.raises(TopologyError):
            rt.start()

    def test_spec_without_applications_rejected(self):
        spec = parse_spec(TESTBED_SPEC_TEXT)
        build = build_network(spec)
        monitor = NetworkMonitor(build, "L")
        with pytest.raises(TopologyError):
            ApplicationRuntime(build, monitor)

    def test_bad_headroom_rejected(self):
        spec = spec_with_apps()
        build = build_network(spec)
        monitor = NetworkMonitor(build, "L")
        with pytest.raises(TopologyError):
            ApplicationRuntime(build, monitor, headroom=0.5)


class TestManualMove:
    def test_move_rebinds_traffic_and_watch(self):
        build, monitor, rt = runtime()
        monitor.start()
        rt.start()
        net = build.network
        net.run(10.0)
        before_s2 = net.host("S2").discard.octets
        rt.move("tracker", "S2", reason="test")
        net.run(30.0)
        assert net.host("S2").discard.octets - before_s2 > 100_000
        assert rt.placement_of("tracker") == "S2"
        assert "sensor->tracker" in monitor.watched_paths()
        assert len(rt.moves) == 1

    def test_move_to_same_host_is_noop(self):
        build, monitor, rt = runtime()
        rt.start()
        rt.move("tracker", "N1")
        assert rt.moves == []

    def test_move_unknown_app_rejected(self):
        build, monitor, rt = runtime()
        with pytest.raises(TopologyError):
            rt.move("ghost", "S2")

    def test_move_to_device_rejected(self):
        build, monitor, rt = runtime()
        with pytest.raises(TopologyError):
            rt.move("tracker", "switch")


class TestAdaptationLoop:
    def test_violation_triggers_automatic_move_and_recovery(self):
        build, monitor, rt = runtime(auto_move=True)
        net = build.network
        # Interference saturates the hub where tracker lives.
        StaircaseLoad(
            net.host("L"), net.ip_of("N2"), StepSchedule.pulse(20.0, 80.0, 800 * KBPS)
        ).start()
        monitor.start()
        rt.start()
        net.run(100.0)
        assert len(rt.moves) == 1
        move = rt.moves[0]
        assert move.app == "tracker"
        assert move.from_host == "N1"
        # Moved to a switch host, never onto another occupied placement.
        assert move.to_host not in ("N1", "N2", "S1")
        assert rt.state_of("sensor->tracker") is QosState.OK
        # The flow kept running at its declared rate on the new host.
        new_home = build.network.host(move.to_host)
        assert new_home.discard.octets > 1_000_000

    def test_no_move_without_auto_move(self):
        build, monitor, rt = runtime(auto_move=False)
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N2"), StepSchedule.pulse(20.0, 60.0, 800 * KBPS)
        ).start()
        monitor.start()
        rt.start()
        net.run(70.0)
        assert rt.moves == []
        assert any(e.state is QosState.VIOLATED for e in rt.events)
        assert rt.diagnoses, "diagnosis should still run"

    def test_move_cooldown_limits_thrash(self):
        build, monitor, rt = runtime(auto_move=True)
        rt.move_cooldown = 1000.0
        net = build.network
        StaircaseLoad(
            net.host("L"), net.ip_of("N2"), StepSchedule.pulse(10.0, 90.0, 800 * KBPS)
        ).start()
        monitor.start()
        rt.start()
        net.run(100.0)
        assert len(rt.moves) <= 1
