"""Unit tests for load schedules and traffic generators."""

import pytest

from repro.simnet.network import Network
from repro.simnet.trafficgen import (
    KBPS,
    BackgroundChatter,
    PoissonLoad,
    StaircaseLoad,
    StepSchedule,
    TrafficError,
)


class TestStepSchedule:
    def test_rate_before_first_step_is_zero(self):
        sched = StepSchedule([(10.0, 100.0)])
        assert sched.rate_at(5.0) == 0.0

    def test_rate_at_breakpoint_is_new_level(self):
        sched = StepSchedule([(10.0, 100.0), (20.0, 0.0)])
        assert sched.rate_at(10.0) == 100.0
        assert sched.rate_at(19.999) == 100.0
        assert sched.rate_at(20.0) == 0.0

    def test_monotonic_times_required(self):
        with pytest.raises(TrafficError):
            StepSchedule([(10.0, 1.0), (5.0, 2.0)])

    def test_duplicate_times_rejected(self):
        with pytest.raises(TrafficError):
            StepSchedule([(10.0, 1.0), (10.0, 2.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(TrafficError):
            StepSchedule([(0.0, -1.0)])

    def test_staircase_builder_matches_paper_shape(self):
        sched = StepSchedule.staircase(
            start=0.0, initial_rate=100.0, increment=100.0, hold=60.0, n_steps=5, end=360.0
        )
        assert sched.rate_at(30.0) == 100.0
        assert sched.rate_at(90.0) == 200.0
        assert sched.rate_at(250.0) == 500.0
        assert sched.rate_at(360.0) == 0.0

    def test_staircase_end_must_follow_levels(self):
        with pytest.raises(TrafficError):
            StepSchedule.staircase(0.0, 100.0, 100.0, 60.0, 5, end=100.0)

    def test_pulse_builder(self):
        sched = StepSchedule.pulse(20.0, 60.0, 200.0)
        assert sched.rate_at(19.9) == 0.0
        assert sched.rate_at(40.0) == 200.0
        assert sched.rate_at(60.0) == 0.0

    def test_pulse_requires_ordering(self):
        with pytest.raises(TrafficError):
            StepSchedule.pulse(60.0, 20.0, 1.0)

    def test_breakpoints_exposed(self):
        sched = StepSchedule([(1.0, 5.0), (2.0, 0.0)])
        assert sched.breakpoints == [1.0, 2.0]
        assert sched.end_time == 2.0


def loaded_pair(schedule, payload=1000):
    net = Network()
    a = net.add_host("A")
    b = net.add_host("B")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(a, sw)
    net.connect(b, sw)
    net.announce_hosts()
    load = StaircaseLoad(a, b.primary_ip, schedule, payload_size=payload)
    load.start()
    return net, a, b, load


class TestStaircaseLoad:
    def test_payload_rate_achieved(self):
        net, a, b, load = loaded_pair(StepSchedule([(0.0, 100_000.0), (10.0, 0.0)]))
        net.run(12.0)
        # 100 KB/s for 10 s = 1 MB of payload, within one datagram.
        assert load.payload_octets_sent == pytest.approx(1_000_000, abs=2000)
        assert b.discard.octets == load.payload_octets_sent

    def test_wire_overhead_matches_headers(self):
        net, a, b, load = loaded_pair(
            StepSchedule([(0.0, 100_000.0), (10.0, 0.0)]), payload=1472
        )
        net.run(12.0)
        wire = a.interfaces[0].counters.out_octets - 46  # minus announcement
        assert wire / load.payload_octets_sent == pytest.approx(1500 / 1472, rel=1e-3)

    def test_rate_change_repaces(self):
        net, a, b, load = loaded_pair(
            StepSchedule([(0.0, 50_000.0), (5.0, 200_000.0), (10.0, 0.0)])
        )
        net.run(5.0)
        low_phase = b.discard.octets
        net.run(10.5)
        high_phase = b.discard.octets - low_phase
        assert low_phase == pytest.approx(250_000, rel=0.05)
        assert high_phase == pytest.approx(1_000_000, rel=0.05)

    def test_zero_rate_sends_nothing(self):
        net, a, b, load = loaded_pair(StepSchedule([(100.0, 1000.0)]))
        net.run(50.0)
        assert load.datagrams_sent == 0

    def test_stop_silences_immediately(self):
        net, a, b, load = loaded_pair(StepSchedule([(0.0, 100_000.0)]))
        net.run(2.0)
        sent = load.datagrams_sent
        load.stop()
        net.run(10.0)
        assert load.datagrams_sent == sent

    def test_double_start_rejected(self):
        net, a, b, load = loaded_pair(StepSchedule([(0.0, 1000.0)]))
        with pytest.raises(TrafficError):
            load.start()

    def test_bad_payload_size(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        with pytest.raises(TrafficError):
            StaircaseLoad(a, b.primary_ip, StepSchedule([(0.0, 1.0)]), payload_size=0)


class TestPoissonLoad:
    def test_mean_rate_approximated(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(a, sw)
        net.connect(b, sw)
        net.announce_hosts()
        PoissonLoad(a, b.primary_ip, mean_rate_bps=100_000.0, seed=7, end=60.0)
        net.run(61.0)
        assert b.discard.octets == pytest.approx(6_000_000, rel=0.15)

    def test_seeded_determinism(self):
        counts = []
        for _ in range(2):
            net = Network()
            a = net.add_host("A")
            b = net.add_host("B")
            sw = net.add_switch("sw", 4, managed=False)
            net.connect(a, sw)
            net.connect(b, sw)
            net.announce_hosts()
            load = PoissonLoad(a, b.primary_ip, 50_000.0, seed=42, end=20.0)
            net.run(21.0)
            counts.append(load.datagrams_sent)
        assert counts[0] == counts[1] > 0

    def test_bad_rate_rejected(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        with pytest.raises(TrafficError):
            PoissonLoad(a, b.primary_ip, 0.0)


class TestBackgroundChatter:
    def chatter_net(self, rate=800.0, seed=0):
        net = Network()
        hosts = [net.add_host(f"H{i}") for i in range(4)]
        sw = net.add_switch("sw", 6, managed=False)
        for h in hosts:
            net.connect(h, sw)
        net.announce_hosts()
        chatter = BackgroundChatter(hosts, aggregate_rate_bps=rate, seed=seed)
        return net, hosts, chatter

    def test_aggregate_rate_roughly_met(self):
        net, hosts, chatter = self.chatter_net(rate=1000.0)
        net.run(120.0)
        rate = chatter.octets_sent / 120.0
        assert rate == pytest.approx(1000.0, rel=0.25)

    def test_deterministic_for_seed(self):
        n1 = self.chatter_net(seed=5)
        n1[0].run(30.0)
        n2 = self.chatter_net(seed=5)
        n2[0].run(30.0)
        assert n1[2].datagrams_sent == n2[2].datagrams_sent

    def test_stop(self):
        net, hosts, chatter = self.chatter_net()
        net.run(10.0)
        chatter.stop()
        count = chatter.datagrams_sent
        net.run(30.0)
        assert chatter.datagrams_sent == count

    def test_needs_two_hosts(self):
        net = Network()
        a = net.add_host("A")
        with pytest.raises(TrafficError):
            BackgroundChatter([a])

    def test_broadcast_fraction_reaches_everyone(self):
        net, hosts, chatter = self.chatter_net()
        net.run(60.0)
        # Every host should have seen some broadcast chatter.
        assert all(h.udp_no_port > 0 for h in hosts)


class TestDscpMarking:
    def test_dscp_marks_every_datagram(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(a, sw)
        net.connect(b, sw)
        net.announce_hosts()
        load = StaircaseLoad(
            a, b.primary_ip, StepSchedule([(0.0, 100_000.0), (5.0, 0.0)]),
            dscp=46,
        )
        load.start()
        net.run(6.0)
        tos_out = a.interfaces[0].tos_out_octets
        assert tos_out.get(46 << 2, 0) > 0
        # Everything the generator sent is accounted under its mark.
        assert tos_out.get(46 << 2) == sum(
            octets for tos, octets in tos_out.items() if tos != 0
        )
        assert b.interfaces[0].tos_in_octets.get(46 << 2, 0) > 0

    def test_default_is_best_effort(self):
        net = Network()
        a = net.add_host("A")
        b = net.add_host("B")
        sw = net.add_switch("sw", 4, managed=False)
        net.connect(a, sw)
        net.connect(b, sw)
        net.announce_hosts()
        StaircaseLoad(
            a, b.primary_ip, StepSchedule([(0.0, 50_000.0), (3.0, 0.0)])
        ).start()
        net.run(4.0)
        assert set(a.interfaces[0].tos_out_octets) <= {0}

    def test_dscp_out_of_range_rejected(self):
        net = Network()
        a = net.add_host("A")
        with pytest.raises(TrafficError):
            StaircaseLoad(a, "10.0.0.2", StepSchedule([(0.0, 1.0)]), dscp=64)
        with pytest.raises(TrafficError):
            PoissonLoad(a, "10.0.0.2", mean_rate_bps=1000.0, dscp=-1)
