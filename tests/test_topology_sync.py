"""Live topology re-convergence: the discovery-driven sync loop.

The tentpole guarantee under test: when a redundant uplink dies, the
monitor's active view follows the spanning tree onto the backup link
without anyone calling ``invalidate_paths()`` by hand -- and when
nothing changes, the topology epoch holds perfectly still, so the
incremental dataflow's memos survive every sync round.
"""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.simnet.faults import AgentOutage, LinkFailure
from repro.spec.builder import build_network
from repro.spec.parser import parse_spec
from repro.stream.events import TOPOLOGY_PAIR, PathRerouted, TopologyChanged
from repro.telemetry.events import PATH_REROUTED, TOPOLOGY_CHANGED

POLL = 2.0

REDUNDANT_PAIR = """
network topology redundant {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    switch sw1 { snmp community "public"; ports 4; stp "on"; }
    switch sw2 { snmp community "public"; ports 4; stp "on"; }
    connect A.eth0 <-> sw1.port1;
    connect B.eth0 <-> sw2.port1;
    connect sw1.port3 <-> sw2.port3;
    connect sw1.port4 <-> sw2.port4;
}
"""


def build_redundant():
    return build_network(parse_spec(REDUNDANT_PAIR))


def start_monitor(build, **sync_options):
    monitor = NetworkMonitor(build, "A", poll_interval=POLL, poll_jitter=0.0)
    monitor.enable_topology_sync(**sync_options)
    monitor.enable_oper_status_tracking()
    monitor.watch_path("A", "B")
    build.network.announce_hosts(at=2.0)
    monitor.start(at=2.5)
    return monitor


def uplink_conns(monitor):
    return [
        conn
        for conn in monitor.spec.connections
        if {conn.end_a.node, conn.end_b.node} == {"sw1", "sw2"}
    ]


class TestStpSync:
    def test_blocked_uplink_synced_from_port_states(self):
        build = build_redundant()
        monitor = start_monitor(build)
        build.network.sim.run(until=6.0)
        blocked = monitor.graph.blocked_connections()
        # STP blocks exactly one of the two parallel uplinks; the sync
        # loop mirrors that into the graph's active view.
        assert len(blocked) == 1
        assert blocked[0] in uplink_conns(monitor)
        # The measured path crosses the forwarding uplink only.
        path = monitor.path_of("A<->B")
        assert blocked[0] not in path
        assert any(conn in uplink_conns(monitor) for conn in path)

    def test_epoch_stable_on_identical_view(self):
        build = build_redundant()
        monitor = start_monitor(build)
        sim = build.network.sim
        sim.run(until=6.0)
        epoch = monitor.graph.topology_epoch
        rounds = monitor.stats()["topology_rounds"]
        # Many more sync rounds (including a full discovery round) on an
        # unchanged network: the epoch must not move at all.
        sim.run(until=20.0)
        assert monitor.stats()["topology_rounds"] >= rounds + 5
        assert monitor.stats()["topology_full_rounds"] >= 1
        assert monitor.graph.topology_epoch == epoch
        assert monitor.stats()["topology_changes"] == 1  # initial block only

    def test_reports_carry_redundancy_flag(self):
        build = build_redundant()
        monitor = start_monitor(build)
        build.network.sim.run(until=8.0)
        report = monitor.current_report("A<->B")
        assert report.redundant  # two physical uplinks protect the pair
        # A pair on the same switch arm loses nothing from one cut...
        # (single-homed hosts are never redundant)
        assert not monitor.current_report("A<->B").unavailable


class TestFailover:
    def test_uplink_failure_reroutes_watch(self):
        build = build_redundant()
        net = build.network
        monitor = start_monitor(build)
        net.sim.run(until=8.9)
        before = monitor.path_of("A<->B")
        active = next(c for c in uplink_conns(monitor) if c in before)
        backup = next(c for c in uplink_conns(monitor) if c not in before)
        LinkFailure.between(net, "sw1", "sw2", at=9.0,
                            index=uplink_conns(monitor).index(active))
        # Recovery bound: re-converged and re-resolved within 3 cycles.
        net.sim.run(until=9.0 + 3 * POLL)
        after = monitor.path_of("A<->B")
        assert backup in after and active not in after
        stats = monitor.stats()
        assert stats["path_reroutes"] == 1
        assert monitor.telemetry.events.count(PATH_REROUTED) == 1
        assert monitor.telemetry.events.count(TOPOLOGY_CHANGED) >= 2
        # The report on the rerouted path is healthy, not wedged on the
        # memo of the dead path.
        report = monitor.current_report("A<->B")
        assert not report.unavailable
        assert report.available_bps > 0

    def test_rerouted_report_stays_fresh_after_failover(self):
        build = build_redundant()
        net = build.network
        monitor = start_monitor(build)
        reports = []
        monitor.subscribe(reports.append)
        net.sim.run(until=8.9)
        LinkFailure.between(net, "sw1", "sw2", at=9.0, index=0)
        net.sim.run(until=24.0)
        settled = [r for r in reports if r.time >= 9.0 + 3 * POLL]
        assert settled
        assert all(r.status == "fresh" for r in settled)
        assert all(r.redundant for r in reports)  # physical view: still 2 paths


class TestStreamEvents:
    def test_topology_and_reroute_events_reach_wildcard_subscriber(self):
        build = build_redundant()
        net = build.network
        monitor = NetworkMonitor(build, "A", poll_interval=POLL, poll_jitter=0.0)
        monitor.enable_topology_sync()
        monitor.enable_oper_status_tracking()
        monitor.watch_path("A", "B")
        stream = monitor.enable_streaming(significance=False)
        sub = stream.manager.subscribe("ops")  # wildcard
        net.announce_hosts(at=2.0)
        monitor.start(at=2.5)
        net.sim.run(until=8.9)
        LinkFailure.between(net, "sw1", "sw2", at=9.0, index=0)
        net.sim.run(until=16.0)
        events = sub.drain()
        topo = [e for e in events if isinstance(e, TopologyChanged)]
        rerouted = [e for e in events if isinstance(e, PathRerouted)]
        assert topo and topo[0].pair == TOPOLOGY_PAIR
        assert any(e.reason == "stp" for e in topo)
        assert len(rerouted) == 1
        assert rerouted[0].old_path != rerouted[0].new_path
        assert rerouted[0].watch == "A<->B"


class TestPartialOutage:
    def test_unreachable_agents_keep_last_known_attachments(self):
        build = build_redundant()
        net = build.network
        monitor = start_monitor(build, full_every=2)
        sim = net.sim
        # Full rounds land every second sync round (5.5s, 9.5s, ...).
        sim.run(until=8.0)
        sync = monitor.topology_sync
        baseline = sync.attachments()
        assert baseline == {"A": ("sw1", 1), "B": ("sw2", 1)}
        epoch = monitor.graph.topology_epoch
        # B's agent dies across the next two full rounds.  Its absence
        # from the discovered picture means "no data", not "detached":
        # the attachment view and the topology epoch must hold still.
        AgentOutage(sim, build.agents["B"], at=8.5, until=17.5)
        sim.run(until=17.0)
        assert sync.attachments() == baseline
        assert monitor.graph.topology_epoch == epoch
        sim.run(until=24.0)  # agent back; still no change
        assert sync.attachments() == baseline
        assert monitor.graph.topology_epoch == epoch

    def test_unreachable_switch_keeps_stp_and_attachments(self):
        build = build_redundant()
        net = build.network
        monitor = start_monitor(build, full_every=2)
        sim = net.sim
        sim.run(until=8.0)
        sync = monitor.topology_sync
        baseline = sync.attachments()
        blocked = list(monitor.graph.blocked_connections())
        epoch = monitor.graph.topology_epoch
        # The root switch's agent goes quiet (management-plane outage --
        # the data plane keeps forwarding).  Last-known port states and
        # attachments must survive the gap untouched.
        AgentOutage(sim, build.agents["sw1"], at=8.5, until=17.5)
        sim.run(until=17.0)
        assert sync.attachments() == baseline
        assert monitor.graph.blocked_connections() == blocked
        assert monitor.graph.topology_epoch == epoch


class TestSyncPlumbing:
    def test_stats_keys_resolve_without_sync(self):
        build = build_redundant()
        monitor = NetworkMonitor(build, "A", poll_jitter=0.0)
        stats = monitor.stats()
        for key in (
            "topology_rounds",
            "topology_full_rounds",
            "topology_changes",
            "path_reroutes",
            "blocked_connections",
        ):
            assert stats[key] == 0

    def test_enable_is_idempotent(self):
        build = build_redundant()
        monitor = NetworkMonitor(build, "A", poll_jitter=0.0)
        sync = monitor.enable_topology_sync(full_every=3)
        assert monitor.enable_topology_sync() is sync

    def test_full_every_validates(self):
        build = build_redundant()
        monitor = NetworkMonitor(build, "A", poll_jitter=0.0)
        with pytest.raises(ValueError):
            monitor.enable_topology_sync(full_every=0)

    def test_both_uplink_ends_polled(self):
        build = build_redundant()
        monitor = NetworkMonitor(build, "A", poll_jitter=0.0)
        targets = {t.node: t.if_indexes for t in monitor.poller.targets}
        # The counter source picks one switch per uplink; the far ends
        # must be polled too so link state is observable from both sides.
        assert 3 in targets["sw1"] and 4 in targets["sw1"]
        assert 3 in targets["sw2"] and 4 in targets["sw2"]
