"""Unit tests for packets, header accounting, fragmentation, reassembly."""

import pytest

from repro.simnet.address import IPv4Address, MacAddress
from repro.simnet.packet import (
    IPV4_HEADER_SIZE,
    UDP_HEADER_SIZE,
    EthernetFrame,
    IPPacket,
    PacketError,
    ReassemblyBuffer,
    UDPDatagram,
    fragment_ip_packet,
)

SRC = IPv4Address("10.0.0.1")
DST = IPv4Address("10.0.0.2")


def make_packet(payload_size: int) -> IPPacket:
    return IPPacket(src=SRC, dst=DST, payload=UDPDatagram(1000, 9, payload_size=payload_size))


class TestUDPDatagram:
    def test_size_includes_header(self):
        assert UDPDatagram(1, 2, payload_size=100).size == 100 + UDP_HEADER_SIZE

    def test_bytes_payload_sets_size(self):
        d = UDPDatagram(1, 2, payload=b"hello")
        assert d.payload_size == 5
        assert d.size == 5 + UDP_HEADER_SIZE

    def test_conflicting_sizes_rejected(self):
        with pytest.raises(PacketError):
            UDPDatagram(1, 2, payload=b"hello", payload_size=3)

    def test_matching_explicit_size_ok(self):
        assert UDPDatagram(1, 2, payload=b"hi", payload_size=2).payload_size == 2

    def test_missing_payload_rejected(self):
        with pytest.raises(PacketError):
            UDPDatagram(1, 2)

    @pytest.mark.parametrize("port", [-1, 65536])
    def test_bad_ports_rejected(self, port):
        with pytest.raises(PacketError):
            UDPDatagram(port, 9, payload_size=1)


class TestIPPacket:
    def test_size_stacks_headers(self):
        packet = make_packet(100)
        assert packet.size == 100 + UDP_HEADER_SIZE + IPV4_HEADER_SIZE

    def test_paper_header_overhead_is_about_two_percent(self):
        """1472-byte payload + 28 header bytes = the paper's ~2 % figure."""
        packet = make_packet(1472)
        overhead = packet.size / 1472
        assert 1.018 < overhead < 1.020

    def test_fragment_ids_unique(self):
        assert make_packet(10).fragment_id != make_packet(10).fragment_id

    def test_non_positive_ttl_rejected(self):
        with pytest.raises(PacketError):
            IPPacket(src=SRC, dst=DST, payload=UDPDatagram(1, 2, payload_size=1), ttl=0)

    def test_needs_payload_or_fragment_size(self):
        with pytest.raises(PacketError):
            IPPacket(src=SRC, dst=DST)


class TestEthernetFrame:
    def test_default_no_l2_overhead(self):
        packet = make_packet(100)
        frame = EthernetFrame(MacAddress(1), MacAddress(2), packet)
        assert frame.size == packet.size

    def test_optional_l2_overhead(self):
        packet = make_packet(100)
        frame = EthernetFrame(MacAddress(1), MacAddress(2), packet, l2_overhead=18)
        assert frame.size == packet.size + 18

    def test_broadcast_and_unicast_flags(self):
        from repro.simnet.address import BROADCAST_MAC

        packet = make_packet(1)
        bcast = EthernetFrame(MacAddress(1), BROADCAST_MAC, packet)
        ucast = EthernetFrame(MacAddress(1), MacAddress(2), packet)
        assert bcast.is_broadcast and not bcast.is_unicast
        assert ucast.is_unicast and not ucast.is_broadcast


class TestFragmentation:
    def test_small_packet_untouched(self):
        packet = make_packet(100)
        assert fragment_ip_packet(packet, 1500) == [packet]

    def test_fragment_sizes_respect_mtu(self):
        packet = make_packet(4000)
        frags = fragment_ip_packet(packet, 1500)
        assert len(frags) == 3
        assert all(f.size <= 1500 for f in frags)

    def test_fragment_data_conserved(self):
        packet = make_packet(4000)
        frags = fragment_ip_packet(packet, 1500)
        assert sum(f.transport_size for f in frags) == packet.transport_size

    def test_offsets_contiguous(self):
        frags = fragment_ip_packet(make_packet(5000), 1500)
        offset = 0
        for frag in frags:
            assert frag.fragment_offset == offset
            offset += frag.transport_size
        assert frags[-1].more_fragments is False
        assert all(f.more_fragments for f in frags[:-1])

    def test_all_fragments_share_id(self):
        frags = fragment_ip_packet(make_packet(5000), 1500)
        assert len({f.fragment_id for f in frags}) == 1

    def test_intermediate_data_multiple_of_eight(self):
        frags = fragment_ip_packet(make_packet(5000), 1500)
        for frag in frags[:-1]:
            assert frag.transport_size % 8 == 0

    def test_refragmenting_rejected(self):
        frags = fragment_ip_packet(make_packet(5000), 1500)
        with pytest.raises(PacketError):
            fragment_ip_packet(frags[0], 500)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(PacketError):
            fragment_ip_packet(make_packet(100), IPV4_HEADER_SIZE + 8)


class TestReassembly:
    def test_unfragmented_passthrough(self):
        buf = ReassemblyBuffer()
        packet = make_packet(100)
        assert buf.add(packet, now=0.0) is packet

    def test_in_order_reassembly(self):
        buf = ReassemblyBuffer()
        packet = make_packet(4000)
        frags = fragment_ip_packet(packet, 1500)
        results = [buf.add(f, now=0.0) for f in frags]
        assert results[:-1] == [None, None]
        final = results[-1]
        assert final is not None
        assert final.payload is packet.payload
        assert not final.is_fragment

    def test_out_of_order_reassembly(self):
        buf = ReassemblyBuffer()
        packet = make_packet(4000)
        frags = fragment_ip_packet(packet, 1500)
        assert buf.add(frags[2], now=0.0) is None
        assert buf.add(frags[0], now=0.0) is None
        final = buf.add(frags[1], now=0.0)
        assert final is not None and final.payload is packet.payload

    def test_interleaved_packets(self):
        buf = ReassemblyBuffer()
        p1, p2 = make_packet(2000), make_packet(2000)  # 2 fragments each
        f1 = fragment_ip_packet(p1, 1500)
        f2 = fragment_ip_packet(p2, 1500)
        assert len(f1) == len(f2) == 2
        assert buf.add(f1[0], 0.0) is None
        assert buf.add(f2[0], 0.0) is None
        done1 = buf.add(f1[-1], 0.0)
        done2 = buf.add(f2[-1], 0.0)
        assert done1.payload is p1.payload
        assert done2.payload is p2.payload

    def test_expiry_discards_stale_groups(self):
        buf = ReassemblyBuffer(timeout=10.0)
        frags = fragment_ip_packet(make_packet(4000), 1500)
        assert buf.add(frags[0], now=0.0) is None
        assert buf.pending_groups() == 1
        # A later packet triggers expiry of the stale group.
        other = make_packet(100)
        buf.add(other, now=20.0)
        frag2 = fragment_ip_packet(make_packet(200), 150)
        buf.add(frag2[0], now=20.0)
        assert buf.expired_groups == 1


class TestTosOctet:
    def test_default_tos_is_best_effort(self):
        assert make_packet(10).tos == 0

    def test_tos_survives_fragmentation_and_reassembly(self):
        from repro.simnet.packet import ReassemblyBuffer, fragment_ip_packet

        packet = IPPacket(
            src=SRC, dst=DST,
            payload=UDPDatagram(1, 2, payload_size=3000), tos=184,
        )
        frags = fragment_ip_packet(packet, 1500)
        assert len(frags) > 1
        assert all(f.tos == 184 for f in frags)
        buf = ReassemblyBuffer()
        whole = None
        for frag in frags:
            whole = buf.add(frag, now=0.0)
        assert whole is not None and whole.tos == 184

    def test_tos_out_of_range_rejected(self):
        with pytest.raises(PacketError):
            IPPacket(
                src=SRC, dst=DST,
                payload=UDPDatagram(1, 2, payload_size=1), tos=256,
            )
