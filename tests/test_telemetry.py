"""Tests for the telemetry subsystem: quantiles, metrics, events, spans."""

import math
import random

import pytest

from repro.analysis.stats import exact_quantile, exact_quantiles, quantile_rank_error
from repro.telemetry import (
    EventBus,
    EwmaQuantile,
    MetricError,
    MetricsRegistry,
    P2Quantile,
    Telemetry,
    Tracer,
)
from repro.telemetry.events import (
    FAULT_INJECTED,
    HEALTH_TRANSITION,
    QOS_VIOLATION,
)
from repro.telemetry.trace import NULL_SPAN


# ----------------------------------------------------------------------
# Streaming quantile accuracy vs the exact batch answer
# ----------------------------------------------------------------------
def uniform_stream(n, seed=0):
    rng = random.Random(seed)
    return [rng.uniform(0.0, 1.0) for _ in range(n)]


def bimodal_stream(n, seed=0):
    """Fast responses with a slow mode -- the shape SNMP RTTs actually have."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        if rng.random() < 0.9:
            out.append(rng.gauss(0.002, 0.0003))
        else:
            out.append(rng.gauss(0.050, 0.005))
    return out


class TestP2Quantile:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_exact_below_six_samples(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.observe(x)
        assert est.value == pytest.approx(exact_quantile([5.0, 1.0, 3.0], 0.5))

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_uniform_rank_error(self, p):
        data = uniform_stream(5000, seed=7)
        est = P2Quantile(p)
        for x in data:
            est.observe(x)
        # On U(0,1) rank error equals absolute error; P^2 should be tight.
        assert quantile_rank_error(data, p, est.value) < 0.02

    @pytest.mark.parametrize("p", [0.5, 0.9])
    def test_bimodal_rank_error(self, p):
        data = bimodal_stream(5000, seed=11)
        est = P2Quantile(p)
        for x in data:
            est.observe(x)
        assert quantile_rank_error(data, p, est.value) < 0.03

    def test_adversarial_sorted_stream(self):
        # Monotonically increasing input is the classic P^2 stress case.
        data = [float(i) for i in range(2000)]
        est = P2Quantile(0.9)
        for x in data:
            est.observe(x)
        assert quantile_rank_error(data, 0.9, est.value) < 0.05

    def test_adversarial_reverse_sorted(self):
        data = [float(2000 - i) for i in range(2000)]
        est = P2Quantile(0.5)
        for x in data:
            est.observe(x)
        assert quantile_rank_error(data, 0.5, est.value) < 0.05

    def test_constant_stream(self):
        est = P2Quantile(0.99)
        for _ in range(100):
            est.observe(3.25)
        assert est.value == pytest.approx(3.25)

    def test_exact_helper_consistency(self):
        data = uniform_stream(100, seed=3)
        qs = exact_quantiles(data, (0.5, 0.9))
        assert qs[0.5] == exact_quantile(data, 0.5)
        assert qs[0.5] <= qs[0.9]


class TestEwmaQuantile:
    def test_tracks_distribution_shift(self):
        # The whole point of the EWMA variant: follow a drifting stream.
        est = EwmaQuantile(0.5, weight=0.1)
        for x in uniform_stream(2000, seed=1):
            est.observe(x)
        before = est.value
        assert abs(before - 0.5) < 0.15
        for x in [u + 10.0 for u in uniform_stream(2000, seed=2)]:
            est.observe(x)
        assert abs(est.value - 10.5) < 0.3

    def test_uniform_rough_accuracy(self):
        data = uniform_stream(5000, seed=5)
        est = EwmaQuantile(0.9, weight=0.05)
        for x in data:
            est.observe(x)
        assert quantile_rank_error(data, 0.9, est.value) < 0.1


# ----------------------------------------------------------------------
# Registry / metric families
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests")
        c.inc()
        c.inc(3)
        assert reg.value("reqs_total") == 4
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_get_or_create_shares_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(MetricError):
            reg.gauge("x_total")

    def test_labelname_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("y_total", labelnames=("agent",))
        with pytest.raises(MetricError):
            reg.counter("y_total", labelnames=("path",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("bad name")
        with pytest.raises(MetricError):
            reg.counter("ok", labelnames=("bad-label",))

    def test_labelled_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("rtt_total", labelnames=("agent",))
        fam.labels(agent="S1").inc()
        fam.labels(agent="S1").inc()
        fam.labels(agent="N1").inc()
        assert reg.value("rtt_total", agent="S1") == 2
        assert reg.value("rtt_total", agent="N1") == 1
        assert [lv for lv, _ in fam.children()] == [("N1",), ("S1",)]

    def test_unlabelled_access_to_labelled_family_fails(self):
        reg = MetricsRegistry()
        fam = reg.counter("z_total", labelnames=("agent",))
        with pytest.raises(MetricError):
            fam.inc()
        with pytest.raises(MetricError):
            fam.labels(agent="a", extra="b")

    def test_function_backed_gauge(self):
        reg = MetricsRegistry()
        state = {"n": 2}
        g = reg.gauge("live")
        g.set_function(lambda: float(state["n"]))
        assert reg.value("live") == 2.0
        state["n"] = 7
        assert reg.value("live") == 7.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", quantiles=(0.5, 0.9))
        for x in (1.0, 2.0, 3.0, 4.0):
            h.observe(x)
        summary = reg.value("lat_seconds")
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        with pytest.raises(MetricError):
            h.quantile(0.75)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        snap = reg.snapshot()
        assert snap["a_total"]["kind"] == "counter"
        assert snap["a_total"]["values"][0]["value"] == 1


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_publish_counts_and_ring(self):
        bus = EventBus(capacity=2)
        bus.publish(HEALTH_TRANSITION, 1.0, node="S1")
        bus.publish(HEALTH_TRANSITION, 2.0, node="S1")
        bus.publish(QOS_VIOLATION, 3.0, path="a<->b")
        assert bus.count(HEALTH_TRANSITION) == 2
        assert bus.total() == 3
        # Ring keeps the newest two only; counts keep everything.
        assert [e.time for e in bus.events()] == [2.0, 3.0]
        assert bus.last(QOS_VIOLATION).attrs["path"] == "a<->b"
        assert bus.last("nope") is None

    def test_subscribe_filtered(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, kinds=[FAULT_INJECTED])
        bus.publish(FAULT_INJECTED, 1.0)
        bus.publish(HEALTH_TRANSITION, 2.0)
        assert [e.kind for e in got] == [FAULT_INJECTED]

    def test_format_counts_shows_known_kinds_at_zero(self):
        text = EventBus().format_counts()
        assert "qos_violation: 0" in text
        assert "health_transition: 0" in text


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def make(self, **kw):
        clock = {"t": 0.0}
        tracer = Tracer(lambda: clock["t"], **kw)
        return tracer, clock

    def test_explicit_begin_finish(self):
        tracer, clock = self.make()
        span = tracer.begin("poll_cycle", cycle=1)
        clock["t"] = 1.5
        span.finish(outcome="ok")
        assert span.duration == pytest.approx(1.5)
        assert span.attrs == {"cycle": 1, "outcome": "ok"}
        assert tracer.spans_finished == 1

    def test_finish_is_idempotent(self):
        tracer, clock = self.make()
        span = tracer.begin("x")
        clock["t"] = 1.0
        span.finish()
        clock["t"] = 9.0
        span.finish()
        assert span.duration == pytest.approx(1.0)
        assert tracer.spans_finished == 1

    def test_parent_child(self):
        tracer, clock = self.make()
        parent = tracer.begin("poll_cycle")
        child = tracer.begin("snmp_exchange", parent=parent, agent="S1")
        child.finish()
        parent.finish()
        assert child.parent_id == parent.span_id
        assert tracer.children_of(parent) == [child]

    def test_ring_bounded(self):
        tracer, clock = self.make(capacity=3)
        for i in range(10):
            tracer.begin("s", i=i).finish()
        assert [s.attrs["i"] for s in tracer.spans("s")] == [7, 8, 9]

    def test_slow_log(self):
        tracer, clock = self.make(slow_threshold=1.0)
        fast = tracer.begin("cycle")
        clock["t"] = 0.5
        fast.finish()
        slow = tracer.begin("cycle")
        clock["t"] = 3.0
        slow.finish()
        assert list(tracer.slow) == [slow]
        assert "took 2.500s" in tracer.format_slow()

    def test_disabled_hands_out_null_span(self):
        tracer, clock = self.make(enabled=False)
        span = tracer.begin("x")
        assert span is NULL_SPAN
        span.finish()
        with span:
            pass
        assert tracer.spans_started == 0
        assert tracer.spans_finished == 0

    def test_context_manager_records_error(self):
        tracer, clock = self.make()
        with pytest.raises(RuntimeError):
            with tracer.span("risky"):
                raise RuntimeError("boom")
        assert tracer.spans("risky")[0].attrs["error"] == "RuntimeError"


class TestHub:
    def test_disabled_hub_still_counts(self):
        tel = Telemetry.disabled()
        tel.registry.counter("c_total").inc()
        assert tel.registry.value("c_total") == 1
        assert tel.tracer.begin("x") is NULL_SPAN
        tel.events.publish(QOS_VIOLATION, 0.0)
        assert tel.events.total() == 1

    def test_enable_disable_sync_tracer(self):
        tel = Telemetry()
        tel.disable()
        assert not tel.tracer.enabled
        tel.enable()
        assert tel.tracer.enabled
