#!/usr/bin/env python3
"""A byzantine agent: S1 starts lying about ifOutOctets mid-run.

The paper's monitor believes whatever the SNMP agents report.  This
example shows the measurement-integrity pipeline withdrawing that trust
when an agent turns dishonest:

1. S1 streams 300 KB/s to L, watched on the S1 <-> L path;
2. at t=19 s, S1's agent begins under-reporting ifOutOctets by 70%
   (scaled, size-preserving on the wire -- only the value lies);
3. the onset makes the counter appear to run backwards, the per-sample
   validators flag it, and the switch's port-2 counters (cross-check
   mode) contradict S1 on the very next report cycle: within two poll
   cycles of the first lie, trust has fallen 1.0 -> 0.5 -> 0.25 < 0.3
   and S1:1 is quarantined;
4. the cross-checker keeps blaming S1 -- and only S1 -- every report
   cycle while the lie persists;
5. the S1 <-> L path is reported degraded/unavailable -- never trusted --
   until the agent comes clean at t=45 s and earns its trust back
   (six clean polls per 0.1 of score, then release at 0.8).

Run:  python examples/byzantine_agent.py
"""

from repro import NetworkMonitor, build_testbed
from repro.integrity import IntegrityConfig
from repro.simnet.faults import CounterCorruption
from repro.simnet.trafficgen import KBPS, StaircaseLoad, StepSchedule
from repro.snmp.mib import IF_OUT_OCTETS
from repro.telemetry.events import (
    CROSS_CHECK_MISMATCH,
    INTEGRITY_VIOLATION,
    QUARANTINE_ENTER,
    QUARANTINE_EXIT,
)

POLL = 2.0
LIE_AT, LIE_UNTIL = 19.0, 45.0
RUN_UNTIL = 78.0


def main() -> None:
    build = build_testbed()
    net = build.network
    # The default cross-check debounce (2 consecutive report cycles)
    # absorbs sampling noise during load transitions; this demo's load is
    # steady, so one round of corroborated disagreement is evidence enough.
    monitor = NetworkMonitor(
        build, "L", poll_interval=POLL, poll_jitter=0.0, cross_check=True,
        integrity=IntegrityConfig(cross_breach_count=1),
    )
    label = monitor.watch_path("S1", "L")
    reports = []
    monitor.subscribe(reports.append)

    StaircaseLoad(
        net.host("S1"), net.ip_of("L"),
        StepSchedule.pulse(5.0, RUN_UNTIL - 5.0, 300 * KBPS),
    ).start()
    CounterCorruption(
        net.sim, build.agents["S1"], at=LIE_AT, until=LIE_UNTIL,
        mode="scaled", scale=0.3, columns=(IF_OUT_OCTETS,),
        events=monitor.telemetry.events,
    )

    monitor.start()
    print(f"t={LIE_AT:.0f}s: S1's agent begins scaling ifOutOctets by 0.3; "
          f"t={LIE_UNTIL:.0f}s: it stops lying\n")
    net.run(RUN_UNTIL)

    bus = monitor.telemetry.events
    print("=== integrity timeline ===")
    for event in bus.events():
        if event.kind == INTEGRITY_VIOLATION:
            print(f"t={event.time:6.3f}s  violation  {event.attrs['node']}:"
                  f"{event.attrs['if_index']}  {event.attrs['check']}")
        elif event.kind == CROSS_CHECK_MISMATCH:
            print(f"t={event.time:6.3f}s  mismatch   {event.attrs['pair']}"
                  f"  blamed={event.attrs['blamed']}")
        elif event.kind == QUARANTINE_ENTER:
            print(f"t={event.time:6.3f}s  QUARANTINE {event.attrs['node']}:"
                  f"{event.attrs['if_index']}  trust={event.attrs['trust']}")
        elif event.kind == QUARANTINE_EXIT:
            print(f"t={event.time:6.3f}s  release    {event.attrs['node']}:"
                  f"{event.attrs['if_index']}  after "
                  f"{event.attrs['held_seconds']:.1f}s held")

    entered = bus.events(QUARANTINE_ENTER)[0]
    cycles = (entered.time - LIE_AT) / POLL
    print(f"\nquarantined {entered.time - LIE_AT:.1f}s after the lie began "
          f"({cycles:.1f} poll cycles)")

    print("\n=== trust scores at the end of the run ===")
    for row in monitor.integrity.status()["interfaces"]:
        state = "QUARANTINED" if row["quarantined"] else "ok"
        print(f"{row['node']:>8}:{row['if_index']}  trust={row['trust']:.2f}"
              f"  violations={row['violations']:3d}  {state}")

    released = bus.events(QUARANTINE_EXIT)
    print(f"\n=== what the monitor reported on {label} ===")
    lying = [r for r in reports if LIE_AT + 2 * POLL < r.time < LIE_UNTIL]
    recovered_at = released[0].time if released else RUN_UNTIL
    after = [r for r in reports if r.time >= recovered_at + 2 * POLL]
    print(f"while S1 lied:   {len(lying)} reports, "
          f"trusted in {sum(r.trusted for r in lying)} of them")
    print(f"after it stopped: {len(after)} reports, "
          f"trusted in {sum(r.trusted for r in after)} of them")
    stats = monitor.stats()
    print(f"\nsamples withheld from the rate table: "
          f"{stats['integrity_rejected']:.0f} of {stats['samples']:.0f}")


if __name__ == "__main__":
    main()
