"""SNMP protocol data units.

A PDU is ``(request-id, error-status, error-index, varbind-list)`` inside
a context-constructed TLV whose tag selects the operation.  GetBulk reuses
the two error fields as ``non-repeaters`` / ``max-repetitions`` (RFC 1905);
on the wire they stay in the error-field slots, but in this model they are
first-class named accessors valid *only* on GetBulk PDUs and validated
(non-negative) both when building a request and when decoding one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.snmp import ber
from repro.snmp.datatypes import Null, SnmpValue, decode_value
from repro.snmp.errors import ErrorStatus
from repro.snmp.oid import Oid

PDU_TAGS = {
    ber.TAG_GET_REQUEST: "get",
    ber.TAG_GET_NEXT_REQUEST: "get-next",
    ber.TAG_GET_RESPONSE: "response",
    ber.TAG_SET_REQUEST: "set",
    ber.TAG_GET_BULK_REQUEST: "get-bulk",
    ber.TAG_INFORM_REQUEST: "inform",
    ber.TAG_SNMPV2_TRAP: "trap",
}

# Agents cap the repetition count a GetBulk may request (RFC 1905 lets an
# agent return fewer rows than asked; this model clamps at a fixed bound
# so one request can never balloon into an unbounded response).
MAX_BULK_REPETITIONS = 64


@dataclass(frozen=True)
class VarBind:
    """One (name, value) pair."""

    oid: Oid
    value: SnmpValue = field(default_factory=Null)

    def encode(self) -> bytes:
        return ber.encode_sequence(ber.encode_oid(self.oid), self.value.encode())

    @staticmethod
    def decode(data: bytes, offset: int) -> Tuple["VarBind", int]:
        content, new_offset = ber.decode_sequence(data, offset)
        tag, oid_content, pos = ber.decode_tlv(content, 0)
        ber.expect_tag(tag, ber.TAG_OID, "varbind OID")
        oid = ber.decode_oid_content(oid_content)
        value, pos = decode_value(content, pos)
        if pos != len(content):
            raise ber.BerError("trailing bytes inside varbind")
        return VarBind(oid, value), new_offset


@dataclass
class Pdu:
    """A Get/GetNext/GetBulk/Set/Response PDU."""

    pdu_type: int
    request_id: int
    error_status: int = 0  # carries non-repeaters on the wire for GetBulk
    error_index: int = 0  # carries max-repetitions on the wire for GetBulk
    varbinds: List[VarBind] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.pdu_type not in PDU_TAGS:
            raise ber.BerError(f"unknown PDU tag 0x{self.pdu_type:02x}")
        if self.pdu_type == ber.TAG_GET_BULK_REQUEST:
            if self.error_status < 0 or self.error_index < 0:
                raise ber.BerError(
                    f"GetBulk fields must be non-negative, got non-repeaters="
                    f"{self.error_status!r} max-repetitions={self.error_index!r}"
                )

    # First-class GetBulk accessors.  RFC 1905 overloads the error-field
    # wire slots, but reading "non-repeaters" off a Get or a Response is
    # a bug -- those PDUs carry an error status there.
    @property
    def non_repeaters(self) -> int:
        self._require_bulk("non_repeaters")
        return self.error_status

    @property
    def max_repetitions(self) -> int:
        self._require_bulk("max_repetitions")
        return self.error_index

    def _require_bulk(self, what: str) -> None:
        if self.pdu_type != ber.TAG_GET_BULK_REQUEST:
            raise AttributeError(
                f"{what} is only defined for get-bulk PDUs; this is a "
                f"{self.kind} PDU carrying error fields"
            )

    @property
    def kind(self) -> str:
        return PDU_TAGS[self.pdu_type]

    def encode(self) -> bytes:
        body = (
            ber.encode_integer(self.request_id)
            + ber.encode_integer(self.error_status)
            + ber.encode_integer(self.error_index)
            + ber.encode_sequence(*[vb.encode() for vb in self.varbinds])
        )
        return ber.encode_tlv(self.pdu_type, body)

    @staticmethod
    def decode(data: bytes, offset: int = 0) -> Tuple["Pdu", int]:
        tag, content, new_offset = ber.decode_tlv(data, offset)
        if tag not in PDU_TAGS:
            raise ber.BerError(f"unknown PDU tag 0x{tag:02x}")
        pos = 0
        t, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(t, ber.TAG_INTEGER, "request-id")
        request_id = ber.decode_integer_content(c)
        t, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(t, ber.TAG_INTEGER, "error-status")
        error_status = ber.decode_integer_content(c)
        t, c, pos = ber.decode_tlv(content, pos)
        ber.expect_tag(t, ber.TAG_INTEGER, "error-index")
        error_index = ber.decode_integer_content(c)
        vb_content, pos = ber.decode_sequence(content, pos)
        if pos != len(content):
            raise ber.BerError("trailing bytes inside PDU")
        varbinds: List[VarBind] = []
        vpos = 0
        while vpos < len(vb_content):
            vb, vpos = VarBind.decode(vb_content, vpos)
            varbinds.append(vb)
        return (
            Pdu(tag, request_id, error_status, error_index, varbinds),
            new_offset,
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @staticmethod
    def get_request(request_id: int, oids: List[Oid]) -> "Pdu":
        return Pdu(ber.TAG_GET_REQUEST, request_id, 0, 0, [VarBind(o) for o in oids])

    @staticmethod
    def get_next_request(request_id: int, oids: List[Oid]) -> "Pdu":
        return Pdu(ber.TAG_GET_NEXT_REQUEST, request_id, 0, 0, [VarBind(o) for o in oids])

    @staticmethod
    def get_bulk_request(
        request_id: int, oids: List[Oid], non_repeaters: int, max_repetitions: int
    ) -> "Pdu":
        return Pdu(
            ber.TAG_GET_BULK_REQUEST,
            request_id,
            non_repeaters,
            max_repetitions,
            [VarBind(o) for o in oids],
        )

    def response(
        self,
        varbinds: List[VarBind],
        error_status: ErrorStatus = ErrorStatus.NO_ERROR,
        error_index: int = 0,
    ) -> "Pdu":
        """A response PDU echoing this request's id."""
        return Pdu(
            ber.TAG_GET_RESPONSE, self.request_id, int(error_status), error_index, varbinds
        )
