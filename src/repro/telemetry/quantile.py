"""Incremental quantile estimation in O(1) memory per quantile.

The monitor must know the distribution of its own poll RTTs and cycle
durations without storing every sample (a production monitor runs for
months).  Two estimators are provided:

:class:`P2Quantile`
    The P-square algorithm of Jain & Chlamtac (CACM 1985): five markers
    track the target quantile plus the extremes and two intermediate
    quantiles; marker heights are adjusted with a piecewise-parabolic
    interpolation as observations stream in.  Converges on stationary
    streams; memory is five floats regardless of stream length.

:class:`EwmaQuantile`
    The exponentially-weighted stochastic-approximation variant in the
    spirit of Chambers, James, Lambert & Vander Wiel, *Monitoring
    Networked Applications With Incremental Quantile Estimation*
    (Statistical Science 2006): recent observations dominate, so the
    estimate follows a *drifting* distribution (an agent that slows down
    mid-run moves the p99 within tens of samples instead of thousands).
    The update is the classic Robbins-Monro step ``q += step * (p - I(x
    <= q))`` with a step size scaled by an exponentially-weighted mean
    absolute deviation.

Both expose the same tiny interface: ``observe(x)``, ``value`` and
``reset()`` -- the latter discards all learned state, returning the
estimator to its just-constructed condition.  Consumers tracking a
distribution that is *defined* to have changed (the stream's
significance filters after a topology epoch bump) re-baseline with it
instead of letting stale markers bias the new regime.
"""

from __future__ import annotations

import math
from typing import List, Optional


class P2Quantile:
    """P-square estimator for one quantile ``p`` in (0, 1)."""

    __slots__ = ("p", "count", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p!r}")
        self.p = p
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.reset()

    def reset(self) -> None:
        """Forget every observation; the estimator re-primes from scratch."""
        p = self.p
        self.count = 0
        self._heights: List[float] = []  # marker heights q_0..q_4 once primed
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]  # actual marker positions n_i
        self._desired = [1.0, 1.0 + 2 * p, 1.0 + 4 * p, 3.0 + 2 * p, 5.0]

    # ------------------------------------------------------------------
    def observe(self, x: float) -> None:
        self.count += 1
        if self.count <= 5:
            self._heights.append(float(x))
            self._heights.sort()
            return
        q, n = self._heights, self._positions
        # Locate the cell k holding x, extending the extremes if needed.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and not x < q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Current estimate; NaN before any observation."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Exact while the sample fits in the markers.
            rank = self.p * (len(self._heights) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(self._heights) - 1)
            frac = rank - lo
            return self._heights[lo] * (1 - frac) + self._heights[hi] * frac
        return self._heights[2]


class EwmaQuantile:
    """Exponentially-weighted incremental quantile for drifting streams.

    ``weight`` plays the usual EWMA role: larger values track changes
    faster at the price of more estimation noise.  The step size adapts
    to the data's scale through an exponentially-weighted mean absolute
    deviation, so the estimator needs no prior knowledge of units.
    """

    __slots__ = ("p", "weight", "count", "_estimate", "_scale")

    def __init__(self, p: float, weight: float = 0.05) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p!r}")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {weight!r}")
        self.p = p
        self.weight = weight
        self.reset()

    def reset(self) -> None:
        """Forget every observation; the next one re-seeds the estimate."""
        self.count = 0
        self._estimate: Optional[float] = None
        self._scale = 0.0

    def observe(self, x: float) -> None:
        self.count += 1
        if self._estimate is None:
            self._estimate = float(x)
            return
        deviation = abs(x - self._estimate)
        self._scale += self.weight * (deviation - self._scale)
        step = self.weight * (self._scale if self._scale > 0.0 else deviation or 1.0)
        if x > self._estimate:
            self._estimate += step * self.p / max(self.p, 1.0 - self.p)
        else:
            self._estimate -= step * (1.0 - self.p) / max(self.p, 1.0 - self.p)

    @property
    def value(self) -> float:
        return math.nan if self._estimate is None else self._estimate
