"""Experiment §4.3.3 / Figure 6: hosts connected by a switch.

"A switch only forwards packets to the host for which they are destined
... The traffic through a switch is not summed up.  Instead, only traffic
going to and from a particular host is considered ... 2,000 Kbytes/second
of traffic was generated at time 20-60, 40-80, and 100-120 seconds from L
to S2, S3, and S1 respectively.  As shown in Figure 6d-e, the load sent
to S2 can only be seen between S1 and S2, and the load to S3 appears only
between S1 and S3, while the load to S1 is present in both paths because
S1 has only one connection to the switch."

Expected measured pattern::

    path S1<->S2: 2000 KB/s during [20,60) and [100,120), else ~0
    path S1<->S3: 2000 KB/s during [40,80) and [100,120), else ~0

Paper accuracy: "2.2 % error on average values of measured traffic (less
background), with maximum individual error of 7.8 %.  The smaller
percentage error on average values is due to the much larger volume of
traffic generated."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.series import combined_stable_mask
from repro.analysis.stats import TrafficStatistics, compute_table2
from repro.experiments.scenarios import Scenario, SeriesPair
from repro.simnet.trafficgen import KBPS, StepSchedule

RUN_UNTIL = 140.0
LOAD_S2 = StepSchedule.pulse(20.0, 60.0, 2000 * KBPS)
LOAD_S3 = StepSchedule.pulse(40.0, 80.0, 2000 * KBPS)
LOAD_S1 = StepSchedule.pulse(100.0, 120.0, 2000 * KBPS)
TRANSITION_GUARD = 1.0

PAPER_AVG_PCT_ERROR = 2.2
PAPER_MAX_PCT_ERROR = 7.8

# Which destination loads each watched path is expected to carry: the
# far-end host's loads plus S1's own (S1 has only one switch connection).
EXPECTED_LOADS = {
    "S1<->S2": ["S2", "S1"],
    "S1<->S3": ["S3", "S1"],
}


@dataclass
class Fig6Result:
    pairs: Dict[str, SeriesPair]
    stats: Dict[str, TrafficStatistics]
    poll_interval: float
    monitor_stats: dict
    scenario: Scenario


def run(seed: int = 0, poll_interval: float = 2.0) -> Fig6Result:
    scenario = Scenario(poll_interval=poll_interval, seed=seed)
    for dst in ("S2", "S3"):
        scenario.watch("S1", dst)
    scenario.add_load("L", "S2", LOAD_S2)
    scenario.add_load("L", "S3", LOAD_S3)
    scenario.add_load("L", "S1", LOAD_S1)
    scenario.run(RUN_UNTIL)

    schedules = [LOAD_S2, LOAD_S3, LOAD_S1]
    pairs: Dict[str, SeriesPair] = {}
    stats: Dict[str, TrafficStatistics] = {}
    for label, expected in EXPECTED_LOADS.items():
        pair = scenario.series_pair(label, expected)
        pairs[label] = pair
        stable = combined_stable_mask(
            pair.times, schedules, window=poll_interval, guard=TRANSITION_GUARD
        )
        stats[label] = compute_table2(
            pair.measured_kbps, pair.generated_kbps, stable=stable
        )
    return Fig6Result(
        pairs=pairs,
        stats=stats,
        poll_interval=poll_interval,
        monitor_stats=scenario.monitor.stats(),
        scenario=scenario,
    )


def format_series(result: Fig6Result, stride: int = 2) -> List[str]:
    labels = sorted(result.pairs)
    lines = [
        f"{'time (s)':>9} "
        + " ".join(f"{'gen->'+lab:>16} {'meas '+lab:>16}" for lab in labels)
    ]
    n = len(result.pairs[labels[0]].times)
    for i in range(0, n, stride):
        row = [f"{result.pairs[labels[0]].times[i]:9.1f}"]
        for lab in labels:
            pair = result.pairs[lab]
            row.append(f"{pair.generated_kbps[i]:16.1f} {pair.measured_kbps[i]:16.2f}")
        lines.append(" ".join(row))
    return lines


def main(seed: int = 0) -> Fig6Result:
    from repro.analysis.charts import render_pair

    result = run(seed=seed)
    print("Figure 6 -- switch-connected hosts (per-port isolation)")
    for label in sorted(result.pairs):
        print(render_pair(result.pairs[label],
                          title=f"expected (-) vs measured (*) on {label}"))
        print()
    for line in format_series(result):
        print(line)
    for label, stats in sorted(result.stats.items()):
        print()
        print(stats.format_table(title=f"accuracy on {label}"))
    print()
    print(f"paper: avg error {PAPER_AVG_PCT_ERROR}%, max individual {PAPER_MAX_PCT_ERROR}%")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
