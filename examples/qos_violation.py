#!/usr/bin/env python3
"""QoS violation detection, diagnosis and reallocation advice.

The point of the paper's monitor is to feed the DeSiDeRaTa resource
manager so it can react to network QoS violations.  This example closes
that loop:

1. a real-time path S1 -> N1 requires 600 KB/s of available bandwidth;
2. a competing load saturates the shared 10 Mb/s hub;
3. the middleware detects the violation (with hysteresis), diagnoses the
   hub as the bottleneck, and recommends moving the consumer to a
   switch-connected host -- which the scenario then "does", restoring QoS.

Run:  python examples/qos_violation.py
"""

from repro import Scenario, StepSchedule
from repro.rm import QosRequirement, RmMiddleware
from repro.simnet.trafficgen import KBPS


def main() -> None:
    scenario = Scenario(seed=3)
    net = scenario.network

    requirement = QosRequirement(
        name="telemetry-feed",
        src="S1",
        dst="N1",
        min_available_bps=600 * KBPS,
    )
    middleware = RmMiddleware(scenario.monitor, [requirement])

    # The competing load: 900 KB/s into the 1250 KB/s hub from t=20s.
    scenario.add_load("L", "N1", StepSchedule.pulse(20.0, 80.0, 900 * KBPS))
    print("running: hub saturates between t=20s and t=80s...\n")
    scenario.run(110.0)

    print("=== RM middleware event log ===")
    print(middleware.format_log())

    violations = middleware.violations()
    if violations:
        action = violations[0]
        print("\n=== what the resource manager would do ===")
        print(f"at t={action.time:.1f}s the path violated its QoS:")
        print(f"  {action.event.reason}")
        if action.diagnosis is not None:
            print(f"  bottleneck class: {action.diagnosis.kind}")
        if action.advice:
            best = action.advice[0]
            print(
                f"  best placement: move the consumer to {best.host} "
                f"({best.available_bps / 1000:.0f} KB/s available, "
                f"{'avoids' if best.avoids_bottleneck else 'still crosses'} "
                "the bottleneck)"
            )
    print("\nfinal state:", middleware.state_of("S1<->N1").value)


if __name__ == "__main__":
    main()
