"""Benchmark + regeneration of Table 2 (measured-traffic statistics).

Prints the reproduced table next to the paper's reference values and
asserts the bands: a small positive systematic error (headers + SNMP
overhead; paper ~4 %, here ~2 %) and large worst-case single-interval
errors from counter displacement (paper up to ~16 %).
"""

from repro.analysis.stats import compute_table2
from repro.experiments import table2


def test_bench_table2_statistics(benchmark, fig4_result, table2_result):
    stats = benchmark(table2.compute, fig4_result)
    print()
    print(stats.format_table())
    print(
        f"paper reference: background {table2.PAPER_BACKGROUND_KBPS} KB/s, "
        f"avg ~{table2.PAPER_AVG_PCT_ERROR}%, max ~{table2.PAPER_MAX_PCT_ERROR}%"
    )

    assert [lv.generated for lv in stats.levels] == table2.PAPER_LEVELS
    # Systematic error: positive (measured > generated) and small.
    for level in stats.levels:
        assert level.avg_less_background > level.generated  # headers add
        assert level.pct_error < 6.0  # paper: ~4 %
    # Worst-case single-interval error: an order larger than the mean,
    # bounded by the paper's observed ceiling (~16 %) plus slack.
    assert stats.max_pct_error > 2 * stats.mean_pct_error
    assert stats.max_pct_error < 25.0
    # Background magnitude comparable to the paper's 0.824 KB/s.
    assert 0.1 < stats.background < 5.0
