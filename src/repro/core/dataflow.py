"""Epoch primitives for the incremental measurement dataflow.

The monitor's measurement pipeline used to recompute every path report
from raw counters on every request -- fine for the paper's 9 hosts,
O(n² · path length) at production scale.  The incremental dataflow
instead tags every *input* of a measurement with an **epoch**: a
monotonically increasing stamp bumped exactly when that input changes.

Epoch sources and what bumps them:

====================  ==========================================  =====================
source                epoch key                                    bumped by
====================  ==========================================  =====================
rate table            (node, ifIndex)                              sample admitted on ingest
link-state registry   connection endpoints                         linkDown/linkUp trap,
                                                                   ifOperStatus change,
                                                                   mark_down/mark_up
agent health          node                                         health-state transition
quarantine            (node, ifIndex)                              quarantine enter/release
topology graph        (whole graph)                                ``invalidate_paths``
====================  ==========================================  =====================

A derived value (a connection measurement, a hub aggregate, a path
report, an all-pairs matrix cell) records the epochs of the inputs it
was computed from; it is valid exactly as long as those epochs are
unchanged.  Correctness invariant, enforced by the property tests in
``tests/test_dataflow.py``: **incremental recomputation is bit-identical
to recomputing everything from scratch** -- caching may only ever change
how much work is done, never a single output bit.

:class:`EpochClock` is the shared primitive: a per-owner global clock
plus per-key stamps.  Because every bump draws from the owner's global
clock, "any key changed since stamp S" is a single integer comparison
against :attr:`EpochClock.clock` -- consumers first compare the global
clock (cheap, catches the common no-change case) and only then the
per-key epochs they actually depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["EpochClock", "ConnCacheEntry"]


class EpochClock:
    """Monotonic per-key epoch stamps drawn from one global clock.

    ``epoch(key) == 0`` means the key has never changed (the virgin
    epoch); real stamps start at 1.  The global :attr:`clock` equals the
    largest stamp ever issued, so a consumer that recorded ``clock`` can
    tell "nothing anywhere changed" without touching per-key state.
    """

    __slots__ = ("clock", "_epochs")

    def __init__(self) -> None:
        self.clock: int = 0
        self._epochs: Dict[Hashable, int] = {}

    def bump(self, key: Hashable) -> int:
        """Stamp ``key`` with a fresh epoch; returns the new stamp."""
        self.clock += 1
        self._epochs[key] = self.clock
        return self.clock

    def epoch(self, key: Hashable) -> int:
        """The last stamp issued for ``key`` (0: never bumped)."""
        return self._epochs.get(key, 0)

    def __len__(self) -> int:
        return len(self._epochs)


@dataclass
class ConnCacheEntry:
    """One connection's memoized measurement inside the calculator.

    ``token`` is the tuple of input epochs the measurement was computed
    from; ``now`` the report instant it was aged against.  ``stamp`` is
    the calculator's validation stamp: entries checked during the
    current validation cycle skip even the token comparison.
    ``confidence`` is the per-connection trust figure derived from the
    measurement (None is a legal value -- ``has_confidence`` carries the
    cache state).
    """

    token: Optional[Tuple] = None
    now: Optional[float] = None
    measurement: object = None
    confidence: Optional[float] = None
    has_confidence: bool = False
    stamp: int = -1
