"""Unit tests for counter-source resolution."""

import pytest

from repro.core.counters import (
    if_index_of,
    required_poll_targets,
    resolve_counter_source,
    resolve_counter_sources,
)
from repro.spec.parser import parse_spec
from repro.topology.model import InterfaceRef

SPEC = """
network topology t {
    host L  { snmp community "public"; }
    host S1 { snmp community "public"; }
    host S4 { }
    host N1 { snmp community "public"; interface el0 { speed 10 Mbps; } }
    host X  { }
    switch sw { snmp community "public"; ports 6; }
    hub hb { ports 4; }
    connect L.eth0  <-> sw.port1;
    connect S1.eth0 <-> sw.port2;
    connect S4.eth0 <-> sw.port3;
    connect sw.port4 <-> hb.port1;
    connect N1.el0  <-> hb.port2;
    connect X.eth0  <-> hb.port3;
}
"""


def spec():
    return parse_spec(SPEC)


def conn_between(s, a, b):
    for conn in s.connections:
        nodes = {conn.end_a.node, conn.end_b.node}
        if nodes == {a, b}:
            return conn
    raise AssertionError(f"no connection {a}<->{b}")


class TestIfIndex:
    def test_declaration_order_one_based(self):
        s = spec()
        assert if_index_of(s.node("sw"), "port1") == 1
        assert if_index_of(s.node("sw"), "port4") == 4
        assert if_index_of(s.node("N1"), "el0") == 1

    def test_unknown_interface(self):
        with pytest.raises(KeyError):
            if_index_of(spec().node("sw"), "port99")


class TestResolution:
    def test_host_end_preferred(self):
        """When both ends have agents, the host side wins."""
        s = spec()
        source = resolve_counter_source(s, conn_between(s, "S1", "sw"))
        assert source.node == "S1"
        assert source.if_index == 1
        assert source.endpoint == InterfaceRef("S1", "eth0")

    def test_switch_end_fallback(self):
        """S4 runs no agent; the switch port measures it (paper §4.1)."""
        s = spec()
        source = resolve_counter_source(s, conn_between(s, "S4", "sw"))
        assert source.node == "sw"
        assert source.if_index == 3

    def test_hub_uplink_measured_from_switch(self):
        s = spec()
        source = resolve_counter_source(s, conn_between(s, "sw", "hb"))
        assert source.node == "sw"
        assert source.if_index == 4

    def test_hub_host_leg_measured_from_host(self):
        s = spec()
        source = resolve_counter_source(s, conn_between(s, "N1", "hb"))
        assert source.node == "N1"

    def test_unmeasurable_connection(self):
        """X has no agent and hubs cannot run one."""
        s = spec()
        assert resolve_counter_source(s, conn_between(s, "X", "hb")) is None

    def test_resolve_all(self):
        s = spec()
        sources = resolve_counter_sources(s)
        assert len(sources) == len(s.connections)
        unmeasured = [k for k, v in sources.items() if v is None]
        assert len(unmeasured) == 1


class TestRequiredTargets:
    def test_targets_cover_all_measurable_connections(self):
        s = spec()
        targets = required_poll_targets(s, list(s.connections))
        assert targets == {
            "L": [1],
            "S1": [1],
            "N1": [1],
            "sw": [3, 4],
        }

    def test_subset_of_connections(self):
        s = spec()
        conn = conn_between(s, "S4", "sw")
        assert required_poll_targets(s, [conn]) == {"sw": [3]}

    def test_duplicate_connections_deduplicated(self):
        s = spec()
        conn = conn_between(s, "S1", "sw")
        assert required_poll_targets(s, [conn, conn]) == {"S1": [1]}
