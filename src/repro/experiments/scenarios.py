"""Common scenario machinery for the paper's experiments.

A :class:`Scenario` wraps a built testbed with a monitor on L, scheduled
UDP loads (the paper's load generator), background chatter, and helpers to
extract generated-vs-measured series in the paper's units (KB/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.history import PathSeries
from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import MONITOR_HOST, build_testbed
from repro.simnet.trafficgen import (
    KBPS,
    BackgroundChatter,
    StaircaseLoad,
    StepSchedule,
)
from repro.spec.builder import BuildResult

DEFAULT_POLL_INTERVAL = 2.0


@dataclass
class SeriesPair:
    """Generated-vs-measured series for one path, in KB/s."""

    label: str
    times: np.ndarray  # report timestamps (s)
    measured_kbps: np.ndarray  # monitor-reported used bandwidth (KB/s)
    generated_kbps: np.ndarray  # scheduled load at the same timestamps

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.measured_kbps) == len(self.generated_kbps)):
            raise ValueError("series lengths disagree")


class Scenario:
    """A testbed + monitor + loads, runnable to a horizon."""

    def __init__(
        self,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        chatter_rate: float = 600.0,
        seed: int = 0,
        build: Optional[BuildResult] = None,
        poll_jitter: float = 0.25,
        telemetry: bool = True,
        history_retention_s: Optional[float] = None,
        history_downsample_s: Optional[float] = None,
        integrity=True,
        cross_check: bool = False,
    ) -> None:
        # poll_jitter=0.25 s reproduces the paper's "slight delay in SNMP
        # polling": combined with the agents' timer-refreshed counters it
        # displaces octets between intervals, giving single-sample errors
        # in the paper's 5-16 % band while averages stay tight.
        self.build = build if build is not None else build_testbed(agent_seed=seed)
        self.network = self.build.network
        self.monitor = NetworkMonitor(
            self.build,
            MONITOR_HOST,
            poll_interval=poll_interval,
            poll_jitter=poll_jitter,
            seed=seed,
            telemetry=telemetry,
            history_retention_s=history_retention_s,
            history_downsample_s=history_downsample_s,
            integrity=integrity,
            cross_check=cross_check,
        )
        self.loads: Dict[str, StaircaseLoad] = {}
        self._load_schedules: Dict[str, Tuple[str, StepSchedule]] = {}
        self.chatter: Optional[BackgroundChatter] = None
        if chatter_rate > 0:
            chatter_hosts = [
                self.network.host(name)
                for name in ("L", "S1", "S2", "S3", "S4", "S5", "S6", "N1", "N2")
                if name in self.network.hosts
            ]
            self.chatter = BackgroundChatter(
                chatter_hosts, aggregate_rate_bps=chatter_rate, seed=seed + 17
            )

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_load(self, src: str, dst: str, schedule: StepSchedule) -> str:
        """Schedule a UDP load (paper §4.2) from ``src`` to ``dst``.

        Returns a label like ``"L==>N1"`` matching the paper's captions.
        """
        label = f"{src}==>{dst}"
        if label in self.loads:
            raise ValueError(f"load {label} already defined")
        generator = StaircaseLoad(
            self.network.host(src),
            self.network.ip_of(dst),
            schedule,
        )
        generator.start()
        self.loads[label] = generator
        self._load_schedules[label] = (dst, schedule)
        return label

    def watch(self, src: str, dst: str) -> str:
        return self.monitor.watch_path(src, dst)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float, start_monitor_at: float = 0.0) -> None:
        self.monitor.start(at=start_monitor_at)
        self.network.run(until)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def path_series(self, label: str) -> PathSeries:
        return self.monitor.history.series(label)

    def generated_rate_at(self, dst_host: str, t: float) -> float:
        """Total scheduled payload rate toward ``dst_host`` at time ``t``.

        Used bandwidth on a path to a switch-connected host reflects only
        loads addressed to (or from) that host; on a hub segment the
        caller sums over all hub hosts instead (see :mod:`fig5`).
        """
        total = 0.0
        for dst, schedule in self._load_schedules.values():
            if dst == dst_host:
                total += schedule.rate_at(t)
        return total

    def series_pair(
        self,
        watch_label: str,
        generated_for: Sequence[str],
        offset: Optional[float] = None,
    ) -> SeriesPair:
        """Align the measured series with the generated schedule.

        ``generated_for`` lists the destination hosts whose loads the
        watched path is expected to carry (one host for switch paths, all
        hub hosts for hub paths).  ``offset`` shifts the generated series
        to the centre of each measurement interval (default: half the
        poll interval), since a report at time t covers roughly
        [t - interval, t].
        """
        series = self.path_series(watch_label)
        if offset is None:
            offset = self.monitor.poll_interval / 2.0 + self.monitor.report_offset
        times = series.times()
        measured = series.used() / KBPS
        generated = np.array(
            [
                sum(self.generated_rate_at(host, t - offset) for host in generated_for)
                for t in times
            ],
            dtype=float,
        ) / KBPS
        return SeriesPair(watch_label, times, measured, generated)
