"""SNMP protocol errors and the library's exception taxonomy."""

from __future__ import annotations

from enum import IntEnum


class ErrorStatus(IntEnum):
    """PDU error-status values (RFC 1157 §4.1.1 plus v2c additions)."""

    NO_ERROR = 0
    TOO_BIG = 1
    NO_SUCH_NAME = 2
    BAD_VALUE = 3
    READ_ONLY = 4
    GEN_ERR = 5
    # SNMPv2c (RFC 1905) -- subset we can emit.
    NO_ACCESS = 6
    WRONG_TYPE = 7
    NOT_WRITABLE = 17


class SnmpError(RuntimeError):
    """Base class for manager-visible SNMP failures."""


class SnmpTimeout(SnmpError):
    """The agent never answered within timeout x retries."""

    def __init__(self, dst: str, attempts: int) -> None:
        super().__init__(f"no SNMP response from {dst} after {attempts} attempt(s)")
        self.dst = dst
        self.attempts = attempts


class SnmpErrorResponse(SnmpError):
    """The agent answered with a non-zero error-status."""

    def __init__(self, status: ErrorStatus, index: int) -> None:
        super().__init__(f"SNMP error {status.name} at varbind index {index}")
        self.status = status
        self.index = index
