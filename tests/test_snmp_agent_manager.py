"""Integration tests: SNMP agent + manager over the simulated network."""

import pytest

from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.datatypes import (
    Counter32,
    EndOfMibView,
    Integer,
    NoSuchObject,
    OctetString,
    TimeTicks,
)
from repro.snmp.errors import ErrorStatus, SnmpError, SnmpErrorResponse, SnmpTimeout
from repro.snmp.manager import SnmpManager
from repro.snmp.message import VERSION_1, VERSION_2C
from repro.snmp.mib import IF_IN_OCTETS, SYS_NAME, SYS_UPTIME, build_mib2
from repro.snmp.oid import Oid
from repro.snmp.pdu import Pdu


def snmp_net(agent_community="public", mgr_version=VERSION_2C, mgr_community="public"):
    net = Network()
    mgr_host = net.add_host("L")
    agent_host = net.add_host("S1")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(mgr_host, sw)
    net.connect(agent_host, sw)
    net.announce_hosts()
    agent = SnmpAgent(agent_host, build_mib2(agent_host, net.sim), community=agent_community)
    manager = SnmpManager(
        mgr_host, community=mgr_community, version=mgr_version, timeout=0.5, retries=1
    )
    return net, manager, agent, agent_host


class Collect:
    def __init__(self):
        self.results = None
        self.error = None

    def ok(self, varbinds):
        self.results = varbinds

    def fail(self, exc):
        self.error = exc


class TestGet:
    def test_basic_get(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.get(host.primary_ip, [SYS_NAME, SYS_UPTIME], got.ok, got.fail)
        net.run(1.0)
        assert got.error is None
        assert got.results[0].value == OctetString(b"S1")
        assert isinstance(got.results[1].value, TimeTicks)

    def test_get_miss_v2c_exception_value(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.get(host.primary_ip, [Oid("1.3.9.9.9.0")], got.ok, got.fail)
        net.run(1.0)
        assert got.error is None
        assert isinstance(got.results[0].value, NoSuchObject)

    def test_get_miss_v1_error_status(self):
        net, mgr, agent, host = snmp_net(mgr_version=VERSION_1)
        got = Collect()
        mgr.get(host.primary_ip, [Oid("1.3.9.9.9.0")], got.ok, got.fail)
        net.run(1.0)
        assert got.results is None
        assert isinstance(got.error, SnmpErrorResponse)
        assert got.error.status == ErrorStatus.NO_SUCH_NAME
        assert got.error.index == 1

    def test_wrong_community_times_out(self):
        net, mgr, agent, host = snmp_net(mgr_community="wrong")
        got = Collect()
        mgr.get(host.primary_ip, [SYS_NAME], got.ok, got.fail)
        net.run(5.0)
        assert isinstance(got.error, SnmpTimeout)
        assert agent.bad_community == 2  # original + one retry
        assert mgr.timeouts == 1

    def test_per_request_community_override(self):
        net, mgr, agent, host = snmp_net(agent_community="secret", mgr_community="public")
        got = Collect()
        mgr.get(host.primary_ip, [SYS_NAME], got.ok, got.fail, community="secret")
        net.run(1.0)
        assert got.error is None
        assert got.results[0].value == OctetString(b"S1")

    def test_unreachable_agent_times_out_after_retries(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        # No agent listens on the manager's own host port 161.
        mgr.get(mgr.endpoint.primary_ip, [SYS_NAME], got.ok, got.fail)
        net.run(5.0)
        assert isinstance(got.error, SnmpTimeout)
        assert got.error.attempts == 2
        assert mgr.retransmissions == 1

    def test_counters_via_snmp_match_nic(self):
        net, mgr, agent, host = snmp_net()
        from repro.simnet.sockets import DISCARD_PORT

        peer = net.host("L")
        peer.create_socket().sendto(972, (host.primary_ip, DISCARD_PORT))
        net.run(0.5)
        got = Collect()
        mgr.get(host.primary_ip, [IF_IN_OCTETS + "1"], got.ok, got.fail)
        net.run(1.5)
        wire = got.results[0].value
        assert isinstance(wire, Counter32)
        assert wire.value == host.interfaces[0].counters.in_octets % (1 << 32)


class TestGetNext:
    def test_get_next_advances(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.get_next(host.primary_ip, [Oid("1.3.6.1.2.1.1")], got.ok, got.fail)
        net.run(1.0)
        assert got.results[0].oid == Oid("1.3.6.1.2.1.1.1.0")  # sysDescr.0

    def test_get_next_past_end_v2c(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.get_next(host.primary_ip, [Oid("2.999")], got.ok, got.fail)
        net.run(1.0)
        assert isinstance(got.results[0].value, EndOfMibView)


class TestWalk:
    def test_walk_interfaces_column(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.walk(host.primary_ip, IF_IN_OCTETS, got.ok, got.fail)
        net.run(2.0)
        assert [vb.oid for vb in got.results] == [IF_IN_OCTETS + "1"]

    def test_walk_system_group(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.walk(host.primary_ip, Oid("1.3.6.1.2.1.1"), got.ok, got.fail)
        net.run(3.0)
        assert len(got.results) == 7  # sysDescr..sysServices

    def test_walk_with_bulk(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.walk(host.primary_ip, Oid("1.3.6.1.2.1.2"), got.ok, got.fail, use_bulk=True)
        net.run(3.0)
        # ifNumber + 20ish columns x 1 interface; exact count checked loosely
        assert len(got.results) >= 15
        oids = [vb.oid for vb in got.results]
        assert oids == sorted(oids)


class TestGetBulk:
    def test_bulk_repetitions(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.get_bulk(
            host.primary_ip, [Oid("1.3.6.1.2.1.1")], got.ok, got.fail, max_repetitions=3
        )
        net.run(1.0)
        assert len(got.results) == 3

    def test_bulk_requires_v2c(self):
        net, mgr, agent, host = snmp_net(mgr_version=VERSION_1)
        with pytest.raises(SnmpError):
            mgr.get_bulk(host.primary_ip, [SYS_NAME], lambda v: None)

    def test_bulk_end_of_mib(self):
        net, mgr, agent, host = snmp_net()
        got = Collect()
        mgr.get_bulk(host.primary_ip, [Oid("2.998")], got.ok, got.fail, max_repetitions=5)
        net.run(1.0)
        assert isinstance(got.results[0].value, EndOfMibView)
        assert len(got.results) == 1


class TestSet:
    def test_set_rejected_read_only(self):
        net, mgr, agent, host = snmp_net()
        # Hand-roll a SET through the manager's plumbing.
        from repro.snmp.pdu import VarBind
        from repro.snmp import ber

        got = Collect()
        pdu = Pdu(ber.TAG_SET_REQUEST, 77, varbinds=[VarBind(SYS_NAME, OctetString(b"X"))])
        mgr._send(77, pdu, host.primary_ip, got.ok, got.fail)
        net.run(1.0)
        assert isinstance(got.error, SnmpErrorResponse)
        assert got.error.status in (ErrorStatus.READ_ONLY, ErrorStatus.NOT_WRITABLE)


class TestAgentRobustness:
    def test_malformed_datagram_counted_and_ignored(self):
        net, mgr, agent, host = snmp_net()
        sock = net.host("L").create_socket()
        sock.sendto(b"\xff\x00garbage", (host.primary_ip, 161))
        net.run(1.0)
        assert agent.malformed == 1
        assert agent.out_packets == 0

    def test_sizeless_datagram_counted(self):
        net, mgr, agent, host = snmp_net()
        sock = net.host("L").create_socket()
        sock.sendto(64, (host.primary_ip, 161))  # synthetic, payload=None
        net.run(1.0)
        assert agent.malformed == 1

    def test_cancel_all_suppresses_errbacks(self):
        net, mgr, agent, host = snmp_net(mgr_community="wrong")
        got = Collect()
        mgr.get(host.primary_ip, [SYS_NAME], got.ok, got.fail)
        mgr.cancel_all()
        net.run(5.0)
        assert got.error is None
        assert mgr.outstanding == 0

    def test_response_traffic_loads_network(self):
        """SNMP polling itself consumes bandwidth (paper's ~2% overhead)."""
        net, mgr, agent, host = snmp_net()
        iface = host.interfaces[0]
        base_out = iface.counters.out_octets
        got = Collect()
        mgr.get(host.primary_ip, [SYS_UPTIME, IF_IN_OCTETS + "1"], got.ok, got.fail)
        net.run(1.0)
        assert iface.counters.out_octets > base_out  # the response was real bytes
