"""The network QoS monitor (paper §3, assembled).

:class:`NetworkMonitor` runs on one host of the managed system -- the
paper's monitor ran on the Linux machine L -- and:

1. reads the topology from the specification (via a
   :class:`~repro.spec.builder.BuildResult`),
2. resolves which agents and interfaces must be polled so that every
   measurable connection has a counter source,
3. polls them every ``poll_interval`` seconds over genuine SNMP traffic,
4. traverses the communication path of every watched host pair, and
5. emits a :class:`~repro.core.report.PathReport` per path per interval
   into its history and to subscribers (e.g. the RM middleware in
   :mod:`repro.rm`).

Report generation is offset from the polls by ``report_offset`` so each
report sees that cycle's responses; the first report only fires after two
cycles, when counter deltas exist.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.bandwidth import BandwidthCalculator
from repro.core.counters import if_index_of, required_poll_targets
from repro.core.history import MeasurementHistory
from repro.integrity import (
    IntegrityConfig,
    IntegrityPipeline,
    extra_poll_indexes,
    register_integrity_metrics,
    two_ended_pairs,
)
from repro.core.linkstate import LinkStateRegistry
from repro.core.poller import PollTarget, RateTable, SnmpPoller
from repro.core.report import PathReport
from repro.probe.scheduler import register_probe_metrics
from repro.core.topology_sync import register_topology_metrics
from repro.core.traversal import NoPathError, find_path, pair_redundant
from repro.snmp.manager import SnmpManager
from repro.spec.builder import BuildResult
from repro.stream.manager import register_stream_metrics
from repro.telemetry import Telemetry
from repro.telemetry.events import PATH_REROUTED
from repro.topology.graph import TopologyGraph
from repro.topology.model import ConnectionSpec, DeviceKind, TopologySpec

ReportCallback = Callable[[PathReport], None]

logger = logging.getLogger("repro.monitor")

DEFAULT_POLL_INTERVAL = 2.0
DEFAULT_REPORT_OFFSET = 0.5


class _Watch:
    __slots__ = ("name", "src", "dst", "path", "epoch")

    def __init__(
        self,
        name: str,
        src: str,
        dst: str,
        path: List[ConnectionSpec],
        epoch: int,
    ) -> None:
        self.name = name
        self.src = src
        self.dst = dst
        self.path = path
        # Graph topology epoch the path was resolved under; when the
        # graph moves past it the watch re-resolves before measuring.
        self.epoch = epoch


class MonitorError(RuntimeError):
    """Raised for monitor misconfiguration."""


class NetworkMonitor:
    """SNMP-based bandwidth monitor for a specified real-time system."""

    def __init__(
        self,
        build: BuildResult,
        monitor_host: str,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        poll_jitter: float = 0.05,
        report_offset: float = DEFAULT_REPORT_OFFSET,
        snmp_timeout: float = 1.0,
        snmp_retries: int = 1,
        snmp_adaptive: bool = True,
        stale_after: Optional[float] = None,
        dead_after: Optional[float] = None,
        seed: int = 0,
        telemetry: Union[bool, Telemetry] = True,
        history_retention_s: Optional[float] = None,
        history_downsample_s: Optional[float] = None,
        integrity: Union[bool, IntegrityConfig] = True,
        cross_check: bool = False,
        poll_mode: str = "get",
        pipeline_window: int = 0,
    ) -> None:
        """``integrity``: run every sample through the measurement-
        integrity pipeline (True: default knobs; an
        :class:`~repro.integrity.IntegrityConfig` tunes them; False:
        trust the agents like the paper did).  ``cross_check``: also
        poll the *secondary* end of every two-ended connection (plus
        ifSpeed) and compare both ends' octet rates each report cycle.
        Off by default because the extra polling itself adds SNMP
        traffic to the measured links.  ``poll_mode`` / ``pipeline_window``
        pass straight to :class:`~repro.core.poller.SnmpPoller` (GetBulk
        batching and bounded-in-flight scheduling for large target
        counts)."""
        if not 0 < report_offset < poll_interval:
            raise MonitorError(
                f"report_offset must lie inside the poll interval, got "
                f"{report_offset!r} vs {poll_interval!r}"
            )
        self.build = build
        self.spec: TopologySpec = build.spec
        self.network = build.network
        self.monitor_host = self.network.host(monitor_host)
        self.poll_interval = poll_interval
        self.report_offset = report_offset
        self.sim = self.network.sim
        # One telemetry hub for the whole stack: the manager's RTT
        # quantiles, the poller's cycle spans, the calculator's staleness
        # figures and the middleware's QoS events all share it.  A span
        # slower than the poll interval is by definition a slow cycle
        # (its responses spilled past the next poll).
        if isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        else:
            self.telemetry = Telemetry(
                clock=lambda: self.sim.now,
                enabled=bool(telemetry),
                slow_threshold=poll_interval,
            )
        self.manager = SnmpManager(
            self.monitor_host,
            timeout=snmp_timeout,
            retries=snmp_retries,
            adaptive=snmp_adaptive,
            telemetry=self.telemetry,
        )
        self.rates = RateTable()
        self.link_state: Optional[LinkStateRegistry] = None
        self.trap_receiver = None
        # Staleness bounds: a sample normally arrives every cycle, so age
        # beyond ~2.5 intervals means consecutive polls were lost (the
        # data is suspect) and beyond ~6 intervals it is no longer data.
        if stale_after is None:
            stale_after = poll_interval * 2.5
        if dead_after is None:
            dead_after = max(poll_interval * 6.0, stale_after * 2.0)
        self.stale_after = stale_after
        self.dead_after = dead_after
        # History storage: compressed tsdb columns (always) plus the full
        # report objects.  ``history_retention_s`` bounds both -- chunks
        # older than the horizon are downsampled (when configured) and
        # dropped, keeping hour-scale runs memory-flat.
        if history_retention_s is not None and history_retention_s <= 0:
            raise MonitorError(
                f"history_retention_s must be positive, got {history_retention_s!r}"
            )
        self.history = MeasurementHistory(
            retention_s=history_retention_s,
            downsample_s=history_downsample_s,
        )
        self._watches: Dict[str, _Watch] = {}
        self._subscribers: List[ReportCallback] = []
        self.cross_check = cross_check
        self._cross_pairs = two_ended_pairs(self.spec) if cross_check else []
        self._poller = SnmpPoller(
            self.manager,
            targets=self._build_targets(),
            interval=poll_interval,
            jitter=poll_jitter,
            seed=seed,
            rate_table=self.rates,
            telemetry=self.telemetry,
            poll_mode=poll_mode,
            pipeline_window=pipeline_window,
        )
        # Let the manager label RTT samples by agent name, not IP.
        for target in self._poller.targets:
            self.manager.agent_labels[target.address] = target.node
        # Measurement-integrity pipeline: validates every sample before
        # it reaches the rate table and quarantines untrustworthy
        # interfaces.  The metric families are registered either way so
        # ``stats()`` keys resolve even with the pipeline disabled.
        register_integrity_metrics(self.telemetry.registry)
        self.integrity: Optional[IntegrityPipeline] = None
        if integrity:
            config = integrity if isinstance(integrity, IntegrityConfig) else None
            self.integrity = IntegrityPipeline(
                speeds=self._interface_speeds(),
                poll_interval=poll_interval,
                config=config,
                pairs=self._cross_pairs,
                health=self._poller.health,
                telemetry=self.telemetry,
                now=self.sim.now,
            )
            self._poller.integrity = self.integrity
        self.calculator = BandwidthCalculator(
            self.spec,
            self.rates,
            stale_after=stale_after,
            dead_after=dead_after,
            health=self._poller.health,
            telemetry=self.telemetry,
            integrity=self.integrity,
        )
        # One shared graph: watch traversal memoizes into it, and matrix
        # consumers (the CLI passes it to BandwidthMatrix) reuse the memos.
        self.graph = TopologyGraph(self.spec)
        # Streaming surface (see :meth:`enable_streaming`).  The metric
        # families are registered unconditionally, like the integrity
        # ones, so ``stats()`` keys resolve with streaming disabled.
        register_stream_metrics(self.telemetry.registry)
        self.stream = None  # Optional[MatrixPublisher]
        # Active probing plane (see :meth:`enable_probing`); metric
        # families registered unconditionally for the same reason.
        register_probe_metrics(self.telemetry.registry)
        self.prober = None  # Optional[ProbeScheduler]
        # Self-healing topology plane (see :meth:`enable_topology_sync`).
        register_topology_metrics(self.telemetry.registry)
        self.topology_sync = None  # Optional[TopologySync]
        self._report_task = None
        self._m_reports = self.telemetry.registry.counter(
            "reports_total", "path reports emitted"
        )
        self._m_reroutes = self.telemetry.registry.counter(
            "path_reroutes_total",
            "watched paths re-resolved onto different links",
        )
        self._register_health_gauges()
        self._register_dataflow_gauges()

    def _register_health_gauges(self) -> None:
        """Function-backed gauges sampling the health tracker on read."""
        from repro.core.health import HealthState

        registry = self.telemetry.registry
        health = self._poller.health
        for state in HealthState:
            gauge = registry.gauge(
                f"agents_{state.value}",
                f"polled agents currently in the {state.value} state",
            )
            gauge.set_function(lambda s=state: float(health.count(s)))
        registry.gauge(
            "polls_suppressed", "routine polls suppressed by the circuit breaker"
        ).set_function(lambda: float(health.polls_suppressed))
        registry.gauge(
            "watched_paths", "path watches currently registered"
        ).set_function(lambda: float(len(self._watches)))
        registry.gauge(
            "history_samples", "report samples held in the history tsdb"
        ).set_function(lambda: float(self.history.storage_stats().samples))
        registry.gauge(
            "history_dropped_samples", "history samples dropped by retention"
        ).set_function(lambda: float(self.history.dropped_samples))
        registry.gauge(
            "history_bytes", "compressed bytes held by the history tsdb"
        ).set_function(lambda: float(self.history.storage_stats().nbytes))

    def _register_dataflow_gauges(self) -> None:
        """Cache-effectiveness gauges for the incremental dataflow."""
        registry = self.telemetry.registry
        registry.gauge(
            "dataflow_cache_hits",
            "connection measurements served from the epoch cache",
        ).set_function(lambda: float(self.calculator.cache_hits))
        registry.gauge(
            "dataflow_recomputes",
            "connection measurements recomputed from the raw tables",
        ).set_function(lambda: float(self.calculator.recomputes))
        # Plain stored gauge: BandwidthMatrix sets it per snapshot (the
        # get-or-create registry hands both of us the same family).
        registry.gauge(
            "dataflow_dirty_pairs",
            "host pairs crossing a dirty connection in the last matrix snapshot",
        )

    @property
    def reports_emitted(self) -> int:
        return int(self._m_reports.value)

    # ------------------------------------------------------------------
    # Target construction
    # ------------------------------------------------------------------
    def _build_targets(self) -> List[PollTarget]:
        """One target per SNMP node, covering every measurable connection.

        In cross-check mode the secondary end of every two-ended
        connection is polled too (the redundancy the cross-checker
        compares), and every target also reads ifSpeed so the
        speed-mismatch validator has the agent's own claim.
        """
        needed = required_poll_targets(self.spec, list(self.spec.connections))
        # Inter-switch uplinks are polled at BOTH ends.  The counter
        # source alone leaves the far switch's port invisible, yet a
        # redundant uplink can fail (or be spanning-tree blocked) in a
        # way only the far side observes; link-state tracking must see
        # linkDown from either end.
        for conn in self.spec.connections:
            ends = conn.endpoints()
            nodes = [self.spec.node(end.node) for end in ends]
            if not all(
                n.kind is DeviceKind.SWITCH and n.snmp_enabled for n in nodes
            ):
                continue
            for end, node in zip(ends, nodes):
                indexes = needed.setdefault(node.name, [])
                if_index = if_index_of(node, end.interface)
                if if_index not in indexes:
                    indexes.append(if_index)
                    indexes.sort()
        if self._cross_pairs:
            for node_name, extra in extra_poll_indexes(self._cross_pairs).items():
                indexes = needed.setdefault(node_name, [])
                for if_index in extra:
                    if if_index not in indexes:
                        indexes.append(if_index)
                indexes.sort()
        targets: List[PollTarget] = []
        for node_name, if_indexes in sorted(needed.items()):
            node = self.spec.node(node_name)
            targets.append(
                PollTarget(
                    node=node_name,
                    address=self.network.ip_of(node_name),
                    if_indexes=if_indexes,
                    community=node.snmp_community,
                    include_speed=self.cross_check,
                )
            )
        return targets

    def _interface_speeds(self) -> Dict[tuple, float]:
        """Topology-declared speed per polled (node, ifIndex)."""
        speeds: Dict[tuple, float] = {}
        for target in self._poller.targets:
            node = self.spec.node(target.node)
            for if_index in target.if_indexes:
                speeds[(target.node, if_index)] = node.interfaces[if_index - 1].speed_bps
        return speeds

    @property
    def poller(self) -> SnmpPoller:
        return self._poller

    @property
    def health(self) -> "AgentHealthTracker":
        """The per-agent health tracker (reachability state machine)."""
        return self._poller.health

    def agent_health(self) -> Dict[str, str]:
        """Current health state name per polled agent."""
        return {
            target.node: self._poller.health.state(target.node).value
            for target in self._poller.targets
        }

    # ------------------------------------------------------------------
    # Link-state notifications (traps)
    # ------------------------------------------------------------------
    def enable_trap_listener(self, confirmed: bool = False) -> "LinkStateRegistry":
        """Listen for linkDown/linkUp notifications, fold them into reports.

        Starts a receiver on this host's UDP :162, registers every SNMP
        node's agent as a notification source, and marks affected
        connections so downed links report zero available bandwidth
        immediately instead of at the next polling interval.

        ``confirmed=True`` makes agents send acknowledged InformRequests
        instead of fire-and-forget traps: notifications that cannot cross
        a dead link are retransmitted and arrive once connectivity
        returns (the registry discards ones a newer event has overtaken).
        Returns the registry for inspection.  Idempotent.
        """
        if self.trap_receiver is not None:
            return self.link_state
        from repro.snmp.trap import TrapReceiver  # local: optional feature

        if self.link_state is None:
            addresses = {
                node.name: self.network.ip_of(node.name)
                for node in self.spec.nodes
                if node.snmp_enabled and node.name in self.build.agents
            }
            self.link_state = LinkStateRegistry(self.spec, addresses)
            self.calculator.link_state = self.link_state
        self.trap_receiver = TrapReceiver(
            self.monitor_host,
            callback=self.link_state.apply_trap,
        )
        monitor_ip = self.monitor_host.primary_ip
        for agent in self.build.agents.values():
            if confirmed:
                agent.enable_link_informs(monitor_ip)
            else:
                agent.enable_link_traps(monitor_ip)
        return self.link_state

    def enable_oper_status_tracking(self) -> "LinkStateRegistry":
        """Poll ifOperStatus as a link-state source (trap backstop).

        Works with or without the trap listener: each polling cycle also
        reads every tracked interface's operational status and folds it
        into the link-state registry.  Detection latency is one polling
        interval -- slower than traps, but immune to trap loss.  A trap
        and a poll can disagree transiently around a transition; the next
        cycle converges them.  Idempotent.
        """
        if self.link_state is None:
            addresses = {
                node.name: self.network.ip_of(node.name)
                for node in self.spec.nodes
                if node.snmp_enabled and node.name in self.build.agents
            }
            self.link_state = LinkStateRegistry(self.spec, addresses)
            self.calculator.link_state = self.link_state
        for target in self._poller.targets:
            target.include_oper_status = True
        self._poller.on_status = self.link_state.apply_oper_status
        return self.link_state

    # ------------------------------------------------------------------
    # Watches
    # ------------------------------------------------------------------
    def watch_path(self, src: str, dst: str, name: Optional[str] = None) -> str:
        """Monitor the communication path between two hosts.

        Returns the watch label used in :attr:`history`.  The path is
        traversed once, up front, from the specification -- the paper's
        design (topology is static between spec updates).
        """
        label = name if name else f"{src}<->{dst}"
        if label in self._watches:
            raise MonitorError(f"path watch {label!r} already exists")
        path = find_path(self.graph, src, dst)
        self._watches[label] = _Watch(
            label, src, dst, path, self.graph.topology_epoch
        )
        logger.info(
            "watching path %s: %d connection(s) %s -> %s", label, len(path), src, dst
        )
        return label

    def unwatch_path(self, label: str) -> None:
        if label not in self._watches:
            raise MonitorError(f"no path watch {label!r}")
        del self._watches[label]

    def watched_paths(self) -> List[str]:
        return sorted(self._watches)

    def path_of(self, label: str) -> List[ConnectionSpec]:
        return list(self._watches[label].path)

    def subscribe(self, callback: ReportCallback) -> None:
        """Receive every future :class:`PathReport` (the RM hook)."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Streaming subscriptions
    # ------------------------------------------------------------------
    def enable_streaming(
        self,
        hosts: Optional[Sequence[str]] = None,
        significance: Union[bool, "SignificanceFilter", None] = True,
        incremental: bool = True,
    ) -> "MatrixPublisher":
        """Publish matrix changes as typed stream events each cycle.

        Builds a :class:`~repro.core.matrix.BandwidthMatrix` over this
        monitor's calculator (sharing its epoch caches and topology
        graph) and a :class:`~repro.stream.MatrixPublisher` on top; each
        report cycle then also publishes the matrix's dirty pairs to the
        publisher's subscribers.  ``significance=True`` installs the
        default adaptive :class:`~repro.stream.QuantileDeadbandFilter`;
        pass a filter instance to tune it, or ``False``/``None`` to
        deliver every change.  ``hosts`` restricts the matrix (default:
        every host in the spec).  Idempotent -- returns the existing
        publisher on repeat calls.
        """
        if self.stream is not None:
            return self.stream
        from repro.core.matrix import BandwidthMatrix
        from repro.stream import (
            MatrixPublisher,
            QuantileDeadbandFilter,
            SubscriptionManager,
        )

        if significance is True:
            significance = QuantileDeadbandFilter()
        elif significance is False:
            significance = None
        matrix = BandwidthMatrix(
            self.spec,
            self.calculator,
            hosts=hosts,
            incremental=incremental,
            graph=self.graph,
        )
        self.stream = MatrixPublisher(
            matrix,
            manager=SubscriptionManager(self.telemetry),
            significance=significance,
        )
        return self.stream

    # ------------------------------------------------------------------
    # Active probing
    # ------------------------------------------------------------------
    def enable_probing(self, **options) -> "ProbeScheduler":
        """Attach a budgeted active-probing plane over the watched paths.

        Builds a :class:`~repro.probe.ProbeScheduler` that sends one UDP
        probe train per round (round interval sized so probe load stays
        under ``budget_fraction`` of the narrowest link on any watched
        path) and cross-validates each train against the passive report;
        confirmed disagreements cap the path's report confidence, emit
        telemetry/stream events, and feed the integrity quarantine.
        ``options`` are forwarded to the scheduler (``budget_fraction``,
        ``count``, ``payload_size``, ``timeout``, ``rel_tolerance``,
        ``breach_count``, ``cross_validate``, ...).  If the monitor is
        already running, probing starts immediately; otherwise it starts
        with :meth:`start`.  Idempotent -- returns the existing
        scheduler on repeat calls (options are then ignored).
        """
        if self.prober is not None:
            return self.prober
        from repro.probe.scheduler import ProbeScheduler

        self.prober = ProbeScheduler(self, **options)
        if self._report_task is not None:
            self.prober.start()
        return self.prober

    # ------------------------------------------------------------------
    # Self-healing topology
    # ------------------------------------------------------------------
    def enable_topology_sync(self, **options) -> "TopologySync":
        """Keep the active topology in sync with the live network.

        Builds a :class:`~repro.core.topology_sync.TopologySync` running
        periodic discovery rounds: light rounds walk only the switches'
        spanning-tree port states, full rounds re-discover host
        attachments.  Changes flush the path memos (bumping the graph's
        topology epoch), so the next report cycle re-resolves watched
        paths -- retiring the manual ``invalidate_paths()`` contract.
        ``options`` are forwarded (``interval``, ``full_every``,
        ``community``).  If the monitor is already running, syncing
        starts immediately; otherwise it starts with :meth:`start`.
        Idempotent -- returns the existing sync on repeat calls.
        """
        if self.topology_sync is not None:
            return self.topology_sync
        from repro.core.topology_sync import TopologySync

        self.topology_sync = TopologySync(self, **options)
        if self._report_task is not None:
            self.topology_sync.start()
        return self.topology_sync

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin polling (and reporting one offset later each cycle)."""
        if self._report_task is not None:
            raise MonitorError("monitor already started")
        first_poll = self.sim.now if at is None else at
        logger.info(
            "monitor on %s starting at t=%.3f: %d poll target(s), interval %.2fs",
            self.monitor_host.name, first_poll, len(self._poller.targets),
            self.poll_interval,
        )
        self._poller.start(first_poll_at=first_poll)
        # First report after the second poll's responses have landed.
        first_report = first_poll + self.poll_interval + self.report_offset
        self._report_task = self.sim.call_every(
            self.poll_interval, self._emit_reports, start=first_report
        )
        # Probing waits for passive data: its first round lands one probe
        # round interval after the first passive report exists.
        if self.prober is not None and not self.prober.started:
            self.prober.start(after=first_report)
        # Topology sync rounds interleave with the polls; the first one
        # fires half a cycle in so STP walks don't collide with the
        # counter polls on the wire.
        if self.topology_sync is not None and not self.topology_sync.started:
            self.topology_sync.start(at=first_poll + self.poll_interval / 2.0)

    def stop(self) -> None:
        self._poller.stop()
        if self._report_task is not None:
            self._report_task.cancel()
            self._report_task = None
        if self.prober is not None:
            self.prober.stop()
        if self.topology_sync is not None:
            self.topology_sync.stop()
        self.manager.cancel_all()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _emit_reports(self) -> None:
        # Cross-checks run first so a mismatch discovered this cycle is
        # already reflected (trust decay, quarantine) in the reports
        # computed just below.
        if self.integrity is not None:
            self.integrity.run_cross_checks(self.sim.now)
        # Subscribers may add/remove watches in reaction to a report (the
        # application runtime rebinds paths on reallocation); iterate a copy.
        for watch in list(self._watches.values()):
            if watch.epoch != self.graph.topology_epoch:
                self._refresh_watch(watch)
            report = self._apply_probe_cap(
                self.calculator.measure_path(
                    watch.path, watch.src, watch.dst, time=self.sim.now,
                    name=watch.name,
                    redundant=pair_redundant(self.graph, watch.src, watch.dst),
                )
            )
            self.history.append(report)
            self._m_reports.inc()
            for callback in self._subscribers:
                callback(report)
        # The stream publisher runs after the watches so push-mode
        # subscribers (the RM stream adapter) observe the same cycle
        # order snapshot consumers do: watches first, then the matrix.
        if self.stream is not None:
            self.stream.publish(self.sim.now)

    def current_report(self, label: str, _probe_cap: bool = True) -> PathReport:
        """Compute a report right now (outside the periodic schedule).

        ``_probe_cap=False`` skips the active-disagreement confidence
        cap -- the probe cross-validator uses it to compare against the
        raw passive figure rather than its own earlier judgement.
        """
        try:
            watch = self._watches[label]
        except KeyError:
            raise MonitorError(f"no path watch {label!r}") from None
        if watch.epoch != self.graph.topology_epoch:
            self._refresh_watch(watch)
        report = self.calculator.measure_path(
            watch.path, watch.src, watch.dst, time=self.sim.now, name=watch.name,
            redundant=pair_redundant(self.graph, watch.src, watch.dst),
        )
        return self._apply_probe_cap(report) if _probe_cap else report

    def _refresh_watch(self, watch: _Watch) -> None:
        """Re-resolve a watch's path after a topology-epoch move.

        The path only actually changes when the failed/blocked link lay
        on it; an unchanged re-resolution is silent.  A pair left with
        no active path keeps its last path -- its reports then show the
        dead connection as down rather than vanishing, which is what a
        QoS consumer must see during a partition.
        """
        watch.epoch = self.graph.topology_epoch
        try:
            new_path = find_path(self.graph, watch.src, watch.dst)
        except NoPathError:
            logger.warning(
                "watch %s: no active path after topology change; keeping "
                "last-known path", watch.name,
            )
            return
        if new_path == watch.path:
            return
        # Render the connection series, not just node names: a failover
        # between parallel uplinks visits the same nodes over different
        # links, and the event must show which.
        old_nodes = tuple(str(conn) for conn in watch.path)
        new_nodes = tuple(str(conn) for conn in new_path)
        watch.path = new_path
        self._m_reroutes.inc()
        logger.warning(
            "watch %s rerouted: %s ==> %s",
            watch.name, " | ".join(old_nodes), " | ".join(new_nodes),
        )
        self.telemetry.events.publish(
            PATH_REROUTED,
            self.sim.now,
            watch=watch.name,
            src=watch.src,
            dst=watch.dst,
            old_path=" | ".join(old_nodes),
            new_path=" | ".join(new_nodes),
            topology_epoch=self.graph.topology_epoch,
        )
        if self.stream is not None:
            from repro.stream.events import PathRerouted, pair_key

            self.stream.manager.deliver(
                PathRerouted(
                    pair=pair_key(watch.src, watch.dst),
                    time=self.sim.now,
                    epoch=self.stream.clock.epoch,
                    watch=watch.name,
                    old_path=old_nodes,
                    new_path=new_nodes,
                    topology_epoch=self.graph.topology_epoch,
                )
            )

    def _apply_probe_cap(self, report: PathReport) -> PathReport:
        """Cap confidence while the probe plane disputes this path."""
        if self.prober is None:
            return report
        cap = self.prober.confidence_cap_for(report.label)
        if cap is None or report.confidence <= cap:
            return report
        return dataclasses.replace(
            report, confidence=min(report.confidence, cap), degraded=True
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Operational counters, sourced from the telemetry registry.

        The keys are a stable public surface (tests and operators rely on
        them); each maps onto the registry metric that now owns the
        underlying count.
        """
        value = self.telemetry.registry.value
        return {
            "poll_cycles": value("poll_cycles_total"),
            "poll_errors": value("poll_errors_total"),
            "poll_timeout_errors": value("poll_timeout_errors_total"),
            "poll_error_responses": value("poll_error_responses_total"),
            "poll_parse_errors": value("poll_parse_errors_total"),
            "polls_suppressed": value("polls_suppressed"),
            "agent_restarts": value("agent_restarts_total"),
            "agents_healthy": value("agents_healthy"),
            "agents_dead": value("agents_dead"),
            "samples": value("poll_samples_total"),
            "reports": value("reports_total"),
            "history_samples": value("history_samples"),
            "history_dropped": value("history_dropped_samples"),
            "snmp_requests": value("snmp_requests_total"),
            "snmp_responses": value("snmp_responses_total"),
            "snmp_timeouts": value("snmp_timeouts_total"),
            "snmp_retransmissions": value("snmp_retransmissions_total"),
            "integrity_violations": value("integrity_violations_total"),
            "integrity_rejected": value("integrity_samples_rejected_total"),
            "integrity_quarantined": value("quarantined_interfaces"),
            "cross_check_mismatches": value("integrity_cross_check_mismatches_total"),
            "cache_hits": value("dataflow_cache_hits"),
            "recomputes": value("dataflow_recomputes"),
            "dirty_pairs": value("dataflow_dirty_pairs"),
            "stream_subscribers": value("stream_subscribers"),
            "stream_events_delivered": value("stream_events_delivered_total"),
            "stream_events_suppressed": value("stream_events_suppressed_total"),
            "stream_events_dropped": value("stream_events_dropped_total"),
            "probe_trains": value("probe_trains_total"),
            "probe_packets_sent": value("probe_packets_sent_total"),
            "probe_packets_lost": value("probe_packets_lost_total"),
            "probe_bytes_sent": value("probe_bytes_sent_total"),
            "probe_disagreements": value("probe_disagreements_total"),
            "probe_recoveries": value("probe_recoveries_total"),
            "probe_active_disagreements": value("probe_active_disagreements"),
            "topology_rounds": value("topology_rounds_total"),
            "topology_full_rounds": value("topology_full_rounds_total"),
            "topology_changes": value("topology_changes_total"),
            "path_reroutes": value("path_reroutes_total"),
            "blocked_connections": value("topology_blocked_connections"),
        }
