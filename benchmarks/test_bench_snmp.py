"""Benchmark of Table 1: serving the paper's MIB-II objects over SNMP.

Times (a) a full GET of the six Table-1 objects end-to-end across the
simulated LAN, and (b) the raw BER codec, which bounds every SNMP
operation the monitor performs.
"""

from repro.simnet.network import Network
from repro.snmp.agent import SnmpAgent
from repro.snmp.datatypes import Counter32, Gauge32, TimeTicks
from repro.snmp.manager import SnmpManager
from repro.snmp.message import VERSION_2C, Message
from repro.snmp.mib import (
    IF_IN_OCTETS,
    IF_IN_UCAST_PKTS,
    IF_OUT_NUCAST_PKTS,
    IF_OUT_OCTETS,
    IF_SPEED,
    SYS_UPTIME,
    build_mib2,
)
from repro.snmp.pdu import Pdu

TABLE1_OIDS = [
    SYS_UPTIME,
    IF_SPEED + "1",
    IF_IN_OCTETS + "1",
    IF_IN_UCAST_PKTS + "1",
    IF_OUT_OCTETS + "1",
    IF_OUT_NUCAST_PKTS + "1",
]


def build_pair():
    net = Network()
    mon = net.add_host("L")
    target = net.add_host("S1")
    sw = net.add_switch("sw", 4, managed=False)
    net.connect(mon, sw)
    net.connect(target, sw)
    net.announce_hosts()
    SnmpAgent(target, build_mib2(target, net.sim), response_delay=0.0, response_jitter=0.0)
    manager = SnmpManager(mon)
    return net, manager, target


def test_bench_table1_get_roundtrip(benchmark):
    """One poll of the paper's Table-1 objects, end-to-end in the sim."""
    net, manager, target = build_pair()
    box = {}

    def one_get():
        box.clear()
        manager.get(target.primary_ip, TABLE1_OIDS, lambda vbs: box.update(v=vbs))
        net.sim.run_until_idle()
        return box["v"]

    varbinds = benchmark(one_get)
    assert len(varbinds) == 6
    assert isinstance(varbinds[0].value, TimeTicks)
    assert isinstance(varbinds[1].value, Gauge32)
    assert all(isinstance(vb.value, Counter32) for vb in varbinds[2:])


def test_bench_ber_encode(benchmark):
    pdu = Pdu.get_request(42, TABLE1_OIDS)
    message = Message(VERSION_2C, "public", pdu)
    raw = benchmark(message.encode)
    assert 100 < len(raw) < 250


def test_bench_ber_decode(benchmark):
    raw = Message(VERSION_2C, "public", Pdu.get_request(42, TABLE1_OIDS)).encode()
    decoded = benchmark(Message.decode, raw)
    assert decoded.pdu.request_id == 42


def test_bench_mib_get(benchmark):
    net = Network()
    host = net.add_host("S1")
    tree = build_mib2(host, net.sim)

    def read_all():
        return [tree.get(oid) for oid in TABLE1_OIDS]

    values = benchmark(read_all)
    assert all(v is not None for v in values)
