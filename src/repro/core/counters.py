"""Counter-source resolution: which polled interface measures a connection.

A connection's traffic can be read from either of its two ends ("the
amount of data transmitted as reported by SNMP polling from either the
host or the switch").  Not every end is SNMP-enabled -- in the paper's
testbed S3-S6 run no daemon and hubs never do -- so the monitor picks, per
connection, a *counter source*: the (agent, ifIndex) pair whose MIB-II
octet counters stand for that connection's traffic.

Preference order when both ends are measurable:

1. the **host** end -- a host NIC counts exactly the frames delivered to
   or sent by that host, while a switch port additionally counts flooded
   frames that merely pass by;
2. otherwise the **device** (switch) end -- this is how the paper measures
   "the bandwidth between S4 and S5 ... by polling the interfaces on the
   switch that are connected to S4 and S5";
3. otherwise the connection is unmeasurable and reported as such (the
   spec validator warns about this at parse time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.topology.model import (
    ConnectionSpec,
    DeviceKind,
    InterfaceRef,
    NodeSpec,
    TopologySpec,
)


class UnmeasurableConnection(RuntimeError):
    """Raised when a traffic figure is demanded for an unobservable link."""

    def __init__(self, conn: ConnectionSpec) -> None:
        super().__init__(f"connection {conn} has no SNMP-enabled endpoint")
        self.connection = conn


@dataclass(frozen=True)
class CounterSource:
    """The polled interface standing for one connection's traffic."""

    node: str  # SNMP-enabled node whose agent is polled
    if_index: int  # MIB-II ifIndex of the interface on that node
    endpoint: InterfaceRef  # which end of the connection this is

    def key(self) -> Tuple[str, int]:
        return (self.node, self.if_index)


def if_index_of(node: NodeSpec, local_name: str) -> int:
    """MIB-II ifIndex of a spec interface (1-based declaration order).

    The builder creates simulator interfaces in spec order and the MIB
    numbers them identically, so this mapping is exact by construction.
    """
    for i, iface in enumerate(node.interfaces):
        if iface.local_name == local_name:
            return i + 1
    raise KeyError(f"node {node.name!r} has no interface {local_name!r}")


def resolve_counter_source(spec: TopologySpec, conn: ConnectionSpec) -> Optional[CounterSource]:
    """The preferred counter source for one connection (None: unmeasurable)."""
    host_end: Optional[InterfaceRef] = None
    device_end: Optional[InterfaceRef] = None
    for end in conn.endpoints():
        node = spec.node(end.node)
        if not node.snmp_enabled:
            continue
        if node.kind is DeviceKind.HOST:
            host_end = host_end or end
        elif node.kind is DeviceKind.SWITCH:
            device_end = device_end or end
        # Hubs cannot run agents; ignore even if misdeclared.
    chosen = host_end or device_end
    if chosen is None:
        return None
    node = spec.node(chosen.node)
    return CounterSource(
        node=node.name,
        if_index=if_index_of(node, chosen.interface),
        endpoint=chosen,
    )


def resolve_counter_sources(
    spec: TopologySpec,
) -> Dict[Tuple[InterfaceRef, InterfaceRef], Optional[CounterSource]]:
    """Counter sources for every connection, keyed by its endpoint pair."""
    return {
        conn.endpoints(): resolve_counter_source(spec, conn) for conn in spec.connections
    }


def hub_host_connections(spec: TopologySpec) -> Dict[str, List[ConnectionSpec]]:
    """Host-facing connections of every hub, in declaration order.

    The hub bandwidth rule sums the traffic of all hosts sharing the
    collision domain; the incremental calculator computes that sum once
    per hub per epoch and shares it across every leg, so it needs the
    leg list resolved up front rather than rediscovered per measurement.
    """
    hubs: Dict[str, List[ConnectionSpec]] = {
        node.name: [] for node in spec.nodes if node.kind is DeviceKind.HUB
    }
    for conn in spec.connections:
        for end, other in ((conn.end_a, conn.end_b), (conn.end_b, conn.end_a)):
            if end.node in hubs and spec.node(other.node).kind is DeviceKind.HOST:
                hubs[end.node].append(conn)
    return hubs


def required_poll_targets(
    spec: TopologySpec, connections: List[ConnectionSpec]
) -> Dict[str, List[int]]:
    """Which (node -> ifIndexes) must be polled to measure ``connections``.

    This is what lets the monitor poll only what its watched paths need
    instead of walking every agent's whole ifTable each interval.
    """
    targets: Dict[str, List[int]] = {}
    for conn in connections:
        source = resolve_counter_source(spec, conn)
        if source is None:
            continue
        indexes = targets.setdefault(source.node, [])
        if source.if_index not in indexes:
            indexes.append(source.if_index)
    for indexes in targets.values():
        indexes.sort()
    return targets
