"""Scenario drivers reproducing the paper's evaluation (§4).

One module per artefact:

- :mod:`repro.experiments.testbed`  -- the Figure 3 LIRTSS LAN testbed.
- :mod:`repro.experiments.fig4`     -- §4.3.1 dynamically varying load.
- :mod:`repro.experiments.table2`   -- Table 2 statistics over that run.
- :mod:`repro.experiments.fig5`     -- §4.3.2 hosts connected by a hub.
- :mod:`repro.experiments.fig6`     -- §4.3.3 hosts connected by a switch.

Each module exposes ``run(...)`` returning a result object with the
generated-load series, the measured series, and (where the paper reports
them) the accuracy statistics, plus a ``main()`` that prints the same
rows/series the paper shows.
"""

from repro.experiments.testbed import TESTBED_SPEC_TEXT, build_testbed
from repro.experiments.scenarios import Scenario, SeriesPair

__all__ = [
    "Scenario",
    "SeriesPair",
    "TESTBED_SPEC_TEXT",
    "build_testbed",
]
