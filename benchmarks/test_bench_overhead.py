"""Ablation: where the paper's measurement overhead comes from.

The paper decomposes its ~4 % systematic error into "about 2 %" from
IP/UDP headers at a 1500-byte MTU and another ~2 % from SNMP queries and
acknowledgements.  These benches isolate each source:

- a datagram-size sweep shows the header share growing as payloads
  shrink (28/(payload) exactly);
- the monitoring-traffic bench measures the SNMP footprint itself, as a
  rate and as a fraction of a paper-scale load.
"""

import pytest

from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.packet import IPV4_HEADER_SIZE, UDP_HEADER_SIZE
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

HEADERS = UDP_HEADER_SIZE + IPV4_HEADER_SIZE


@pytest.mark.parametrize("payload", [1472, 972, 472, 100])
def test_bench_header_overhead_sweep(benchmark, payload):
    """Measured-vs-payload ratio equals (payload+28)/payload exactly."""

    def run_one():
        build = build_testbed()
        net = build.network
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        label = monitor.watch_path("S1", "N1")
        load = StaircaseLoad(
            net.host("L"), net.ip_of("N1"),
            StepSchedule([(2.0, 100_000.0), (40.0, 0.0)]),
            payload_size=payload,
        )
        load.start()
        monitor.start()
        net.run(40.0)
        series = monitor.history.series(label).between(10.0, 38.0)
        return float(series.used().mean())

    measured = benchmark.pedantic(run_one, rounds=1, iterations=1)
    expected_ratio = (payload + HEADERS) / payload
    ratio = measured / 100_000.0
    print(f"\npayload {payload:5d} B: measured/generated = {ratio:.4f} "
          f"(headers predict {expected_ratio:.4f})")
    # Background (~1 KB/s = 1 %) sits on top of the exact header share.
    assert ratio == pytest.approx(expected_ratio, abs=0.02)


def test_bench_snmp_monitoring_footprint(benchmark):
    """The monitor's own traffic: the paper's 'SNMP queries' overhead."""

    def run_idle_monitor():
        build = build_testbed()
        monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
        monitor.watch_path("S1", "N1")
        net = build.network
        baseline = sum(h.interfaces[0].counters.out_octets for h in net.hosts.values())
        monitor.start()
        net.run(60.0)
        total = sum(h.interfaces[0].counters.out_octets for h in net.hosts.values())
        return (total - baseline) / 60.0  # bytes/second of host-side traffic

    rate = benchmark.pedantic(run_idle_monitor, rounds=1, iterations=1)
    print(f"\nmonitoring+chatter traffic at host NICs: {rate / 1000:.2f} KB/s")
    # A few KB/s across nine hosts -- single-digit percent of a 100 KB/s
    # load, same order as the paper's ~2 % attribution.
    assert 0.3 < rate / 1000 < 10.0
