"""Tests for the all-pairs bandwidth matrix."""

import numpy as np
import pytest

from repro.core.matrix import BandwidthMatrix, MatrixError
from repro.core.monitor import NetworkMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule


def monitored_matrix(hosts=None, load_to=None, rate=300_000.0):
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    net = build.network
    if load_to:
        StaircaseLoad(
            net.host("L"), net.ip_of(load_to), StepSchedule([(2.0, rate)])
        ).start()
    monitor.start()
    net.run(10.0)
    matrix = BandwidthMatrix(build.spec, monitor.calculator, hosts=hosts)
    return build, matrix


class TestSnapshot:
    def test_full_testbed_matrix(self):
        build, matrix = monitored_matrix()
        snap = matrix.snapshot(time=10.0)
        assert len(snap.hosts) == 9
        assert len(snap.reports) == 9 * 8 // 2

    def test_symmetry(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2", "N1"])
        snap = matrix.snapshot(time=10.0)
        values = snap.values("available")
        assert np.allclose(values, values.T, equal_nan=True)
        assert np.isnan(values.diagonal()).all()

    def test_hub_pairs_capped_by_hub(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2", "N1", "N2"])
        snap = matrix.snapshot(time=10.0)
        hub_avail = snap.report("S1", "N1").available_bps
        sw_avail = snap.report("S1", "S2").available_bps
        assert hub_avail <= 10e6 / 8
        assert sw_avail > 10e6 / 8  # switch pairs see 100 Mb/s

    def test_load_shows_in_matrix(self):
        build, matrix = monitored_matrix(hosts=["S1", "N1"], load_to="N1")
        snap = matrix.snapshot(time=10.0)
        report = snap.report("S1", "N1")
        assert report.used_bps == pytest.approx(300_000 * 1.019, rel=0.05)

    def test_worst_pair_is_hub_pair_under_load(self):
        build, matrix = monitored_matrix(load_to="N1", rate=800_000.0)
        snap = matrix.snapshot(time=10.0)
        a, b, available = snap.worst_pair()
        assert {a, b} & {"N1", "N2"}, (a, b)
        assert available < 10e6 / 8

    def test_pair_lookup_both_orders(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2"])
        snap = matrix.snapshot(time=10.0)
        assert snap.report("S1", "S2") is snap.report("S2", "S1")

    def test_self_pair_rejected(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2"])
        snap = matrix.snapshot(time=10.0)
        with pytest.raises(MatrixError):
            snap.report("S1", "S1")

    def test_unknown_pair_rejected(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2"])
        snap = matrix.snapshot(time=10.0)
        with pytest.raises(MatrixError):
            snap.report("S1", "N1")


class TestRendering:
    def test_table_contains_hosts_and_units(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2", "N1"])
        text = matrix.snapshot(time=10.0).format_table()
        assert "KB/s" in text
        for host in ("S1", "S2", "N1"):
            assert host in text
        assert "-" in text  # the diagonal

    def test_utilization_metric(self):
        build, matrix = monitored_matrix(hosts=["S1", "N1"], load_to="N1",
                                         rate=800_000.0)
        snap = matrix.snapshot(time=10.0)
        util = snap.values("utilization")
        assert util[0, 1] == pytest.approx(0.65, abs=0.1)
        assert "%" in snap.format_table("utilization")

    def test_unknown_metric_rejected(self):
        build, matrix = monitored_matrix(hosts=["S1", "S2"])
        snap = matrix.snapshot(time=10.0)
        with pytest.raises(MatrixError):
            snap.values("bogus")


class TestConstruction:
    def test_device_in_host_list_rejected(self):
        build = build_testbed()
        monitor = NetworkMonitor(build, "L")
        with pytest.raises(MatrixError):
            BandwidthMatrix(build.spec, monitor.calculator, hosts=["S1", "switch"])

    def test_disconnected_pair_is_none(self):
        from repro.spec.parser import parse_spec
        from repro.core.bandwidth import BandwidthCalculator
        from repro.core.poller import RateTable

        spec = parse_spec(
            "network topology t { host A { } host B { } host C { } "
            "connect A.eth0 <-> B.eth0; }"
        )
        calc = BandwidthCalculator(spec, RateTable())
        matrix = BandwidthMatrix(spec, calc)
        snap = matrix.snapshot(time=0.0)
        assert snap.report("A", "C") is None
        assert "n/a" in snap.format_table()
