"""Fault-tolerant distributed network monitoring -- paper §5 future work.

One monitor polling every agent from one host (the paper's design) makes
that host's links a hot spot and scales linearly in one manager's request
load.  The distributed variant partitions the SNMP targets across several
*worker* hosts; each worker polls its share locally and ships the derived
rate samples to a *coordinator* host over the same simulated network.
The coordinator merges them into one
:class:`~repro.core.poller.RateTable` and computes path reports exactly
like the single monitor.

The plane is built to survive its own failures, not just the network's:

**Worker liveness.**  Every worker ships periodic heartbeats (lease
renewals -- any datagram from a worker renews its lease); the coordinator
runs a :class:`~repro.core.health.WorkerLeaseTracker` per-worker state
machine (alive -> suspect -> dead -> recovering, with hysteresis on the
way back) and publishes transitions on the telemetry event bus.

**Reliable sample shipping.**  Samples travel in *sequenced, batched
report datagrams*: each worker stamps batches with a per-incarnation
monotonic sequence number and keeps a bounded drop-oldest resend buffer.
The coordinator detects sequence gaps (from later batches, or from the
``next_seq`` carried by heartbeats), requests selective retransmits
(ARQ with capped retries and exponential backoff) and, when a gap is
unfillable, *marks the worker's counter sources degraded* in a
:class:`~repro.core.dataflow.DegradedSourceSet` so dependent path
reports drop to low confidence instead of presenting the last sample it
happened to see as current.  Duplicate and stale-incarnation batches are
discarded by sequence number, so retransmits and worker restarts never
double-count a sample.

**Automatic failover.**  When a lease expires the coordinator
repartitions the poll targets over the surviving workers
(affinity-first, deterministically) and ships each affected worker its
new assignment as real control traffic; when the worker recovers (and
holds its lease through the hysteresis window) the plane rebalances
back.  Assignments are versioned and carried to idempotent effect: each
heartbeat echoes the worker's applied version, and the coordinator
re-sends the assignment whenever the echo is stale -- lost control
datagrams heal themselves within a heartbeat.  A dead coordinator
cannot wedge a worker: shipping is fire-and-forget UDP and the resend
buffer is the only send-side state, bounded and drop-oldest.

**Integration.**  Coordinator ingest routes through the
:mod:`repro.integrity` pipeline (rate bounds and quarantine apply to
shipped samples exactly as to local polls), plane state is exported as
telemetry gauges and flat ``stats()`` keys, and ``repro distributed``
exercises the whole plane from the CLI.

Everything -- polls, responses, batches, heartbeats, retransmits,
assignments -- is real simulated traffic, so the monitoring system's own
footprint (and its failure modes) remain measurable.
"""

from __future__ import annotations

import json
import logging
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.bandwidth import BandwidthCalculator
from repro.core.counters import required_poll_targets
from repro.core.dataflow import DegradedSourceSet
from repro.core.deltas import (
    DeltaDecoder,
    DeltaEncoder,
    DeltaError,
    is_delta,
    parse_delta,
)
from repro.core.health import LeaseTransition, WorkerLeaseTracker, WorkerState
from repro.core.history import MeasurementHistory
from repro.core.poller import InterfaceRates, PollTarget, RateTable, SnmpPoller
from repro.core.report import PathReport
from repro.core.traversal import find_path
from repro.integrity import IntegrityConfig, IntegrityPipeline
from repro.simnet.address import IPv4Address
from repro.snmp.manager import SnmpManager
from repro.spec.builder import BuildResult
from repro.telemetry import Telemetry
from repro.telemetry.events import SAMPLE_GAP, WORKER_FAILOVER, WORKER_REBALANCE

logger = logging.getLogger("repro.distributed")

REPORT_PORT = 8765  # coordinator's sample/heartbeat sink
CONTROL_PORT = 8766  # each worker's assignment/retransmit listener


# ----------------------------------------------------------------------
# Wire codecs (JSON keeps every message debuggable on the simulated wire)
# ----------------------------------------------------------------------
def _sample_doc(sample: InterfaceRates) -> Dict[str, object]:
    return {
        "n": sample.node,
        "i": sample.if_index,
        "t": sample.time,
        "d": sample.interval,
        "ib": sample.in_bytes_per_s,
        "ob": sample.out_bytes_per_s,
        "ip": sample.in_pkts_per_s,
        "op": sample.out_pkts_per_s,
    }


def _sample_from_doc(doc: Dict[str, object]) -> InterfaceRates:
    return InterfaceRates(
        node=doc["n"],
        if_index=int(doc["i"]),
        time=float(doc["t"]),
        interval=float(doc["d"]),
        in_bytes_per_s=float(doc["ib"]),
        out_bytes_per_s=float(doc["ob"]),
        in_pkts_per_s=float(doc["ip"]),
        out_pkts_per_s=float(doc["op"]),
    )


def encode_sample(sample: InterfaceRates) -> bytes:
    """Wire form of one bare rate sample (kept for tooling and tests;
    the plane itself ships samples inside sequenced batches)."""
    return json.dumps(_sample_doc(sample)).encode()


def decode_sample(payload: bytes) -> InterfaceRates:
    """Inverse of :func:`encode_sample`.

    Raises ``ValueError``/``KeyError``/``TypeError`` on malformed input
    (bad JSON, missing keys, type-confused documents such as a JSON list
    or non-numeric fields); callers must treat all three as decode
    failures.
    """
    doc = json.loads(payload.decode())
    return _sample_from_doc(doc)


def encode_batch(
    worker: str, incarnation: int, seq: int, samples: Sequence[InterfaceRates]
) -> bytes:
    """One sequenced report datagram carrying several samples."""
    return json.dumps(
        {
            "k": "batch",
            "w": worker,
            "inc": incarnation,
            "q": seq,
            "s": [_sample_doc(s) for s in samples],
        }
    ).encode()


def encode_heartbeat(
    worker: str, incarnation: int, next_seq: int, assign_version: int
) -> bytes:
    """Lease renewal; ``next_seq`` exposes trailing gaps, ``assign_version``
    lets the coordinator re-send a lost assignment."""
    return json.dumps(
        {
            "k": "hb",
            "w": worker,
            "inc": incarnation,
            "q": next_seq,
            "av": assign_version,
        }
    ).encode()


def decode_message(payload: bytes) -> Dict[str, object]:
    """Decode any plane message; the ``"k"`` key discriminates.

    Raises ``ValueError``/``KeyError``/``TypeError`` on malformed input.
    """
    doc = json.loads(payload.decode())
    if not isinstance(doc, dict) or "k" not in doc:
        raise ValueError(f"not a plane message: {payload[:64]!r}")
    return doc


def _targets_doc(targets: Sequence[PollTarget]) -> List[Dict[str, object]]:
    return [
        {"n": t.node, "ifs": list(t.if_indexes), "c": t.community} for t in targets
    ]


def partition_targets(
    pool: Sequence[PollTarget], worker_hosts: Sequence[str]
) -> Dict[str, List[PollTarget]]:
    """Deterministic affinity-first assignment of ``pool`` over workers.

    A target whose node *is* a listed worker goes to that worker (polling
    thyself costs loopback only); the rest round-robin over the workers
    in the given order.  Same inputs, same map -- this one function is
    initial assignment, failover and failback alike, at both tiers of
    the coordinator tree (workers under a coordinator, shards under the
    hierarchy root).
    """
    assignments: Dict[str, List[PollTarget]] = {w: [] for w in worker_hosts}
    leftovers: List[PollTarget] = []
    for target in sorted(pool, key=lambda t: t.node):
        if target.node in assignments:
            assignments[target.node].append(target)
        else:
            leftovers.append(target)
    for i, target in enumerate(leftovers):
        assignments[worker_hosts[i % len(worker_hosts)]].append(target)
    return assignments


# ----------------------------------------------------------------------
# Send-side shipping (shared by workers and leaf coordinators)
# ----------------------------------------------------------------------
class SampleShipper:
    """Sequenced, batched, optionally delta-encoded sample shipping.

    Owns the per-incarnation monotonic sequence number, the bounded
    drop-oldest resend buffer, and (when ``delta=True``) the
    :class:`~repro.core.deltas.DeltaEncoder` whose last-shipped tracking
    turns quiescent batches into a few bytes per interface.  ``send`` is
    the owner's transmit function, so the same shipper serves a worker
    shipping to its coordinator and a leaf coordinator shipping to the
    hierarchy root.

    Byte accounting: ``bytes_shipped`` is what actually left;
    ``bytes_baseline`` is what the legacy JSON encoding of the same
    samples would have cost -- their ratio is the delta path's measured
    traffic reduction, not an estimate.
    """

    def __init__(
        self,
        name: str,
        send: Callable[[bytes], None],
        max_batch: int = 8,
        resend_buffer: int = 32,
        delta: bool = False,
        keyframe_every: int = 16,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if resend_buffer < 1:
            raise ValueError(f"resend_buffer must be >= 1, got {resend_buffer!r}")
        self.name = name
        self.send = send
        self.max_batch = max_batch
        self.resend_buffer = resend_buffer
        self.incarnation = 1
        self._next_seq = 1
        self._pending: List[InterfaceRates] = []
        self._resend: "OrderedDict[int, bytes]" = OrderedDict()
        self.delta: Optional[DeltaEncoder] = DeltaEncoder(name) if delta else None
        self.keyframe_every = keyframe_every
        self._since_keyframe = 0
        self.samples_shipped = 0
        self.batches_shipped = 0
        self.bytes_shipped = 0
        self.bytes_baseline = 0
        self.keyframes_shipped = 0
        self.retransmits_served = 0
        self.retransmits_missed = 0

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def force_keyframe(self) -> None:
        if self.delta is not None:
            self.delta.force_keyframe()

    def enqueue(self, sample: InterfaceRates) -> bool:
        """Queue one sample; True when the batch is full (caller flushes)."""
        self._pending.append(sample)
        return len(self._pending) >= self.max_batch

    def flush(self) -> None:
        if not self._pending:
            return
        seq = self._next_seq
        self._next_seq += 1
        samples = self._pending
        self._pending = []
        baseline = encode_batch(self.name, self.incarnation, seq, samples)
        if self.delta is not None:
            due = (
                self.keyframe_every > 0
                and self._since_keyframe + 1 >= self.keyframe_every
            )
            payload = self.delta.encode(
                self.incarnation, seq, samples, keyframe=due
            )
            if payload[1] & 0x01:  # the encoder may also have had one pending
                self._since_keyframe = 0
                self.keyframes_shipped += 1
            else:
                self._since_keyframe += 1
        else:
            payload = baseline
        self.samples_shipped += len(samples)
        self.batches_shipped += 1
        self.bytes_shipped += len(payload)
        self.bytes_baseline += len(baseline)
        self._resend[seq] = payload
        while len(self._resend) > self.resend_buffer:
            self._resend.popitem(last=False)  # drop-oldest: bounded memory
        self.send(payload)

    def serve_retransmit(self, doc: Dict[str, object]) -> None:
        if int(doc["inc"]) != self.incarnation:
            return  # request addresses a previous life of this sender
        gone: List[int] = []
        for seq in [int(s) for s in doc["seqs"]]:
            payload = self._resend.get(seq)
            if payload is None:
                gone.append(seq)  # evicted from the bounded buffer
                self.retransmits_missed += 1
            else:
                self.retransmits_served += 1
                self.send(payload)
        if gone:
            self.send(
                json.dumps(
                    {"k": "gone", "w": self.name, "inc": self.incarnation,
                     "seqs": gone}
                ).encode()
            )

    @property
    def traffic_reduction(self) -> float:
        """Fraction of baseline bytes the delta encoding saved."""
        if self.bytes_baseline <= 0:
            return 0.0
        return 1.0 - self.bytes_shipped / self.bytes_baseline

    def reset(self, incarnation: int) -> None:
        """The owning process restarted: new incarnation, fresh state."""
        self.incarnation = incarnation
        self._next_seq = 1
        self._pending.clear()
        self._resend.clear()
        self._since_keyframe = 0
        if self.delta is not None:
            self.delta.reset()


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
class MonitorWorker:
    """One polling worker: manager + poller + shipping on its own host.

    Samples accumulate into batches (flushed when ``max_batch`` fills or
    every ``batch_linger`` seconds) and are shipped with a per-
    incarnation monotonic sequence number; the last ``resend_buffer``
    encoded batches are kept for selective retransmission, drop-oldest.
    ``crash()``/``restart()`` simulate the worker process dying and
    coming back (used by :class:`~repro.simnet.faults.WorkerCrash`): a
    restarted worker bumps its incarnation, restarts its sequence at 1,
    and rejoins with *no* poll targets -- its first heartbeat advertises
    assignment version 0 and the coordinator ships the current
    assignment back.
    """

    def __init__(
        self,
        build: BuildResult,
        host_name: str,
        targets: Sequence[PollTarget],
        coordinator_ip: IPv4Address,
        poll_interval: float,
        jitter: float,
        seed: int,
        heartbeat_interval: Optional[float] = None,
        batch_linger: Optional[float] = None,
        max_batch: int = 8,
        resend_buffer: int = 32,
        poll_mode: str = "get",
        pipeline_window: int = 0,
        delta_shipping: bool = False,
        keyframe_every: int = 16,
        control_port: int = CONTROL_PORT,
    ) -> None:
        self.build = build
        self.name = host_name
        self.host = build.network.host(host_name)
        self.sim = self.host.sim
        self.coordinator_ip = coordinator_ip
        self.poll_interval = poll_interval
        self.jitter = jitter
        self.seed = seed
        self.poll_mode = poll_mode
        self.pipeline_window = pipeline_window
        self.control_port = control_port
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else poll_interval * 0.4
        )
        self.batch_linger = (
            batch_linger if batch_linger is not None else poll_interval * 0.25
        )
        self.max_batch = max_batch
        self.resend_buffer = resend_buffer
        # Shipping (sequencing, resend buffer, optional delta encoding)
        # lives in the shipper: the only send-side state, bounded, so a
        # dead coordinator can never wedge this worker.
        self.shipper = SampleShipper(
            host_name,
            self._send_report,
            max_batch=max_batch,
            resend_buffer=resend_buffer,
            delta=delta_shipping,
            keyframe_every=keyframe_every,
        )
        self.assign_version = 0
        self.crashed = False
        self._started = False
        self._hb_task = None
        self._flush_task = None
        # Statistics (shipping counters live on the shipper).
        self.heartbeats_sent = 0
        self.assignments_applied = 0
        self._build_stack(list(targets))

    # -- shipping statistics (the attribute names are the old API) -----
    @property
    def incarnation(self) -> int:
        return self.shipper.incarnation

    @property
    def samples_shipped(self) -> int:
        return self.shipper.samples_shipped

    @property
    def batches_shipped(self) -> int:
        return self.shipper.batches_shipped

    @property
    def retransmits_served(self) -> int:
        return self.shipper.retransmits_served

    @property
    def retransmits_missed(self) -> int:
        return self.shipper.retransmits_missed

    @property
    def requests_sent(self) -> int:
        return self.manager.requests_sent

    # -- construction / teardown ---------------------------------------
    def _build_stack(self, targets: List[PollTarget]) -> None:
        """(Re)create manager, poller and sockets (fresh after restart)."""
        self.manager = SnmpManager(self.host)
        self.poller = SnmpPoller(
            self.manager,
            targets,
            interval=self.poll_interval,
            jitter=self.jitter,
            seed=self.seed,
            rate_table=RateTable(keep_history=False),
            poll_mode=self.poll_mode,
            pipeline_window=self.pipeline_window,
        )
        self.poller.on_sample = self._enqueue
        self._report_socket = self.host.create_socket()
        self._control_socket = self.host.create_socket(self.control_port)
        self._control_socket.on_receive = self._on_control

    def _send_report(self, payload: bytes) -> None:
        self._report_socket.sendto(payload, (self.coordinator_ip, REPORT_PORT))

    def _begin_tasks(self) -> None:
        if self.crashed:
            return  # crashed before the scheduled start; restart() re-runs this
        start = self.sim.now
        self.poller.start(first_poll_at=start)
        self._hb_task = self.sim.call_every(
            self.heartbeat_interval, self._heartbeat, start=start
        )
        self._flush_task = self.sim.call_every(
            self.batch_linger, self._flush, start=start + self.batch_linger
        )

    def _teardown(self) -> None:
        self.poller.stop()
        if self._hb_task is not None:
            self._hb_task.cancel()
            self._hb_task = None
        if self._flush_task is not None:
            self._flush_task.cancel()
            self._flush_task = None
        self.manager.cancel_all()  # drop in-flight polls so nothing ships late
        # Close every socket so the host's ports are reusable (a stopped
        # or crashed plane must be restartable on the same host).
        self.manager.socket.close()
        self._report_socket.close()
        self._control_socket.close()

    # -- lifecycle ------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        self._started = True
        if at is None or at <= self.sim.now:
            self._begin_tasks()
        else:
            self.sim.schedule_at(at, self._begin_tasks)

    def stop(self) -> None:
        self._started = False
        if not self.crashed:
            self._teardown()

    def crash(self) -> None:
        """The worker process dies: no polls, no heartbeats, no shipping."""
        if self.crashed:
            return
        self.crashed = True
        self._teardown()

    def restart(self) -> None:
        """The process comes back: new incarnation, sequence restarts at
        1, resend buffer and counter baselines are gone, and the worker
        rejoins with no targets until the coordinator re-assigns."""
        if not self.crashed:
            return
        self.crashed = False
        self.shipper.reset(self.shipper.incarnation + 1)
        self.assign_version = 0
        self._build_stack([])
        if self._started:
            self._begin_tasks()

    # -- shipping --------------------------------------------------------
    def _enqueue(self, sample: InterfaceRates) -> None:
        if self.shipper.enqueue(sample):
            self._flush()

    def _flush(self) -> None:
        if self.crashed:
            return
        self.shipper.flush()

    def _heartbeat(self) -> None:
        if self.crashed:
            return
        self.heartbeats_sent += 1
        self._send_report(
            encode_heartbeat(
                self.name, self.incarnation, self.shipper.next_seq,
                self.assign_version,
            )
        )

    # -- control ---------------------------------------------------------
    def _on_control(self, payload, size, src_ip, src_port) -> None:
        if payload is None or self.crashed:
            return
        try:
            doc = decode_message(payload)
            kind = doc["k"]
            if kind == "retx":
                self.shipper.serve_retransmit(doc)
            elif kind == "assign":
                self._apply_assignment(doc)
            elif kind == "kfreq":
                # The receiver lost delta context: re-state everything
                # with the next flush.
                self.shipper.force_keyframe()
        except (ValueError, KeyError, TypeError):
            return  # malformed control traffic: ignore

    def _apply_assignment(self, doc: Dict[str, object]) -> None:
        version = int(doc["v"])
        if version <= self.assign_version:
            return  # duplicate or out-of-date assignment: idempotent drop
        network = self.build.network
        targets = [
            PollTarget(
                node=t["n"],
                address=network.ip_of(t["n"]),
                if_indexes=[int(i) for i in t["ifs"]],
                community=t["c"],
            )
            for t in doc["t"]
        ]
        added = {t.node for t in targets} - {t.node for t in self.poller.targets}
        self.assign_version = version
        self.assignments_applied += 1
        self.poller.targets[:] = targets
        logger.info(
            "worker %s applied assignment v%d: %s",
            self.name, version, sorted(t.node for t in targets),
        )
        if added:
            # Adopted targets have no counter baselines here: poll once
            # immediately to establish them and once again shortly after
            # so a rate sample exists ~one short interval later, instead
            # of waiting up to two full poll cycles.
            self.poller._poll_cycle()
            self.sim.schedule(self.poll_interval * 0.5, self._adoption_poll)

    def _adoption_poll(self) -> None:
        if not self.crashed and self._started:
            self.poller._poll_cycle()


# ----------------------------------------------------------------------
# Coordinator-side ingest bookkeeping
# ----------------------------------------------------------------------
class _Gap:
    """One missing batch sequence number under ARQ."""

    __slots__ = ("seq", "attempts", "next_retry")

    def __init__(self, seq: int, now: float, first_retry_after: float) -> None:
        self.seq = seq
        self.attempts = 0
        self.next_retry = now + first_retry_after


class _WorkerIngest:
    """Per-stream sequencing state on the receiving coordinator.

    Buffer entries are tagged: ``("s", [InterfaceRates, ...])`` for JSON
    batches (parsed eagerly, so malformed documents surface as decode
    errors at arrival) and ``("d", DeltaBatch)`` for binary delta batches
    (parsed statelessly at arrival; the stateful
    :class:`~repro.core.deltas.DeltaDecoder` applies them only at
    in-order delivery, because applying out of order would corrupt the
    decoder's last-sample context).
    """

    __slots__ = (
        "name",
        "incarnation",
        "expected",
        "anchored",
        "buffer",
        "gaps",
        "delta",
        "kfreq_after",
        "delivered",
        "duplicates",
        "stale_incarnation",
    )

    def __init__(self, name: str, anchored: bool = True) -> None:
        self.name = name
        self.incarnation = 0  # adopts the worker's on first contact
        self.expected = 1  # next in-order batch seq
        self.anchored = anchored  # False: adopt the first observed seq
        self.buffer: Dict[int, tuple] = {}  # seq -> out-of-order entry
        self.gaps: Dict[int, _Gap] = {}
        self.delta = DeltaDecoder()
        self.kfreq_after = 0.0  # earliest next keyframe request
        self.delivered = 0
        self.duplicates = 0
        self.stale_incarnation = 0

    def reset_for(self, incarnation: int) -> None:
        self.incarnation = incarnation
        self.expected = 1
        self.anchored = True  # a fresh incarnation numbers from 1
        self.buffer.clear()
        self.gaps.clear()
        self.delta.reset()


class DistributedMonitor:
    """Coordinator + workers implementing the fault-tolerant plane.

    ``worker_hosts`` take the polling load; ``coordinator_host`` receives
    their batches and serves path reports.  Target assignment is
    affinity-first (a worker polling itself costs loopback only) with the
    rest round-robined deterministically; the same partitioning function
    re-runs over the surviving workers on every lease expiry and
    recovery, so failover and failback are one mechanism.
    """

    def __init__(
        self,
        build: BuildResult,
        coordinator_host: str,
        worker_hosts: Sequence[str],
        poll_interval: float = 2.0,
        poll_jitter: float = 0.05,
        report_offset: float = 0.5,
        seed: int = 0,
        stale_after: Optional[float] = None,
        dead_after: Optional[float] = None,
        telemetry: Union[bool, Telemetry] = True,
        integrity: Union[bool, IntegrityConfig] = True,
        lease_timeout: Optional[float] = None,
        suspect_after: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        recovery_beats: int = 2,
        retx_max_attempts: int = 3,
        retx_backoff: Optional[float] = None,
        max_batch: int = 8,
        resend_buffer: int = 32,
        poll_mode: str = "get",
        pipeline_window: int = 0,
        delta_shipping: bool = False,
        keyframe_every: int = 16,
        targets: Optional[Sequence[PollTarget]] = None,
        emit_reports: bool = True,
        adopt_streams: bool = False,
    ) -> None:
        if not worker_hosts:
            raise ValueError("need at least one worker host")
        self.build = build
        self.spec = build.spec
        self.network = build.network
        self.sim = self.network.sim
        self.poll_interval = poll_interval
        self.report_offset = report_offset
        self.poll_jitter = poll_jitter
        self.seed = seed
        self.poll_mode = poll_mode
        self.pipeline_window = pipeline_window
        self.delta_shipping = delta_shipping
        self.keyframe_every = keyframe_every
        self.max_batch = max_batch
        self.resend_buffer = resend_buffer
        self.emit_reports = emit_reports
        self.adopt_streams = adopt_streams
        # Forwarding hook: called with every sample accepted into the
        # rate table (a leaf coordinator chains its uplink shipper here).
        self.on_sample: Optional[Callable[[InterfaceRates], None]] = None
        self._suspended = False
        self.coordinator = self.network.host(coordinator_host)
        if isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        else:
            self.telemetry = Telemetry(
                clock=lambda: self.sim.now,
                enabled=bool(telemetry),
                slow_threshold=poll_interval,
            )
        # Liveness knobs.  Defaults detect a dead worker in ~one poll
        # interval (just over two missed heartbeats) so failover plus the
        # adopters' re-baselining completes within three poll cycles.
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else poll_interval * 0.4
        )
        self.lease_timeout = (
            lease_timeout if lease_timeout is not None else poll_interval * 0.9
        )
        self.suspect_after = (
            suspect_after if suspect_after is not None else self.lease_timeout * 0.55
        )
        self.retx_max_attempts = retx_max_attempts
        self.retx_backoff = (
            retx_backoff if retx_backoff is not None else poll_interval * 0.25
        )
        # Staleness bounds mirror NetworkMonitor's.
        if stale_after is None:
            stale_after = poll_interval * 2.5
        if dead_after is None:
            dead_after = max(poll_interval * 6.0, stale_after * 2.0)
        self.rates = RateTable()
        self.degraded = DegradedSourceSet()
        self.leases = WorkerLeaseTracker(
            lease_timeout=self.lease_timeout,
            suspect_after=self.suspect_after,
            recovery_beats=recovery_beats,
            events=self.telemetry.events,
        )
        self.leases.subscribe(self._on_lease_transition)
        self.integrity: Optional[IntegrityPipeline] = None
        if integrity:
            config = integrity if isinstance(integrity, IntegrityConfig) else None
            self.integrity = IntegrityPipeline(
                speeds=self._interface_speeds(),
                poll_interval=poll_interval,
                config=config,
                telemetry=self.telemetry,
                now=self.sim.now,
            )
        self.calculator = BandwidthCalculator(
            self.spec,
            self.rates,
            stale_after=stale_after,
            dead_after=dead_after,
            telemetry=self.telemetry,
            integrity=self.integrity,
            degraded_sources=self.degraded,
        )
        self.history = MeasurementHistory()
        self._watches: Dict[str, tuple] = {}
        self._subscribers: List[Callable[[PathReport], None]] = []
        self._report_task = None
        self._sweep_task = None

        self._sink = self.coordinator.create_socket(REPORT_PORT)
        self._sink.on_receive = self._on_datagram
        self._control = self.coordinator.create_socket()  # retx/assign sender

        self._worker_order = list(worker_hosts)
        self._target_pool: List[PollTarget] = (
            list(targets) if targets is not None else self._derive_pool()
        )
        assignments = self._partition(self._worker_order)
        self.workers: Dict[str, MonitorWorker] = {
            name: self._make_worker(name, assignments.get(name, []), i)
            for i, name in enumerate(self._worker_order)
        }
        # Assignment bookkeeping: desired targets and version per worker.
        # Workers constructed with their initial share already hold
        # version 1 semantics; seed their counters to match so the first
        # heartbeat does not trigger a redundant re-send.
        self._assignments: Dict[str, List[PollTarget]] = {
            name: list(assignments.get(name, [])) for name in self._worker_order
        }
        self._assign_version: Dict[str, int] = {}
        for name, worker in self.workers.items():
            worker.assign_version = 1
            self._assign_version[name] = 1
        self._ingest: Dict[str, _WorkerIngest] = {
            name: _WorkerIngest(name, anchored=not self.adopt_streams)
            for name in self._worker_order
        }
        for name in self._worker_order:
            self.leases.register(name, self.sim.now)
        self._register_metrics()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        registry = self.telemetry.registry
        c = registry.counter
        self._m_samples = c("dist_samples_received_total", "samples merged into the rate table")
        self._m_batches = c("dist_batches_received_total", "sequenced report batches delivered")
        self._m_decode_errors = c("dist_decode_errors_total", "undecodable plane datagrams")
        self._m_duplicates = c("dist_duplicate_batches_total", "batches dropped by sequence dedup")
        self._m_gaps = c("dist_gaps_detected_total", "batch sequence gaps detected")
        self._m_gaps_filled = c("dist_gaps_filled_total", "gaps closed by retransmission")
        self._m_gaps_abandoned = c("dist_gaps_abandoned_total", "gaps given up after ARQ caps")
        self._m_retx = c("dist_retx_requests_total", "selective retransmit requests sent")
        self._m_kfreq = c("dist_keyframe_requests_total", "delta keyframe requests sent")
        self._m_failovers = c("dist_failovers_total", "lease expiries that moved poll targets")
        self._m_rebalances = c("dist_rebalances_total", "recoveries that moved poll targets back")
        for state in WorkerState:
            registry.gauge(
                f"dist_workers_{state.value}",
                f"monitor workers currently in the {state.value} lease state",
            ).set_function(lambda s=state: float(self.leases.count(s)))
        registry.gauge(
            "dist_degraded_sources",
            "counter sources currently marked lossy by the plane",
        ).set_function(lambda: float(len(self.degraded)))

    def _interface_speeds(self) -> Dict[tuple, float]:
        speeds: Dict[tuple, float] = {}
        for node_name, if_indexes in required_poll_targets(
            self.spec, list(self.spec.connections)
        ).items():
            node = self.spec.node(node_name)
            for if_index in if_indexes:
                speeds[(node_name, if_index)] = node.interfaces[if_index - 1].speed_bps
        return speeds

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _make_worker(
        self, name: str, targets: List[PollTarget], index: int
    ) -> MonitorWorker:
        """Construct one polling worker (the hierarchy root overrides
        this to construct leaf coordinators instead)."""
        return MonitorWorker(
            self.build,
            name,
            targets,
            self.coordinator.primary_ip,
            self.poll_interval,
            self.poll_jitter,
            seed=self.seed + index,
            heartbeat_interval=self.heartbeat_interval,
            max_batch=self.max_batch,
            resend_buffer=self.resend_buffer,
            poll_mode=self.poll_mode,
            pipeline_window=self.pipeline_window,
            delta_shipping=self.delta_shipping,
            keyframe_every=self.keyframe_every,
        )

    def _derive_pool(self) -> List[PollTarget]:
        """Every poll target the topology needs (the default pool)."""
        needed = required_poll_targets(self.spec, list(self.spec.connections))
        return [
            PollTarget(
                node=node_name,
                address=self.network.ip_of(node_name),
                if_indexes=if_indexes,
                community=self.spec.node(node_name).snmp_community,
            )
            for node_name, if_indexes in sorted(needed.items())
        ]

    def _affinity(self, target: PollTarget) -> Optional[str]:
        """Preferred owner of ``target`` (polling thyself costs loopback
        only); the hierarchy root overrides this with its shard plan."""
        return target.node

    def _partition(self, worker_hosts: List[str]) -> Dict[str, List[PollTarget]]:
        """Deterministic affinity-first assignment over ``worker_hosts``.

        A target whose affinity names a listed worker goes to that
        worker; the rest round-robin over the workers in the given
        order.  Same inputs, same map -- this is also the
        failover/failback function, re-run over the survivors.
        """
        assignments: Dict[str, List[PollTarget]] = {w: [] for w in worker_hosts}
        leftovers: List[PollTarget] = []
        for target in sorted(self._target_pool, key=lambda t: t.node):
            preferred = self._affinity(target)
            if preferred in assignments:
                assignments[preferred].append(target)
            else:
                leftovers.append(target)
        for i, target in enumerate(leftovers):
            assignments[worker_hosts[i % len(worker_hosts)]].append(target)
        return assignments

    def set_target_pool(self, targets: Sequence[PollTarget]) -> None:
        """Replace the poll-target pool and repartition over the live
        workers (the hierarchy root resizes a leaf's shard this way)."""
        self._target_pool = list(targets)
        self._rebalance(reason="rebalance", about="pool")

    def targets_of(self, worker: str) -> List[str]:
        return [t.node for t in self.workers[worker].poller.targets]

    def assigned_targets_of(self, worker: str) -> List[str]:
        """The coordinator's *intended* assignment (vs. the worker's
        applied one in :meth:`targets_of`)."""
        return [t.node for t in self._assignments.get(worker, [])]

    # ------------------------------------------------------------------
    # Failover / failback
    # ------------------------------------------------------------------
    def _on_lease_transition(self, transition: LeaseTransition) -> None:
        if transition.new is WorkerState.DEAD:
            # Everything the dead worker was responsible for is now
            # known-lossy until a survivor's samples land.
            for target in self._assignments.get(transition.worker, []):
                for if_index in target.if_indexes:
                    self.degraded.mark(target.node, if_index)
            self._rebalance(reason="failover", about=transition.worker)
        elif (
            transition.new is WorkerState.ALIVE
            and transition.old is WorkerState.RECOVERING
        ):
            self._rebalance(reason="rebalance", about=transition.worker)

    def _live_workers(self) -> List[str]:
        return [
            w
            for w in self._worker_order
            if self.leases.state(w) is not WorkerState.DEAD
        ]

    def _rebalance(self, reason: str, about: str) -> None:
        """Repartition over the live workers and ship changed assignments."""
        live = self._live_workers()
        if not live:
            logger.warning("no live workers left; keeping assignments frozen")
            return
        desired = self._partition(live)
        moved: List[str] = []
        for name in self._worker_order:
            new = desired.get(name, [])
            if [t.node for t in new] == [t.node for t in self._assignments[name]]:
                continue
            self._assignments[name] = list(new)
            moved.append(name)
            if self.leases.state(name) is not WorkerState.DEAD:
                self._send_assignment(name)
        if reason == "failover":
            self._m_failovers.inc()
        else:
            self._m_rebalances.inc()
        self.telemetry.events.publish(
            WORKER_FAILOVER if reason == "failover" else WORKER_REBALANCE,
            self.sim.now,
            worker=about,
            reassigned={n: self.assigned_targets_of(n) for n in moved},
        )
        logger.warning(
            "%s around worker %s: new assignment %s",
            reason, about,
            {n: self.assigned_targets_of(n) for n in self._worker_order},
        )

    def _send_assignment(self, worker: str) -> None:
        self._assign_version[worker] += 1
        payload = json.dumps(
            {
                "k": "assign",
                "v": self._assign_version[worker],
                "t": _targets_doc(self._assignments[worker]),
            }
        ).encode()
        self._control.sendto(
            payload, (self.network.ip_of(worker), CONTROL_PORT)
        )

    # ------------------------------------------------------------------
    # Sample ingestion (sequenced, deduplicated, integrity-checked)
    # ------------------------------------------------------------------
    def _on_datagram(self, payload, size, src_ip, src_port) -> None:
        if payload is None:
            self._m_decode_errors.inc()
            return
        if is_delta(payload):
            self._on_delta(payload)
            return
        try:
            doc = decode_message(payload)
            kind = doc["k"]
            if kind == "batch":
                self._on_batch(doc)
            elif kind == "hb":
                self._on_heartbeat(doc)
            elif kind == "gone":
                self._on_gone(doc)
            else:
                self._m_decode_errors.inc()
        except (ValueError, KeyError, TypeError):
            self._m_decode_errors.inc()

    def _ingest_state(self, worker: str, incarnation: int) -> Optional[_WorkerIngest]:
        state = self._ingest.get(worker)
        if state is None:
            return None  # unknown sender: not one of our workers
        # Any datagram from a known worker renews its lease.
        self.leases.beat(worker, self.sim.now)
        if incarnation < state.incarnation:
            state.stale_incarnation += 1
            return None  # straggler from a previous life: drop
        if incarnation > state.incarnation:
            # The worker restarted: its sequence space starts over.
            state.reset_for(incarnation)
        return state

    def _on_batch(self, doc: Dict[str, object]) -> None:
        worker = doc["w"]
        samples = [_sample_from_doc(d) for d in doc["s"]]
        state = self._ingest_state(worker, int(doc["inc"]))
        if state is None:
            return
        self._on_sequenced(state, int(doc["q"]), ("s", samples))

    def _on_delta(self, payload: bytes) -> None:
        """Binary delta batch: parse statelessly now, apply the stateful
        decoder only at in-order delivery."""
        try:
            batch = parse_delta(payload)
        except DeltaError:
            self._m_decode_errors.inc()
            return
        state = self._ingest_state(batch.worker, batch.incarnation)
        if state is None:
            return
        self._on_sequenced(state, batch.seq, ("d", batch))

    def _on_sequenced(self, state: _WorkerIngest, seq: int, entry: tuple) -> None:
        if not state.anchored:
            # Adopting a mid-flight stream (coordinator resume): accept
            # from here instead of demanding retransmits back to seq 1;
            # a delta stream heals its decoder via keyframe request.
            state.anchored = True
            state.expected = seq
        if seq < state.expected or seq in state.buffer:
            state.duplicates += 1
            self._m_duplicates.inc()
            return  # retransmit overshoot or duplicate: sequence dedup
        if seq == state.expected:
            gap = state.gaps.pop(seq, None)
            if gap is not None and gap.attempts > 0:
                self._m_gaps_filled.inc()
            self._deliver_entry(state, entry)
            state.expected += 1
            self._drain(state)
        else:
            state.buffer[seq] = entry
            self._note_gaps(state, upto=seq)

    def _on_heartbeat(self, doc: Dict[str, object]) -> None:
        worker = doc["w"]
        state = self._ingest_state(worker, int(doc["inc"]))
        if state is None:
            return
        if not state.anchored:
            state.anchored = True
            state.expected = int(doc["q"])
        # ``q`` is the seq the *next* batch will carry: anything below it
        # that we have not seen was shipped and lost with nothing after
        # it to reveal the gap -- a trailing gap only liveness traffic
        # can expose.
        self._note_gaps(state, upto=int(doc["q"]))
        # Self-healing control: a stale applied-version echo means the
        # last assignment datagram was lost; ship it again.
        if int(doc.get("av", 0)) != self._assign_version.get(worker, 0):
            if self.leases.state(worker) is not WorkerState.DEAD:
                self._send_assignment(worker)

    def _on_gone(self, doc: Dict[str, object]) -> None:
        """The worker evicted requested batches: those gaps are unfillable."""
        worker = doc["w"]
        state = self._ingest_state(worker, int(doc["inc"]))
        if state is None:
            return
        for seq in [int(s) for s in doc["seqs"]]:
            gap = state.gaps.get(seq)
            if gap is not None:
                gap.attempts = self.retx_max_attempts  # abandon at next sweep
                gap.next_retry = self.sim.now

    def _note_gaps(self, state: _WorkerIngest, upto: int) -> None:
        """Register ARQ gaps for every missing seq in [expected, upto)."""
        new_gaps = [
            seq
            for seq in range(state.expected, upto)
            if seq not in state.buffer and seq not in state.gaps
        ]
        if not new_gaps:
            return
        for seq in new_gaps:
            state.gaps[seq] = _Gap(seq, self.sim.now, 0.0)
            self._m_gaps.inc()
        self.telemetry.events.publish(
            SAMPLE_GAP,
            self.sim.now,
            worker=state.name,
            action="detected",
            seqs=new_gaps,
        )
        self._request_retransmits(state)

    def _request_retransmits(self, state: _WorkerIngest) -> None:
        """Ask the worker for every currently-due gap, one datagram."""
        now = self.sim.now
        due = [g for g in state.gaps.values() if g.next_retry <= now
               and g.attempts < self.retx_max_attempts]
        if not due:
            return
        for gap in due:
            gap.attempts += 1
            # Exponential backoff, capped by the attempt limit.
            gap.next_retry = now + self.retx_backoff * (2 ** (gap.attempts - 1))
        self._m_retx.inc()
        self._control.sendto(
            json.dumps(
                {
                    "k": "retx",
                    "inc": state.incarnation,
                    "seqs": sorted(g.seq for g in due),
                }
            ).encode(),
            (self.network.ip_of(state.name), CONTROL_PORT),
        )

    def _drain(self, state: _WorkerIngest) -> None:
        while state.expected in state.buffer:
            entry = state.buffer.pop(state.expected)
            gap = state.gaps.pop(state.expected, None)
            if gap is not None and gap.attempts > 0:
                self._m_gaps_filled.inc()
            self._deliver_entry(state, entry)
            state.expected += 1

    def _abandon_front_gaps(self, state: _WorkerIngest) -> None:
        """Give up on head-of-line gaps whose ARQ budget is spent."""
        abandoned: List[int] = []
        while True:
            gap = state.gaps.get(state.expected)
            if gap is None or gap.attempts < self.retx_max_attempts:
                break
            if gap.next_retry > self.sim.now:
                break  # the last retransmit may still be in flight
            state.gaps.pop(state.expected)
            abandoned.append(state.expected)
            state.expected += 1
            self._drain(state)
        if not abandoned:
            return
        self._m_gaps_abandoned.inc(len(abandoned))
        # The lost batches carried samples for *some* of this worker's
        # interfaces; without them we cannot know which, so every counter
        # source currently assigned to the worker is marked lossy until a
        # fresh sample clears it.
        for target in self._assignments.get(state.name, []):
            for if_index in target.if_indexes:
                self.degraded.mark(target.node, if_index)
        # A delta stream cannot advance over a hole: its per-interface
        # context is now stale, so drop rate-only records until the
        # sender re-states everything with a keyframe.
        state.delta.mark_desync()
        self._request_keyframe(state)
        self.telemetry.events.publish(
            SAMPLE_GAP,
            self.sim.now,
            worker=state.name,
            action="abandoned",
            seqs=abandoned,
        )

    def _request_keyframe(self, state: _WorkerIngest) -> None:
        """Ask a delta sender to re-state its full universe; rate-limited
        so a desynced stream sends one request per backoff window, not
        one per arriving batch."""
        now = self.sim.now
        if now < state.kfreq_after:
            return
        state.kfreq_after = now + self.retx_backoff
        self._m_kfreq.inc()
        self._control.sendto(
            json.dumps({"k": "kfreq", "inc": state.incarnation}).encode(),
            (self.network.ip_of(state.name), CONTROL_PORT),
        )

    def _deliver_entry(self, state: _WorkerIngest, entry: tuple) -> None:
        kind, payload = entry
        if kind == "d":
            try:
                samples = state.delta.apply(payload)
            except DeltaError:
                self._m_decode_errors.inc()
                samples = []
            if state.delta.needs_keyframe:
                self._request_keyframe(state)
        else:
            samples = payload
        self._deliver(state, samples)

    def _deliver(self, state: _WorkerIngest, samples: List[InterfaceRates]) -> None:
        self._m_batches.inc()
        state.delivered += 1
        for sample in samples:
            if self.integrity is not None and not self.integrity.inspect_remote(sample):
                continue  # rejected or quarantined: never reaches the table
            self.rates.update(sample)
            self._m_samples.inc()
            # Fresh in-order data for this source: no longer known-lossy.
            self.degraded.clear(sample.node, sample.if_index)
            if self.on_sample is not None:
                self.on_sample(sample)

    # ------------------------------------------------------------------
    # Periodic sweep: lease expiry + ARQ retries/abandonment
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        self.leases.check(self.sim.now)
        for state in self._ingest.values():
            if self.leases.state(state.name) is WorkerState.DEAD:
                continue  # no point retransmit-nagging a dead worker
            self._request_retransmits(state)
            self._abandon_front_gaps(state)

    # ------------------------------------------------------------------
    # Watch / report surface (mirrors NetworkMonitor)
    # ------------------------------------------------------------------
    def watch_path(self, src: str, dst: str, name: Optional[str] = None) -> str:
        label = name if name else f"{src}<->{dst}"
        if label in self._watches:
            raise ValueError(f"watch {label!r} exists")
        self._watches[label] = (src, dst, find_path(self.spec, src, dst))
        return label

    def subscribe(self, callback: Callable[[PathReport], None]) -> None:
        self._subscribers.append(callback)

    def start(self, at: Optional[float] = None) -> None:
        start = self.sim.now if at is None else at
        for worker in self.workers.values():
            worker.start(at=start)
        if self.emit_reports:
            self._report_task = self.sim.call_every(
                self.poll_interval,
                self._emit_reports,
                start=start + self.poll_interval + self.report_offset,
            )
        self._sweep_task = self.sim.call_every(
            self.heartbeat_interval * 0.5,
            self._sweep,
            start=start + self.heartbeat_interval,
        )

    def stop(self) -> None:
        """Stop polling and release every socket (coordinator included),
        so a new plane can be built on the same hosts."""
        for worker in self.workers.values():
            worker.stop()
        for task_attr in ("_report_task", "_sweep_task"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                setattr(self, task_attr, None)
        if not self._suspended:
            self._sink.close()
            self._control.close()

    def suspend(self) -> None:
        """The coordinator *process* stops (crash simulation): its
        sockets close and its periodic tasks stop, but the workers --
        separate processes on separate hosts -- keep polling and
        shipping into the void.  Assignment state survives as the
        recovering process's warm state; per-stream ingest state does
        not, and is rebuilt on :meth:`resume`."""
        if self._suspended:
            return
        self._suspended = True
        for task_attr in ("_report_task", "_sweep_task"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                setattr(self, task_attr, None)
        self._sink.close()
        self._control.close()

    def resume(self) -> None:
        """The coordinator comes back: fresh sockets, fresh per-stream
        ingest state (with ``adopt_streams`` it anchors mid-flight
        streams instead of demanding retransmits back to seq 1), and one
        lease renewal per worker so nobody is declared dead for
        heartbeats lost while the coordinator was down."""
        if not self._suspended:
            return
        self._suspended = False
        self._sink = self.coordinator.create_socket(REPORT_PORT)
        self._sink.on_receive = self._on_datagram
        self._control = self.coordinator.create_socket()
        now = self.sim.now
        for name in self._worker_order:
            self._ingest[name] = _WorkerIngest(
                name, anchored=not self.adopt_streams
            )
            self.leases.beat(name, now)
        if self.emit_reports:
            self._report_task = self.sim.call_every(
                self.poll_interval,
                self._emit_reports,
                start=now + self.report_offset,
            )
        self._sweep_task = self.sim.call_every(
            self.heartbeat_interval * 0.5,
            self._sweep,
            start=now + self.heartbeat_interval,
        )

    def _emit_reports(self) -> None:
        for label, (src, dst, path) in self._watches.items():
            report = self.calculator.measure_path(
                path, src, dst, time=self.sim.now, name=label
            )
            self.history.append(report)
            for callback in self._subscribers:
                callback(report)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def samples_received(self) -> int:
        return int(self._m_samples.value)

    @property
    def decode_errors(self) -> int:
        return int(self._m_decode_errors.value)

    def worker_states(self) -> Dict[str, str]:
        return {name: state.value for name, state in self.leases.states().items()}

    def stats(self) -> Dict[str, float]:
        """Flat operational counters (exports cleanly through telemetry;
        per-worker request counts appear as ``per_worker_requests.<name>``
        keys)."""
        value = self.telemetry.registry.value
        out: Dict[str, float] = {
            "workers": float(len(self.workers)),
            "samples_received": value("dist_samples_received_total"),
            "batches_received": value("dist_batches_received_total"),
            "decode_errors": value("dist_decode_errors_total"),
            "duplicate_batches": value("dist_duplicate_batches_total"),
            "gaps_detected": value("dist_gaps_detected_total"),
            "gaps_filled": value("dist_gaps_filled_total"),
            "gaps_abandoned": value("dist_gaps_abandoned_total"),
            "retx_requests": value("dist_retx_requests_total"),
            "keyframe_requests": value("dist_keyframe_requests_total"),
            "failovers": value("dist_failovers_total"),
            "rebalances": value("dist_rebalances_total"),
            "degraded_sources": float(len(self.degraded)),
        }
        for state in WorkerState:
            out[f"workers_{state.value}"] = float(self.leases.count(state))
        for name, worker in self.workers.items():
            out[f"per_worker_requests.{name}"] = float(worker.requests_sent)
        return out
