"""QoS violation detection with hysteresis.

Single-interval bandwidth samples spike (the paper's max errors reach
16 %), so declaring a violation on one bad report would flap.  The
detector requires ``breach_count`` consecutive breaching reports to enter
VIOLATED and ``clear_count`` consecutive healthy ones to leave it --
standard debouncing, and the "QoS violation detection" the paper lists as
future work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, List, Optional

from repro.core.report import PathReport
from repro.rm.qos import QosRequirement


class QosState(Enum):
    UNKNOWN = "unknown"  # no reports yet
    OK = "ok"
    VIOLATED = "violated"


@dataclass(frozen=True)
class QosEvent:
    """Emitted on every state transition."""

    requirement: QosRequirement
    state: QosState
    time: float
    report: PathReport
    reason: Optional[str]  # breach reason on entry to VIOLATED

    def __str__(self) -> str:
        tail = f" ({self.reason})" if self.reason else ""
        return f"[{self.time:.1f}s] {self.requirement.name}: {self.state.value}{tail}"


EventCallback = Callable[[QosEvent], None]


class ViolationDetector:
    """Debounced threshold detector for one requirement."""

    def __init__(
        self,
        requirement: QosRequirement,
        breach_count: int = 2,
        clear_count: int = 2,
    ) -> None:
        if breach_count < 1 or clear_count < 1:
            raise ValueError("hysteresis counts must be >= 1")
        self.requirement = requirement
        self.breach_count = breach_count
        self.clear_count = clear_count
        self.state = QosState.UNKNOWN
        self._consecutive_breaches = 0
        self._consecutive_ok = 0
        self.events: List[QosEvent] = []
        self._callbacks: List[EventCallback] = []
        self.reports_seen = 0
        self.reports_suppressed = 0
        self.reports_duplicate = 0
        self._last_time: Optional[float] = None

    def subscribe(self, callback: EventCallback) -> None:
        self._callbacks.append(callback)

    def offer(self, report: PathReport) -> Optional[QosEvent]:
        """Feed one report; returns the event if the state changed."""
        if report.label != self.requirement.watch_label and report.name != self.requirement.name:
            return None  # not ours
        if report.time == self._last_time:
            # The incremental matrix hands unchanged pairs the *same*
            # report object; a consumer relaying such a snapshot must not
            # advance the hysteresis streaks twice for one instant.
            self.reports_duplicate += 1
            return None
        self._last_time = report.time
        self.reports_seen += 1
        if self.requirement.suppresses(report):
            # Untrusted numbers are not evidence: hold both streaks
            # where they are rather than counting a breach or a clear.
            self.reports_suppressed += 1
            return None
        reason = self.requirement.violation_reason(report)
        if reason is not None:
            self._consecutive_breaches += 1
            self._consecutive_ok = 0
        else:
            self._consecutive_ok += 1
            self._consecutive_breaches = 0

        new_state = self.state
        if self.state in (QosState.UNKNOWN, QosState.OK):
            if self._consecutive_breaches >= self.breach_count:
                new_state = QosState.VIOLATED
            elif self.state is QosState.UNKNOWN and self._consecutive_ok >= 1:
                new_state = QosState.OK
        elif self.state is QosState.VIOLATED:
            if self._consecutive_ok >= self.clear_count:
                new_state = QosState.OK

        if new_state is self.state:
            return None
        self.state = new_state
        event = QosEvent(
            requirement=self.requirement,
            state=new_state,
            time=report.time,
            report=report,
            reason=reason if new_state is QosState.VIOLATED else None,
        )
        self.events.append(event)
        for callback in self._callbacks:
            callback(event)
        return event

    @property
    def violated(self) -> bool:
        return self.state is QosState.VIOLATED

    def violation_spans(self) -> List[tuple]:
        """(start, end) times of completed violations; end=None if open."""
        spans: List[tuple] = []
        start: Optional[float] = None
        for event in self.events:
            if event.state is QosState.VIOLATED and start is None:
                start = event.time
            elif event.state is QosState.OK and start is not None:
                spans.append((start, event.time))
                start = None
        if start is not None:
            spans.append((start, None))
        return spans


class StreamViolationAdapter:
    """Feeds a detector from stream events instead of monitor callbacks.

    The thin bridge between :mod:`repro.stream` and the RM loop: a
    subscription with ``deliver_unchanged=True`` on the requirement's
    host pair hands this adapter one event per publish cycle; the
    adapter lifts the event's :class:`~repro.core.report.PathReport`
    out, renames it to the requirement's watch label (matrix reports are
    named ``matrix:a<->b``; the detector routes by label), and forwards
    it to ``sink`` -- a :meth:`ViolationDetector.offer` bound method or
    the middleware's report handler.

    Because the heartbeat subscription delivers the *same per-cycle
    cadence* snapshot mode delivers (every cycle, filtered by neither
    dirtiness nor significance deadbands), the detector's
    consecutive-sample hysteresis sees identical evidence and makes
    bit-identical decisions in both modes -- the invariant
    ``tests/test_stream.py`` guards.
    """

    __slots__ = ("requirement", "sink", "events_seen")

    def __init__(
        self, requirement: QosRequirement, sink: Callable[[PathReport], None]
    ) -> None:
        self.requirement = requirement
        self.sink = sink
        self.events_seen = 0

    def subscription_name(self) -> str:
        return f"rm:{self.requirement.watch_label}"

    def attach(self, publisher) -> None:
        """Subscribe this adapter to a stream publisher (push mode)."""
        publisher.manager.subscribe(
            self.subscription_name(),
            pairs=[(self.requirement.src, self.requirement.dst)],
            callback=self.on_event,
            deliver_unchanged=True,
        )

    def on_event(self, event) -> None:
        report = getattr(event, "report", None)
        if report is None:
            return  # query events carry no report
        self.events_seen += 1
        self.sink(replace(report, name=self.requirement.watch_label))
