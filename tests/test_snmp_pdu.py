"""Unit tests for PDU and message encode/decode."""

import pytest

from repro.snmp import ber
from repro.snmp.datatypes import Counter32, Integer, Null, OctetString, TimeTicks
from repro.snmp.errors import ErrorStatus
from repro.snmp.message import VERSION_1, VERSION_2C, Message
from repro.snmp.oid import Oid
from repro.snmp.pdu import Pdu, VarBind


class TestVarBind:
    def test_roundtrip_null(self):
        vb = VarBind(Oid("1.3.6.1.2.1.1.3.0"))
        decoded, end = VarBind.decode(vb.encode(), 0)
        assert decoded == vb
        assert isinstance(decoded.value, Null)

    def test_roundtrip_counter(self):
        vb = VarBind(Oid("1.3.6.1.2.1.2.2.1.10.1"), Counter32(99999))
        decoded, _ = VarBind.decode(vb.encode(), 0)
        assert decoded.value == Counter32(99999)

    def test_trailing_garbage_rejected(self):
        vb = VarBind(Oid("1.3"), Integer(1))
        raw = vb.encode()
        # Splice an extra byte inside the varbind sequence.
        inner = raw[2:] + b"\x00"
        bad = bytes([raw[0], len(inner)]) + inner
        with pytest.raises(ber.BerError):
            VarBind.decode(bad, 0)


class TestPdu:
    def test_get_request_roundtrip(self):
        pdu = Pdu.get_request(42, [Oid("1.3.6.1.2.1.1.3.0"), Oid("1.3.6.1.2.1.1.5.0")])
        decoded, end = Pdu.decode(pdu.encode())
        assert decoded.kind == "get"
        assert decoded.request_id == 42
        assert [vb.oid for vb in decoded.varbinds] == [vb.oid for vb in pdu.varbinds]

    def test_get_next_roundtrip(self):
        pdu = Pdu.get_next_request(7, [Oid("1.3")])
        assert Pdu.decode(pdu.encode())[0].kind == "get-next"

    def test_get_bulk_fields(self):
        pdu = Pdu.get_bulk_request(9, [Oid("1.3")], non_repeaters=1, max_repetitions=20)
        decoded, _ = Pdu.decode(pdu.encode())
        assert decoded.kind == "get-bulk"
        assert decoded.non_repeaters == 1
        assert decoded.max_repetitions == 20

    def test_response_builder_echoes_request_id(self):
        request = Pdu.get_request(1234, [Oid("1.3")])
        response = request.response([VarBind(Oid("1.3"), Integer(5))])
        assert response.kind == "response"
        assert response.request_id == 1234
        assert response.error_status == int(ErrorStatus.NO_ERROR)

    def test_error_response(self):
        request = Pdu.get_request(1, [Oid("1.3")])
        response = request.response(request.varbinds, ErrorStatus.NO_SUCH_NAME, 1)
        decoded, _ = Pdu.decode(response.encode())
        assert decoded.error_status == int(ErrorStatus.NO_SUCH_NAME)
        assert decoded.error_index == 1

    def test_unknown_tag_rejected(self):
        with pytest.raises(ber.BerError):
            Pdu(0xA9, 1)

    def test_mixed_value_types_roundtrip(self):
        pdu = Pdu(
            ber.TAG_GET_RESPONSE,
            5,
            varbinds=[
                VarBind(Oid("1.3.6.1.2.1.1.3.0"), TimeTicks(12345)),
                VarBind(Oid("1.3.6.1.2.1.1.5.0"), OctetString(b"S1")),
                VarBind(Oid("1.3.6.1.2.1.2.2.1.10.1"), Counter32(777)),
            ],
        )
        decoded, _ = Pdu.decode(pdu.encode())
        assert decoded.varbinds[0].value == TimeTicks(12345)
        assert decoded.varbinds[1].value == OctetString(b"S1")
        assert decoded.varbinds[2].value == Counter32(777)


class TestMessage:
    def test_v1_roundtrip(self):
        msg = Message(VERSION_1, "public", Pdu.get_request(1, [Oid("1.3")]))
        decoded = Message.decode(msg.encode())
        assert decoded.version == VERSION_1
        assert decoded.community == "public"
        assert decoded.pdu.request_id == 1

    def test_v2c_roundtrip(self):
        msg = Message(VERSION_2C, "s3cret", Pdu.get_bulk_request(2, [Oid("1.3")], 0, 8))
        decoded = Message.decode(msg.encode())
        assert decoded.version == VERSION_2C
        assert decoded.community == "s3cret"

    def test_unknown_version_rejected(self):
        with pytest.raises(ber.BerError):
            Message(3, "public", Pdu.get_request(1, [Oid("1.3")]))

    def test_trailing_bytes_rejected(self):
        raw = Message(VERSION_1, "public", Pdu.get_request(1, [Oid("1.3")])).encode()
        with pytest.raises(ber.BerError):
            Message.decode(raw + b"\x00")

    def test_garbage_rejected(self):
        with pytest.raises(ber.BerError):
            Message.decode(b"\x01\x02\x03")

    def test_wire_size_realistic(self):
        """A Table-1-style poll of one interface is a small datagram."""
        oids = [Oid("1.3.6.1.2.1.1.3.0")] + [
            Oid(f"1.3.6.1.2.1.2.2.1.{col}.1") for col in (10, 16, 11, 17, 12, 18)
        ]
        raw = Message(VERSION_2C, "public", Pdu.get_request(1, oids)).encode()
        assert 100 < len(raw) < 250
