"""Tests for the repro command-line interface."""

import pytest

from repro.cli import main

GOOD_SPEC = """
network topology demo {
    host L  { snmp community "public"; }
    host S1 { snmp community "public"; }
    host N1 { snmp community "public"; interface el0 { speed 10 Mbps; } }
    switch sw { snmp community "public"; ports 6; }
    hub hb { ports 4; }
    connect L.eth0 <-> sw.port1;
    connect S1.eth0 <-> sw.port2;
    connect sw.port3 <-> hb.port1;
    connect N1.el0 <-> hb.port2;
}
"""

BAD_SPEC = """
network topology broken {
    host A { }
    connect A.eth0 <-> ghost.port1;
}
"""


@pytest.fixture
def good_spec(tmp_path):
    path = tmp_path / "demo.net"
    path.write_text(GOOD_SPEC)
    return str(path)


@pytest.fixture
def bad_spec(tmp_path):
    path = tmp_path / "broken.net"
    path.write_text(BAD_SPEC)
    return str(path)


class TestValidate:
    def test_good_spec_exits_zero(self, good_spec, capsys):
        assert main(["validate", good_spec]) == 0
        out = capsys.readouterr().out
        assert "ok: 5 nodes, 4 connections" in out

    def test_bad_spec_exits_one(self, bad_spec, capsys):
        assert main(["validate", bad_spec]) == 1
        captured = capsys.readouterr()
        assert "unknown node 'ghost'" in captured.out
        assert "error(s)" in captured.err

    def test_unparseable_file(self, tmp_path, capsys):
        path = tmp_path / "junk.net"
        path.write_text("this is not a spec")
        assert main(["validate", str(path)]) == 1

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent/path.net"]) == 1


class TestShow:
    def test_prints_normalised_spec(self, good_spec, capsys):
        assert main(["show", good_spec]) == 0
        out = capsys.readouterr().out
        assert "network topology demo {" in out
        assert "# hosts: L, S1, N1" in out
        assert "# snmp-enabled:" in out

    def test_bad_spec_fails(self, bad_spec):
        assert main(["show", bad_spec]) == 1


class TestMonitor:
    def test_end_to_end_monitoring(self, good_spec, capsys):
        code = main([
            "monitor", good_spec, "--host", "L",
            "--watch", "S1:N1",
            "--load", "L:N1:200:5:20",
            "--until", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S1<->N1:" in out
        assert "used max" in out
        assert "timeouts" in out

    def test_chart_flag(self, good_spec, capsys):
        code = main([
            "monitor", good_spec, "--host", "L",
            "--watch", "S1:N1", "--until", "12", "--chart",
        ])
        assert code == 0
        assert "measured used bandwidth" in capsys.readouterr().out

    def test_watch_required(self, good_spec, capsys):
        assert main(["monitor", good_spec, "--host", "L"]) == 2

    def test_malformed_watch(self, good_spec, capsys):
        code = main(["monitor", good_spec, "--host", "L", "--watch", "S1"])
        assert code == 2

    def test_malformed_load(self, good_spec, capsys):
        code = main([
            "monitor", good_spec, "--host", "L",
            "--watch", "S1:N1", "--load", "L:N1:200",
        ])
        assert code == 2

    def test_unknown_host(self, good_spec, capsys):
        code = main(["monitor", good_spec, "--host", "nope", "--watch", "S1:N1"])
        assert code == 2


class TestDiscover:
    def test_discovery_runs_clean(self, good_spec, capsys):
        assert main(["discover", good_spec, "--host", "L"]) == 0
        out = capsys.readouterr().out
        assert "sw port 1: L" in out
        assert "mismatch" not in out

    def test_bad_spec_fails(self, bad_spec):
        assert main(["discover", bad_spec, "--host", "L"]) == 1


REDUNDANT_SPEC = """
network topology redundant {
    host A { snmp community "public"; }
    host B { snmp community "public"; }
    switch sw1 { snmp community "public"; ports 4; stp "on"; }
    switch sw2 { snmp community "public"; ports 4; stp "on"; }
    connect A.eth0 <-> sw1.port1;
    connect B.eth0 <-> sw2.port1;
    connect sw1.port3 <-> sw2.port3;
    connect sw1.port4 <-> sw2.port4;
}
"""


@pytest.fixture
def redundant_spec(tmp_path):
    path = tmp_path / "redundant.net"
    path.write_text(REDUNDANT_SPEC)
    return str(path)


class TestTopology:
    def test_stp_view_and_active_paths(self, redundant_spec, capsys):
        assert main(["topology", redundant_spec, "--host", "A"]) == 0
        out = capsys.readouterr().out
        assert "root bridge" in out
        assert "blocked connections: sw1.port" in out
        assert "A <-> B [redundant]:" in out
        assert "1 topology change(s), 0 path reroute(s)" in out

    def test_fail_uplink_shows_failover(self, redundant_spec, capsys):
        code = main([
            "topology", redundant_spec, "--host", "A",
            "--until", "16", "--fail-uplink", "sw1:sw2:8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "failing active uplink" in out
        assert "1 path reroute(s)" in out
        assert "==>" in out  # the reroute's old ==> new connection series

    def test_fail_uplink_bad_format(self, redundant_spec, capsys):
        code = main([
            "topology", redundant_spec, "--host", "A", "--fail-uplink", "sw1",
        ])
        assert code == 2
        assert "--fail-uplink wants" in capsys.readouterr().err

    def test_fail_uplink_unknown_switch(self, redundant_spec, capsys):
        code = main([
            "topology", redundant_spec, "--host", "A",
            "--fail-uplink", "sw1:ghost",
        ])
        assert code == 1

    def test_loop_free_spec_has_no_stp(self, good_spec, capsys):
        assert main(["topology", good_spec, "--host", "L", "--until", "8"]) == 0
        out = capsys.readouterr().out
        assert "(no STP-enabled switches)" in out
        assert "single-path" in out


class TestMatrix:
    def test_matrix_renders(self, good_spec, capsys):
        code = main([
            "matrix", good_spec, "--host", "L",
            "--load", "L:N1:400:5:25", "--until", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "path available (KB/s)" in out
        assert "tightest pair" in out
        assert "N1" in out

    def test_matrix_utilization_metric(self, good_spec, capsys):
        code = main([
            "matrix", good_spec, "--host", "L", "--until", "10",
            "--metric", "utilization",
        ])
        assert code == 0
        assert "%" in capsys.readouterr().out

    def test_matrix_bad_host(self, good_spec, capsys):
        assert main(["matrix", good_spec, "--host", "zzz"]) == 1


class TestTsdb:
    def test_default_testbed_prints_storage_stats(self, capsys):
        assert main(["tsdb", "--until", "30"]) == 0
        out = capsys.readouterr().out
        assert "storage after 30.0 simulated seconds" in out
        assert "S1<->N1" in out
        assert "(total)" in out
        assert "ratio" in out

    def test_range_query_prints_samples(self, capsys):
        code = main([
            "tsdb", "--until", "20", "--load", "L:N1:200:5:15",
            "--range", "S1:N1", "--start", "5", "--end", "15",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "used_bps" in out and "available_bps" in out

    def test_windowed_aggregate_query(self, capsys):
        code = main([
            "tsdb", "--until", "30", "--range", "S1:N1",
            "--window", "10", "--agg", "max", "--field", "used_bps",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max(used_bps)" in out

    def test_retention_flags_accepted(self, capsys):
        code = main([
            "tsdb", "--until", "30", "--retention", "10", "--downsample", "5",
        ])
        assert code == 0
        assert "storage after" in capsys.readouterr().out

    def test_unknown_range_series_fails(self, capsys):
        code = main(["tsdb", "--until", "10", "--range", "S2:N9"])
        assert code == 2
        assert "no series" in capsys.readouterr().err

    def test_unknown_field_fails(self, capsys):
        code = main([
            "tsdb", "--until", "10", "--range", "S1:N1", "--field", "bogus",
        ])
        assert code == 2
        assert "no field" in capsys.readouterr().err

    def test_spec_file_requires_host_and_watch(self, good_spec, capsys):
        assert main(["tsdb", good_spec]) == 2
        assert main(["tsdb", good_spec, "--host", "L"]) == 2

    def test_spec_file_end_to_end(self, good_spec, capsys):
        code = main([
            "tsdb", good_spec, "--host", "L", "--watch", "S1:N1",
            "--until", "20",
        ])
        assert code == 0
        assert "S1<->N1" in capsys.readouterr().out

    def test_negative_retention_rejected(self, capsys):
        assert main(["tsdb", "--until", "10", "--retention", "-5"]) == 2
        assert "history_retention_s" in capsys.readouterr().err


class TestDistributed:
    def test_testbed_defaults_run_clean(self, capsys):
        assert main(["distributed", "--until", "15"]) == 0
        out = capsys.readouterr().out
        assert "coordinator L" in out
        assert "L [alive], S1 [alive], S2 [alive]" in out
        assert "per_worker_requests.S2" in out

    def test_crash_injection_shows_failover(self, capsys):
        code = main([
            "distributed", "--until", "40",
            "--load", "L:N1:200:5:35",
            "--crash", "S2:10:25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "alive -> suspect" in out
        assert "suspect -> dead" in out
        assert "recovering -> alive" in out

    def test_spec_file_requires_coordinator_and_workers(self, good_spec, capsys):
        assert main(["distributed", good_spec, "--watch", "S1:N1"]) == 2

    def test_spec_file_plane(self, good_spec, capsys):
        code = main([
            "distributed", good_spec,
            "--coordinator", "L", "--worker", "L", "--worker", "S1",
            "--watch", "S1:N1", "--until", "15",
        ])
        assert code == 0
        assert "S1<->N1" in capsys.readouterr().out

    def test_unknown_crash_worker_rejected(self, capsys):
        assert main(["distributed", "--crash", "nope:5"]) == 2

    def test_malformed_crash_rejected(self, capsys):
        assert main(["distributed", "--crash", "S2"]) == 2


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_fig5_runs(self, capsys):
        assert main(["experiment", "fig5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "hub sum" in out


class TestStream:
    def test_default_testbed_runs_clean(self, capsys):
        code = main(["stream", "--until", "30", "--load", "L:N1:500:5:25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stream after 30.0 simulated seconds" in out
        assert "[policy drop_oldest, bound 256]" in out
        assert "stream counters:" in out
        assert "subscribers: 1" in out
        assert "filter_resets: 0" in out
        assert "subscription 'cli':" in out

    def test_threshold_query_fires(self, capsys):
        code = main([
            "stream", "--until", "20",
            "--pair", "S1:N1",
            "--load", "L:N1:300:2:18",
            "--threshold", "S1:N1:2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "query threshold0:S1<->N1 FIRED" in out
        assert "queries: 1" in out

    def test_percentile_query_registered(self, capsys):
        code = main([
            "stream", "--until", "20",
            "--pair", "S1:N1",
            "--load", "L:N1:600:2:18",
            "--percentile", "S1:N1:0.9:0.01",
        ])
        assert code == 0
        assert "queries: 1" in capsys.readouterr().out

    def test_conflate_policy_bounds_pending(self, capsys):
        code = main([
            "stream", "--until", "30",
            "--load", "L:N1:500:5:25",
            "--policy", "conflate", "--bound", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[policy conflate, bound 4]" in out
        # At most `bound` pending events survive however long the run.
        pending = int(out.split("simulated seconds: ")[1].split(" pending")[0])
        assert pending <= 4

    def test_no_significance_suppresses_nothing(self, capsys):
        code = main([
            "stream", "--until", "20", "--no-significance",
            "--load", "L:N1:400:2:18",
        ])
        assert code == 0
        assert "suppressed: 0" in capsys.readouterr().out

    def test_spec_file_requires_host(self, good_spec, capsys):
        assert main(["stream", good_spec]) == 2

    def test_spec_file_end_to_end(self, good_spec, capsys):
        code = main([
            "stream", good_spec, "--host", "L",
            "--pair", "S1:N1", "--until", "15",
            "--load", "L:N1:300:2:12",
        ])
        assert code == 0
        assert "N1<->S1" in capsys.readouterr().out  # pair keys sort

    def test_malformed_threshold_rejected(self, capsys):
        assert main(["stream", "--threshold", "S1:N1"]) == 2

    def test_malformed_percentile_rejected(self, capsys):
        assert main(["stream", "--percentile", "S1:N1:0.9"]) == 2

    def test_bad_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--policy", "teleport"])


class TestProbe:
    def test_default_testbed_runs_clean(self, capsys):
        code = main(["probe", "--until", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "probe plane after 30.0 simulated seconds" in out
        assert "latest trains:" in out
        assert "S1<->N1: probe achievable" in out
        assert "active and passive planes agree" in out
        assert "trains_started" in out

    def test_rtt_flag_runs_echo_sessions(self, capsys):
        code = main(["probe", "--rtt", "--until", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rtt sessions:" in out
        assert "rtt min/mean/max" in out
        assert "loss 0%" in out

    def test_budget_flag_stretches_round_interval(self, capsys):
        code = main(["probe", "--until", "20", "--budget", "0.01"])
        assert code == 0
        assert "round interval 1.92s" in capsys.readouterr().out

    def test_spec_file_requires_host(self, good_spec, capsys):
        assert main(["probe", good_spec]) == 2

    def test_spec_file_requires_watch(self, good_spec, capsys):
        assert main(["probe", good_spec, "--host", "L"]) == 2

    def test_spec_file_end_to_end(self, good_spec, capsys):
        code = main([
            "probe", good_spec, "--host", "L",
            "--watch", "S1:N1", "--until", "20",
            "--load", "L:N1:300:2:15",
        ])
        assert code == 0
        assert "S1<->N1: probe achievable" in capsys.readouterr().out

    def test_unknown_watch_host_rejected(self, capsys):
        assert main(["probe", "--watch", "S1:ghost"]) == 2

    def test_bad_budget_rejected(self, capsys):
        assert main(["probe", "--budget", "0.9"]) == 2
