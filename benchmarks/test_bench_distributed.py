"""Chaos gate for the fault-tolerant distributed monitoring plane.

Two seeded runs of the same scenario -- one fault-free, one with a
worker killed mid-run -- back the two acceptance properties:

- **Re-coverage within three poll cycles.**  After the crash every
  watched path must be back to trusted, fresh reports no later than
  ``crash + 3 * poll_interval``; in the detection window the affected
  reports must be degraded (low confidence), never silently served from
  the dead worker's last samples.
- **Bounded overhead.**  Surviving a crash must not blow up the plane's
  own footprint: the chaos run's SNMP request load and its host-NIC
  traffic each stay within 10 % of the fault-free plane's.
"""

import pytest

from repro.core.distributed import DistributedMonitor
from repro.experiments.testbed import build_testbed
from repro.simnet.faults import WorkerCrash
from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

POLL_INTERVAL = 2.0
CRASH_AT = 10.0
RECOVER_AT = 25.0
UNTIL = 40.0


def run_plane(crash: bool):
    build = build_testbed()
    net = build.network
    dm = DistributedMonitor(
        build, "L", ["L", "S1", "S2"],
        poll_interval=POLL_INTERVAL, poll_jitter=0.0, seed=0,
    )
    dm.watch_path("S1", "N1")
    reports = []
    dm.subscribe(reports.append)
    StaircaseLoad(
        net.host("L"), net.ip_of("N1"), StepSchedule.pulse(5.0, 35.0, 200_000.0)
    ).start()
    if crash:
        WorkerCrash(net.sim, dm.workers["S2"], at=CRASH_AT, until=RECOVER_AT)
    traffic_base = sum(
        h.interfaces[0].counters.out_octets for h in net.hosts.values()
    )
    dm.start()
    net.run(UNTIL)
    traffic = sum(
        h.interfaces[0].counters.out_octets for h in net.hosts.values()
    ) - traffic_base
    requests = sum(
        v for k, v in dm.stats().items() if k.startswith("per_worker_requests.")
    )
    return reports, dm.stats(), requests, traffic


@pytest.fixture(scope="module")
def fault_free():
    return run_plane(crash=False)


def test_bench_failover_recoverage_within_three_cycles(benchmark):
    reports, stats, _, _ = benchmark.pedantic(
        lambda: run_plane(crash=True), rounds=1, iterations=1
    )
    assert stats["failovers"] >= 1.0 and stats["rebalances"] >= 1.0

    deadline = CRASH_AT + 3 * POLL_INTERVAL
    settled = [r for r in reports if deadline <= r.time < RECOVER_AT]
    assert settled, "no reports emitted after the re-coverage deadline"
    assert all(r.trusted for r in settled), (
        "path not back to trusted within 3 poll cycles of the crash: "
        + ", ".join(f"{r.time:.1f}s={r.status}" for r in settled if not r.trusted)
    )
    # Never silently stale: the detection window flags the loss.
    gap_window = [r for r in reports if CRASH_AT + 1.0 <= r.time <= deadline]
    degraded = [r for r in gap_window if not r.trusted]
    assert degraded, "crash window produced no degraded reports"
    recovered = min(r.time for r in reports if r.time > CRASH_AT and r.trusted)
    print(f"\nfirst trusted report {recovered - CRASH_AT:.1f}s after the crash "
          f"(deadline {3 * POLL_INTERVAL:.1f}s); "
          f"{len(degraded)}/{len(gap_window)} gap-window reports degraded")


def test_bench_failover_overhead_under_ten_percent(benchmark, fault_free):
    _, _, base_requests, base_traffic = fault_free
    _, chaos_stats, chaos_requests, chaos_traffic = benchmark.pedantic(
        lambda: run_plane(crash=True), rounds=1, iterations=1
    )
    req_ratio = chaos_requests / base_requests
    traffic_ratio = chaos_traffic / base_traffic
    print(f"\nSNMP requests: {base_requests:.0f} fault-free vs "
          f"{chaos_requests:.0f} chaos ({req_ratio:.3f}x); "
          f"host-NIC bytes {traffic_ratio:.3f}x; "
          f"retx={chaos_stats['retx_requests']:.0f}")
    # A crash pauses one worker's polling and hands its share to the
    # survivors; the control traffic that makes that happen must stay in
    # the noise: within 10 % of the fault-free plane in both directions.
    assert 0.90 <= req_ratio <= 1.10
    assert 0.90 <= traffic_ratio <= 1.10
