"""Fault injection for the simulated LAN.

DeSiDeRaTa "performs QoS monitoring and failure detection"; a monitor
that is only ever shown a healthy network is untestable on half its job.
This module injects the failures a real LAN suffers:

- :class:`LinkFailure`      -- take a link down (both directions drop
  everything) and optionally restore it later.  Interface operational
  state follows, so SNMP ``ifOperStatus`` and link-state traps react.
- :class:`PacketLoss`       -- random, seeded per-direction frame loss on
  a link (a flaky cable).
- :class:`AgentOutage`      -- an SNMP daemon stops answering for a while
  (the process crashed); the manager sees timeouts, exactly what the
  paper's monitor would have experienced.
- :class:`AgentReboot`      -- the daemon dies *and comes back with
  sysUpTime and all counters reset* (host reboot / demon restart),
  exercising the poller's restart-detection and re-baselining path.
- :class:`ResponseDelay`    -- the agent still answers, just slowly (an
  overloaded host), exercising the manager's adaptive RTO estimation.
- :class:`Flap`             -- a link that goes down and up periodically
  (a half-seated connector), exercising link-state and health hysteresis.
- :class:`CounterCorruption` -- the agent *answers normally but lies*:
  octet counters come back random, frozen or scaled (firmware bugs,
  memory corruption, byzantine agents), exercising the measurement-
  integrity pipeline end to end.
- :class:`StuckCounters`    -- CounterCorruption specialised to frozen
  traffic counters (octets and packets), the classic wedged-driver bug.
- :class:`SpeedMisreport`   -- the agent claims a wrong ifSpeed,
  exercising the integrity pipeline's speed cross-validation.
- :class:`WorkerCrash`      -- a distributed monitoring *worker* process
  dies (the host stays healthy), exercising lease expiry and poll-target
  failover in the distributed plane.
- :class:`NetworkPartition` -- links silently drop everything while
  staying administratively up (grey failure): no linkDown trap, no
  oper-status change, only end-to-end liveness machinery notices.

All injections are plain objects driven by the simulation clock and are
fully deterministic under a seed.

The lying faults are **size-preserving**: a corrupted value is re-encoded
padded with leading zero octets to the genuine value's BER content
length (a legal encoding the decoder accepts), so response datagrams
keep their exact original size and timing.  That matters here because
SNMP responses are real bytes on the simulated wire and count into the
measured octet rates -- a fault that changed message sizes would perturb
measurements on every shared link, not just lie about one interface.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, _Channel
from repro.simnet.packet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover - simnet must not import telemetry eagerly
    from repro.telemetry.events import EventBus


class FaultError(RuntimeError):
    """Raised for invalid fault configuration."""


def _link_label(link: Link) -> str:
    return f"{link.end_a.full_name}<->{link.end_b.full_name}"


def find_link(network, a: str, b: str, index: int = 0) -> Link:
    """The ``index``-th link joining devices ``a`` and ``b`` (by name).

    Redundant uplinks are parallel links between the same two switches;
    ``index`` (wiring order) selects which one.  Raises
    :class:`FaultError` when no such link exists, so chaos scenarios fail
    loudly on topology typos instead of silently injecting nothing.
    """
    matches = [
        link
        for link in network.links
        if {link.end_a.device_name, link.end_b.device_name} == {a, b}
    ]
    if not matches:
        raise FaultError(f"no link joins {a!r} and {b!r}")
    if not 0 <= index < len(matches):
        raise FaultError(
            f"{a!r}<->{b!r} has {len(matches)} link(s); no index {index}"
        )
    return matches[index]


def _publish(
    events: Optional["EventBus"], injected: bool, now: float, fault: object, **attrs
) -> None:
    """Publish a fault lifecycle event when an :class:`EventBus` is wired.

    Every fault class takes an optional ``events`` bus (normally the
    monitor's ``telemetry.events``) so experiments can correlate injected
    failures with the monitor's reaction on one timeline.
    """
    if events is None:
        return
    from repro.telemetry.events import FAULT_CLEARED, FAULT_INJECTED

    events.publish(
        FAULT_INJECTED if injected else FAULT_CLEARED,
        now,
        fault=type(fault).__name__,
        **attrs,
    )


class LinkFailure:
    """Severs a link at ``at`` and optionally restores it at ``until``.

    Implementation: both endpoint interfaces are administratively downed,
    which makes transmission fail (out_discards) and reception drop
    (in_discards) -- indistinguishable, from above, from a yanked cable.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        at: float,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until is not None and until <= at:
            raise FaultError(f"restore time {until!r} must follow failure time {at!r}")
        self.sim = sim
        self.link = link
        self.at = at
        self.until = until
        self.events = events
        self.failed = False
        sim.schedule_at(max(at, sim.now), self._fail)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._restore)

    @classmethod
    def between(
        cls,
        network,
        a: str,
        b: str,
        at: float,
        until: Optional[float] = None,
        index: int = 0,
        events: Optional["EventBus"] = None,
    ) -> "LinkFailure":
        """Sever the ``index``-th link joining devices ``a`` and ``b``.

        The by-name form chaos scenarios use to kill a specific uplink of
        a redundant switch-to-switch pair.
        """
        return cls(
            network.sim, find_link(network, a, b, index), at, until=until, events=events
        )

    def _fail(self) -> None:
        self.failed = True
        for iface in self.link.endpoints:
            iface.set_admin_up(False)
        _publish(self.events, True, self.sim.now, self, link=_link_label(self.link))

    def _restore(self) -> None:
        self.failed = False
        for iface in self.link.endpoints:
            iface.set_admin_up(True)
        _publish(self.events, False, self.sim.now, self, link=_link_label(self.link))


class PacketLoss:
    """Seeded random frame loss on a link (both directions).

    Installs a drop filter on both directional channels: each offered
    frame is dropped with probability ``loss_rate`` before it enqueues,
    counted in the channel's drop statistics.
    """

    def __init__(
        self,
        link: Link,
        loss_rate: float,
        seed: int = 0,
        events: Optional["EventBus"] = None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise FaultError(f"loss rate {loss_rate!r} outside [0, 1]")
        self.link = link
        self.loss_rate = loss_rate
        self.rng = random.Random(seed)
        self.frames_lost = 0
        self._wrap(link._a_to_b)
        self._wrap(link._b_to_a)
        # PacketLoss is permanent from construction; the injection event
        # fires immediately and there is no matching cleared event.
        _publish(
            events, True, link.sim.now, self,
            link=_link_label(link), loss_rate=loss_rate,
        )

    def _wrap(self, channel: _Channel) -> None:
        def should_drop(frame: EthernetFrame) -> bool:
            if self.rng.random() < self.loss_rate:
                self.frames_lost += 1
                return True
            return False

        channel.drop_filter = should_drop


class AgentOutage:
    """An SNMP agent stops responding during [at, until).

    Models a crashed/hung daemon: requests are still *received* (and
    counted) but produce no response, so the manager runs into its
    timeout/retry machinery.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        at: float,
        until: float,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until <= at:
            raise FaultError(f"outage end {until!r} must follow start {at!r}")
        self.sim = sim
        self.agent = agent
        self.at = at
        self.until = until
        self.events = events
        self.down = False
        self.requests_ignored = 0
        self._original = agent.socket.on_receive
        sim.schedule_at(max(at, sim.now), self._begin)
        sim.schedule_at(max(until, sim.now), self._end)

    def _begin(self) -> None:
        self.down = True

        def black_hole(payload, size, src_ip, src_port):
            self.agent.in_packets += 1
            self.requests_ignored += 1

        self.agent.socket.on_receive = black_hole
        _publish(self.events, True, self.sim.now, self, agent=self.agent.name)

    def _end(self) -> None:
        self.down = False
        self.agent.socket.on_receive = self._original
        _publish(self.events, False, self.sim.now, self, agent=self.agent.name)


class AgentReboot:
    """The SNMP daemon's host reboots: silent during [at, at+outage),
    then back **with sysUpTime restarted and every counter zeroed**.

    This is the failure mode the poller's ``agent_restarts`` branch
    exists for: after the reboot the old counter baselines are garbage
    (they would yield colossal negative-looking deltas), and the first
    post-reboot poll must only re-establish baselines.  The sysUpTime
    reset is what gives the restart away, exactly as MIB-II intends.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        at: float,
        outage: float = 2.0,
        events: Optional["EventBus"] = None,
    ) -> None:
        if outage <= 0:
            raise FaultError(f"non-positive reboot outage {outage!r}")
        self.sim = sim
        self.agent = agent
        self.at = at
        self.outage = outage
        self.events = events
        self.down = False
        self.rebooted = False
        self.requests_ignored = 0
        self._original = agent.socket.on_receive
        sim.schedule_at(max(at, sim.now), self._begin)
        sim.schedule_at(max(at + outage, sim.now), self._come_back)

    def _begin(self) -> None:
        self.down = True

        def black_hole(payload, size, src_ip, src_port):
            self.agent.in_packets += 1
            self.requests_ignored += 1

        self.agent.socket.on_receive = black_hole
        _publish(self.events, True, self.sim.now, self, agent=self.agent.name)

    def _come_back(self) -> None:
        # Local imports: simnet must not depend on snmp at module level.
        from repro.snmp.mib import CachingMibTree, MibError, build_mib2, register_snmp_group

        device = getattr(self.agent.endpoint, "switch", self.agent.endpoint)
        for iface in getattr(device, "interfaces", []):
            counters = iface.counters
            for name in counters.__slots__:
                setattr(counters, name, 0)
        # Rebuild the MIB with boot_time = now, so sysUpTime restarts at
        # zero; preserve a caching wrapper's refresh interval if present.
        old_mib = self.agent.mib
        mib = build_mib2(device, self.sim, boot_time=self.sim.now)
        try:
            register_snmp_group(mib, self.agent)
        except MibError:
            pass
        if isinstance(old_mib, CachingMibTree):
            mib = CachingMibTree(mib, self.sim, old_mib.refresh_interval)
        self.agent.mib = mib
        self.agent.socket.on_receive = self._original
        self.down = False
        self.rebooted = True
        _publish(
            self.events, False, self.sim.now, self,
            agent=self.agent.name, rebooted=True,
        )


class ResponseDelay:
    """An alive-but-slow agent: responses take ``extra`` seconds longer
    during [at, until) (or forever, when ``until`` is None).

    Models an overloaded host whose daemon still answers everything.  A
    fixed-timeout manager would retransmit (or give up on) every poll; an
    adaptive one should raise that destination's RTO and keep polling
    cleanly once the estimator converges.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        extra: float,
        at: float = 0.0,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if extra <= 0:
            raise FaultError(f"non-positive extra delay {extra!r}")
        if until is not None and until <= at:
            raise FaultError(f"delay end {until!r} must follow start {at!r}")
        self.sim = sim
        self.agent = agent
        self.extra = extra
        self.events = events
        self.active = False
        sim.schedule_at(max(at, sim.now), self._begin)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._end)

    def _begin(self) -> None:
        self.active = True
        self.agent.response_delay += self.extra
        _publish(
            self.events, True, self.sim.now, self,
            agent=self.agent.name, extra=self.extra,
        )

    def _end(self) -> None:
        if self.active:
            self.agent.response_delay -= self.extra
            self.active = False
            _publish(self.events, False, self.sim.now, self, agent=self.agent.name)


class _TamperedMib:
    """Delegating MIB view that rewrites selected values on the way out.

    Wraps whatever the agent currently serves (a plain ``MibTree`` or a
    ``CachingMibTree``) and applies ``rewrite(oid, value)`` to every GET
    and GETNEXT result.  Everything else -- subtree checks, attributes
    like ``refresh_interval`` -- delegates to the wrapped tree, so the
    agent cannot tell the difference and neither can a reboot fault that
    later replaces ``agent.mib`` wholesale.
    """

    def __init__(self, inner, rewrite) -> None:
        self.inner = inner
        self._rewrite = rewrite

    def get(self, oid):
        value = self.inner.get(oid)
        return None if value is None else self._rewrite(oid, value)

    def get_next(self, oid):
        hit = self.inner.get_next(oid)
        if hit is None:
            return None
        next_oid, value = hit
        return next_oid, self._rewrite(next_oid, value)

    def has_subtree(self, oid):
        return self.inner.has_subtree(oid)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _padded_unsigned(prototype, value: int):
    """Re-encode ``value`` as ``prototype``'s type, padded to its length.

    Returns an instance whose ``encode()`` output is byte-for-byte the
    same *length* as the prototype's: the content is left-padded with
    zero octets up to the prototype's minimal content length (BER
    permits redundant leading zeros for unsigned types and the decoder
    accepts them).  ``value`` must fit in the prototype's length; use
    :func:`_fit_to_length` first.
    """
    from repro.snmp import ber

    target_len = len(ber.encode_unsigned_content(prototype.value, prototype.bits))

    class _Padded(type(prototype)):
        def encode(self) -> bytes:
            content = ber.encode_unsigned_content(self.value, self.bits)
            if len(content) < target_len:
                content = b"\x00" * (target_len - len(content)) + content
            return ber.encode_tlv(self.tag, content)

    _Padded.__name__ = f"Padded{type(prototype).__name__}"
    return _Padded(value)


def _fit_to_length(value: int, prototype) -> int:
    """Shrink ``value`` until its minimal encoding fits the prototype's."""
    from repro.snmp import ber

    target_len = len(ber.encode_unsigned_content(prototype.value, prototype.bits))
    while len(ber.encode_unsigned_content(value, prototype.bits)) > target_len:
        value >>= 8
    return value


class CounterCorruption:
    """An agent that answers normally but serves corrupted octet counters.

    Modes (all size-preserving, see the module docstring):

    - ``"random"`` -- every read of a targeted counter returns a fresh
      seeded-random value.  Deltas become garbage; derived rates blow
      through the line-rate bound almost every poll, so the per-sample
      validators catch this without any cross-checking.
    - ``"stuck"``  -- the first value read after injection is frozen and
      served forever.  Deltas are zero: individually plausible, only
      suspicious after activity, conclusively caught by the two-ended
      cross-check.
    - ``"scaled"`` -- the true value is multiplied by ``scale`` (mod
      2^32).  Rates scale accordingly and stay under line rate for
      ``scale < 1``: invisible to per-sample validation, this is the
      byzantine case the two-ended cross-check exists for.

    ``if_index`` limits corruption to one interface (None: all).  The
    corrupted columns default to ifInOctets/ifOutOctets; pass ``columns``
    to widen (see :class:`StuckCounters`).
    """

    MODES = ("random", "stuck", "scaled")

    def __init__(
        self,
        sim: Simulator,
        agent,
        at: float,
        until: Optional[float] = None,
        mode: str = "random",
        scale: float = 0.5,
        if_index: Optional[int] = None,
        seed: int = 0,
        columns=None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if mode not in self.MODES:
            raise FaultError(f"unknown corruption mode {mode!r}; pick from {self.MODES}")
        if until is not None and until <= at:
            raise FaultError(f"corruption end {until!r} must follow start {at!r}")
        if mode == "scaled" and scale < 0:
            raise FaultError(f"negative scale {scale!r}")
        self.sim = sim
        self.agent = agent
        self.at = at
        self.until = until
        self.mode = mode
        self.scale = scale
        self.if_index = if_index
        self.rng = random.Random(seed)
        self.events = events
        self.active = False
        self.values_corrupted = 0
        self._frozen = {}  # oid -> first value served while stuck
        self._proxy = None
        self._columns = columns  # resolved lazily (simnet must not import snmp here)
        sim.schedule_at(max(at, sim.now), self._begin)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._end)

    def _column_oids(self):
        from repro.snmp.mib import IF_IN_OCTETS, IF_OUT_OCTETS

        return (IF_IN_OCTETS, IF_OUT_OCTETS)

    def _begin(self) -> None:
        if self._columns is None:
            self._columns = self._column_oids()
        self._proxy = _TamperedMib(self.agent.mib, self._rewrite)
        self.agent.mib = self._proxy
        self.active = True
        _publish(
            self.events, True, self.sim.now, self,
            agent=self.agent.name, mode=self.mode,
            if_index=self.if_index if self.if_index is not None else "*",
        )

    def _end(self) -> None:
        if not self.active:
            return
        self.active = False
        # Unwrap only our own proxy; an AgentReboot may have replaced
        # agent.mib since, in which case the corruption died with it.
        if self.agent.mib is self._proxy:
            self.agent.mib = self._proxy.inner
        self._frozen.clear()
        _publish(
            self.events, False, self.sim.now, self,
            agent=self.agent.name, mode=self.mode,
        )

    def _targets(self, oid) -> bool:
        for column in self._columns:
            if oid.startswith(column):
                if self.if_index is None or oid.arcs[-1] == self.if_index:
                    return True
        return False

    def _rewrite(self, oid, value):
        from repro.snmp.datatypes import Counter32

        if not isinstance(value, Counter32) or not self._targets(oid):
            return value
        if self.mode == "random":
            corrupt = self.rng.randrange(1 << 32)
        elif self.mode == "stuck":
            corrupt = self._frozen.setdefault(oid, value.value)
        else:  # scaled
            corrupt = int(value.value * self.scale) % (1 << 32)
        corrupt = _fit_to_length(corrupt, value)
        self.values_corrupted += 1
        return _padded_unsigned(value, corrupt)


class StuckCounters(CounterCorruption):
    """All of an interface's traffic counters freeze (wedged driver).

    :class:`CounterCorruption` in ``"stuck"`` mode widened to the packet
    counters too, so the served ifTable row is self-consistent -- octets
    and packets stop together, exactly like a driver that stopped
    updating its statistics block.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        at: float,
        until: Optional[float] = None,
        if_index: Optional[int] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        super().__init__(
            sim, agent, at, until=until, mode="stuck",
            if_index=if_index, events=events,
        )

    def _column_oids(self):
        from repro.snmp.mib import (
            IF_IN_NUCAST_PKTS,
            IF_IN_OCTETS,
            IF_IN_UCAST_PKTS,
            IF_OUT_NUCAST_PKTS,
            IF_OUT_OCTETS,
            IF_OUT_UCAST_PKTS,
        )

        return (
            IF_IN_OCTETS,
            IF_OUT_OCTETS,
            IF_IN_UCAST_PKTS,
            IF_OUT_UCAST_PKTS,
            IF_IN_NUCAST_PKTS,
            IF_OUT_NUCAST_PKTS,
        )


class SpeedMisreport:
    """The agent claims a wrong ifSpeed for one interface.

    Models a misnegotiated NIC or buggy firmware: the monitor's
    rate-vs-capacity reasoning silently skews unless the integrity
    pipeline's speed validator compares the claim against the topology
    declaration.  Size-preserving only when the claimed value's minimal
    encoding is no longer than the true one (it is padded up); a longer
    claim raises at injection time rather than silently perturbing the
    wire.
    """

    def __init__(
        self,
        sim: Simulator,
        agent,
        if_index: int,
        claimed_bps: float,
        at: float,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until is not None and until <= at:
            raise FaultError(f"misreport end {until!r} must follow start {at!r}")
        if claimed_bps <= 0:
            raise FaultError(f"non-positive claimed speed {claimed_bps!r}")
        self.sim = sim
        self.agent = agent
        self.if_index = if_index
        self.claimed_bps = int(claimed_bps)
        self.events = events
        self.active = False
        self.values_corrupted = 0
        self._proxy = None
        sim.schedule_at(max(at, sim.now), self._begin)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._end)

    def _begin(self) -> None:
        self._proxy = _TamperedMib(self.agent.mib, self._rewrite)
        self.agent.mib = self._proxy
        self.active = True
        _publish(
            self.events, True, self.sim.now, self,
            agent=self.agent.name, if_index=self.if_index,
            claimed_bps=self.claimed_bps,
        )

    def _end(self) -> None:
        if not self.active:
            return
        self.active = False
        if self.agent.mib is self._proxy:
            self.agent.mib = self._proxy.inner
        _publish(
            self.events, False, self.sim.now, self,
            agent=self.agent.name, if_index=self.if_index,
        )

    def _rewrite(self, oid, value):
        from repro.snmp.datatypes import Gauge32
        from repro.snmp.mib import IF_SPEED

        if not isinstance(value, Gauge32):
            return value
        if not (oid.startswith(IF_SPEED) and oid.arcs[-1] == self.if_index):
            return value
        claimed = min(self.claimed_bps, (1 << 32) - 1)
        if _fit_to_length(claimed, value) != claimed:
            raise FaultError(
                f"claimed speed {claimed} encodes longer than the true"
                f" ifSpeed {value.value}; this would change response sizes"
            )
        self.values_corrupted += 1
        return _padded_unsigned(value, claimed)


class WorkerCrash:
    """A monitoring *worker* process dies at ``at`` (and optionally comes
    back at ``until``).

    The distributed plane's own failure mode: the worker's host and its
    SNMP agent are perfectly healthy, but the ``MonitorWorker`` process
    stops polling, shipping and heartbeating.  Exercises the
    coordinator's lease expiry, poll-target failover and (with
    ``until``) recovery rebalancing.

    Duck-typed against the worker (``crash()`` / ``restart()``) so simnet
    never imports ``repro.core``; anything exposing that pair works.
    """

    def __init__(
        self,
        sim: Simulator,
        worker,
        at: float,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until is not None and until <= at:
            raise FaultError(f"restart time {until!r} must follow crash time {at!r}")
        self.sim = sim
        self.worker = worker
        self.at = at
        self.until = until
        self.events = events
        self.crashed = False
        sim.schedule_at(max(at, sim.now), self._crash)
        if until is not None:
            sim.schedule_at(max(until, sim.now), self._restart)

    def _crash(self) -> None:
        self.crashed = True
        self.worker.crash()
        _publish(self.events, True, self.sim.now, self, worker=self.worker.name)

    def _restart(self) -> None:
        self.crashed = False
        self.worker.restart()
        _publish(
            self.events, False, self.sim.now, self,
            worker=self.worker.name, restarted=True,
        )


class NetworkPartition:
    """One or more links drop *everything* during [at, until) -- but stay
    administratively up.

    Unlike :class:`LinkFailure`, no interface goes oper-down, so no
    linkDown trap fires and ``ifOperStatus`` keeps reading up: the
    classic grey failure (a misprogrammed switch fabric, a one-way
    radio shadow) that only end-to-end liveness machinery can see.
    Frames offered to the partitioned channels are silently dropped and
    counted in :attr:`frames_dropped`.

    Composes with :class:`PacketLoss`: the previous ``drop_filter`` of
    each channel is saved at begin and restored verbatim at heal.
    """

    def __init__(
        self,
        sim: Simulator,
        links,
        at: float,
        until: float,
        events: Optional["EventBus"] = None,
    ) -> None:
        if until <= at:
            raise FaultError(f"heal time {until!r} must follow partition time {at!r}")
        self.sim = sim
        self.links = list(links)
        if not self.links:
            raise FaultError("NetworkPartition needs at least one link")
        self.at = at
        self.until = until
        self.events = events
        self.active = False
        self.frames_dropped = 0
        self._saved = {}  # channel -> previous drop_filter
        sim.schedule_at(max(at, sim.now), self._begin)
        sim.schedule_at(max(until, sim.now), self._heal)

    def _channels(self):
        for link in self.links:
            yield link._a_to_b
            yield link._b_to_a

    def _begin(self) -> None:
        self.active = True

        def drop_all(frame: EthernetFrame) -> bool:
            self.frames_dropped += 1
            return True

        for channel in self._channels():
            self._saved[channel] = channel.drop_filter
            channel.drop_filter = drop_all
        _publish(
            self.events, True, self.sim.now, self,
            links=[_link_label(link) for link in self.links],
        )

    def _heal(self) -> None:
        if not self.active:
            return
        self.active = False
        for channel, previous in self._saved.items():
            channel.drop_filter = previous
        self._saved.clear()
        _publish(
            self.events, False, self.sim.now, self,
            links=[_link_label(link) for link in self.links],
            frames_dropped=self.frames_dropped,
        )


class Flap:
    """A link that cycles down/up: down for ``down_for`` seconds, up for
    ``up_for``, repeating from ``at`` until ``until`` (inclusive of any
    cycle in progress -- the link is always restored at the end).

    The classic half-seated connector.  Exercises trap storms, the
    poller's oper-status backstop, and the health tracker's requirement
    of *consecutive* successes before declaring recovery.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        at: float,
        down_for: float,
        up_for: float,
        until: Optional[float] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        if down_for <= 0 or up_for <= 0:
            raise FaultError(
                f"flap phases must be positive, got down {down_for!r} / up {up_for!r}"
            )
        if until is not None and until <= at:
            raise FaultError(f"flap end {until!r} must follow start {at!r}")
        self.sim = sim
        self.link = link
        self.at = at
        self.down_for = down_for
        self.up_for = up_for
        self.until = until
        self.events = events
        self.down = False
        self.flaps = 0  # completed down->up cycles
        sim.schedule_at(max(at, sim.now), self._go_down)

    @classmethod
    def between(
        cls,
        network,
        a: str,
        b: str,
        at: float,
        down_for: float,
        up_for: float,
        until: Optional[float] = None,
        index: int = 0,
        events: Optional["EventBus"] = None,
    ) -> "Flap":
        """Flap the ``index``-th link joining devices ``a`` and ``b``."""
        return cls(
            network.sim,
            find_link(network, a, b, index),
            at,
            down_for,
            up_for,
            until=until,
            events=events,
        )

    def _go_down(self) -> None:
        if self.until is not None and self.sim.now >= self.until:
            return  # window closed while we were up: stay up
        self.down = True
        self.flaps += 1
        for iface in self.link.endpoints:
            iface.set_admin_up(False)
        _publish(
            self.events, True, self.sim.now, self,
            link=_link_label(self.link), flap=self.flaps,
        )
        self.sim.schedule(self.down_for, self._go_up)

    def _go_up(self) -> None:
        self.down = False
        for iface in self.link.endpoints:
            iface.set_admin_up(True)
        _publish(
            self.events, False, self.sim.now, self,
            link=_link_label(self.link), flap=self.flaps,
        )
        self.sim.schedule(self.up_for, self._go_down)
