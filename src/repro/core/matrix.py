"""All-pairs bandwidth matrix.

The paper's testbed claim: "Such a network arrangement is sufficient for
monitoring the bandwidth between any pair of hosts in the system."  This
module makes that operational: one traversal per host pair (cached), one
measurement pass over the shared rate table, and a rendered matrix of
available bandwidth / utilisation that an operator (or the RM's placement
search) can read at a glance.

Incremental mode (the default) keeps the previous snapshot and a reverse
index from connections to the host pairs whose path crosses them.  A new
snapshot re-reads each connection's epoch token (see
:mod:`repro.core.dataflow`); pairs that cross no dirty connection reuse
their previous report verbatim when the report instant is unchanged, and
otherwise recompose it from the calculator's (memoized) connection
measurements.  Output is bit-identical to ``incremental=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bandwidth import BandwidthCalculator
from repro.core.report import PathReport
from repro.core.traversal import NoPathError, find_path
from repro.topology.graph import TopologyGraph
from repro.topology.model import ConnectionSpec, DeviceKind, TopologySpec

_METRICS = ("available", "used", "utilization")

DIRTY_PAIRS_GAUGE = "dataflow_dirty_pairs"
_DIRTY_PAIRS_HELP = "host pairs crossing a dirty connection in the last matrix snapshot"


class MatrixError(ValueError):
    """Raised for unknown hosts or metrics."""


@dataclass
class MatrixSnapshot:
    """One instant's all-pairs measurements."""

    hosts: List[str]
    time: float
    reports: Dict[Tuple[str, str], Optional[PathReport]]  # unordered pairs
    _cache: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def report(self, a: str, b: str) -> Optional[PathReport]:
        if a == b:
            raise MatrixError("a host has no path to itself in the matrix")
        key = (a, b) if (a, b) in self.reports else (b, a)
        try:
            return self.reports[key]
        except KeyError:
            raise MatrixError(f"pair ({a}, {b}) not in this matrix") from None

    def values(self, metric: str = "available") -> np.ndarray:
        """A symmetric matrix of the chosen metric (NaN on the diagonal
        and for disconnected pairs).  Units: bytes/second, or a fraction
        for "utilization"."""
        if metric not in _METRICS:
            raise MatrixError(f"unknown metric {metric!r}; pick from {_METRICS}")
        cached = self._cache.get(metric)
        if cached is None:
            index = {host: i for i, host in enumerate(self.hosts)}
            rows: List[int] = []
            cols: List[int] = []
            vals: List[float] = []
            for (a, b), report in self.reports.items():
                if report is None:
                    continue  # disconnected pair stays NaN
                if metric == "available":
                    value = report.available_bps
                elif metric == "used":
                    value = report.used_bps
                else:
                    bottleneck = report.bottleneck
                    value = bottleneck.utilization if bottleneck else 0.0
                rows.append(index[a])
                cols.append(index[b])
                vals.append(value)
            n = len(self.hosts)
            out = np.full((n, n), np.nan)
            if rows:
                r = np.asarray(rows, dtype=np.intp)
                c = np.asarray(cols, dtype=np.intp)
                v = np.asarray(vals, dtype=float)
                out[r, c] = v
                out[c, r] = v
            cached = self._cache[metric] = out
        return cached.copy()

    def format_table(self, metric: str = "available") -> str:
        """Render the matrix; bandwidth cells in KB/s, utilisation in %."""
        values = self.values(metric)
        unit = "%" if metric == "utilization" else "KB/s"
        width = max(8, max(len(h) for h in self.hosts) + 1)
        header = " " * width + "".join(f"{h:>{width}}" for h in self.hosts)
        lines = [f"path {metric} ({unit}) at t={self.time:.1f}s", header]
        for i, row_host in enumerate(self.hosts):
            cells = []
            for j in range(len(self.hosts)):
                if i == j:
                    cells.append(f"{'-':>{width}}")
                elif np.isnan(values[i, j]):
                    cells.append(f"{'n/a':>{width}}")
                elif metric == "utilization":
                    cells.append(f"{values[i, j] * 100:>{width}.1f}")
                else:
                    cells.append(f"{values[i, j] / 1000:>{width}.1f}")
            lines.append(f"{row_host:>{width}}" + "".join(cells))
        return "\n".join(lines)

    def worst_pair(self) -> Optional[Tuple[str, str, float]]:
        """The host pair with the least available bandwidth."""
        worst: Optional[Tuple[str, str, float]] = None
        for (a, b), report in self.reports.items():
            if report is None:
                continue
            if worst is None or report.available_bps < worst[2]:
                worst = (a, b, report.available_bps)
        return worst


class BandwidthMatrix:
    """Computes :class:`MatrixSnapshot` from a calculator's live state."""

    def __init__(
        self,
        spec: TopologySpec,
        calculator: BandwidthCalculator,
        hosts: Optional[Sequence[str]] = None,
        incremental: bool = True,
        graph: Optional[TopologyGraph] = None,
    ) -> None:
        """``incremental=False`` recomputes every pair from the raw
        tables on each snapshot (the naive baseline the benchmarks
        compare against); ``graph`` shares a caller-owned
        :class:`TopologyGraph` so traversal memos are shared too."""
        self.spec = spec
        self.calculator = calculator
        self.incremental = incremental
        self.graph = graph if graph is not None else TopologyGraph(spec)
        if hosts is None:
            hosts = [n.name for n in spec.hosts()]
        for host in hosts:
            if spec.node(host).kind is not DeviceKind.HOST:
                raise MatrixError(f"{host!r} is not a host")
        self.hosts = list(hosts)
        # Paths traversed once, up front (topology is static, paper §3.2)
        # and re-traversed only when the graph's topology epoch moves.
        self._paths: Dict[Tuple[str, str], Optional[list]] = {}
        self._conns: Dict[Tuple, ConnectionSpec] = {}
        self._pairs_of_conn: Dict[Tuple, List[Tuple[str, str]]] = {}
        self._topology_epoch: int = -1
        self._build_paths()
        # Previous-snapshot state for dirty-pair reuse.
        self._prev_reports: Dict[Tuple[str, str], Optional[PathReport]] = {}
        self._prev_time: Optional[float] = None
        self._prev_tokens: Dict[Tuple, Tuple] = {}
        self.pair_cache_hits = 0
        self.pair_recomputes = 0
        self.dirty_pairs_last = 0
        # Stream hook: the dirty-pair set behind the latest snapshot, and
        # whether that snapshot rebuilt its paths (topology epoch moved).
        # The stream publisher reads these instead of diffing snapshots;
        # None means "dirtiness unknown -- consider every pair" (the
        # non-incremental mode, or no snapshot yet).
        self.last_dirty_pairs: Optional[Set[Tuple[str, str]]] = None
        self.last_snapshot_rebuilt = False
        tel = getattr(calculator, "telemetry", None)
        self._g_dirty = (
            tel.registry.gauge(DIRTY_PAIRS_GAUGE, _DIRTY_PAIRS_HELP)
            if tel is not None
            else None
        )

    def _build_paths(self) -> None:
        self._topology_epoch = self.graph.topology_epoch
        self._paths = {}
        self._conns = {}
        self._pairs_of_conn = {}
        for i, a in enumerate(self.hosts):
            for b in self.hosts[i + 1:]:
                try:
                    path = find_path(self.graph, a, b)
                except NoPathError:
                    path = None
                self._paths[(a, b)] = path
                if path:
                    for conn in path:
                        key = conn.endpoints()
                        self._conns.setdefault(key, conn)
                        self._pairs_of_conn.setdefault(key, []).append((a, b))

    def snapshot(self, time: float) -> MatrixSnapshot:
        if not self.incremental:
            self.last_dirty_pairs = None  # dirtiness unknown in naive mode
            self.last_snapshot_rebuilt = False
            if self.graph.topology_epoch != self._topology_epoch:
                self._build_paths()
                self.last_snapshot_rebuilt = True
            reports: Dict[Tuple[str, str], Optional[PathReport]] = {}
            for (a, b), path in self._paths.items():
                if path is None:
                    reports[(a, b)] = None
                else:
                    reports[(a, b)] = self.calculator.measure_path(
                        path, a, b, time=time, name=f"matrix:{a}<->{b}", fresh=True
                    )
            return MatrixSnapshot(hosts=list(self.hosts), time=time, reports=reports)
        return self._snapshot_incremental(time)

    def _snapshot_incremental(self, time: float) -> MatrixSnapshot:
        rebuilt = False
        if self.graph.topology_epoch != self._topology_epoch:
            # Topology changed: paths may differ, previous state is void.
            self._build_paths()
            self._prev_reports = {}
            self._prev_tokens = {}
            self._prev_time = None
            rebuilt = True
        tokens: Dict[Tuple, Tuple] = {}
        dirty_pairs: Set[Tuple[str, str]] = set()
        prev_tokens = self._prev_tokens
        for key, conn in self._conns.items():
            token = self.calculator.connection_token(conn)
            tokens[key] = token
            if prev_tokens.get(key) != token:
                dirty_pairs.update(self._pairs_of_conn[key])
        # A previous report is reusable *verbatim* only at the same report
        # instant (age fields depend on it); across instants the pair is
        # recomposed from the calculator's memoized measurements, which is
        # cheap but produces a new PathReport with fresh age figures.
        same_time = self._prev_time == time and bool(self._prev_reports)
        reports: Dict[Tuple[str, str], Optional[PathReport]] = {}
        for (a, b), path in self._paths.items():
            if path is None:
                reports[(a, b)] = None
                continue
            if same_time and (a, b) not in dirty_pairs:
                prev = self._prev_reports.get((a, b))
                if prev is not None:
                    reports[(a, b)] = prev
                    self.pair_cache_hits += 1
                    continue
            reports[(a, b)] = self.calculator.measure_path(
                path, a, b, time=time, name=f"matrix:{a}<->{b}"
            )
            self.pair_recomputes += 1
        self._prev_reports = reports
        self._prev_time = time
        self._prev_tokens = tokens
        self.dirty_pairs_last = len(dirty_pairs)
        # After a rebuild previous tokens were void, so every measurable
        # pair landed in dirty_pairs -- exactly what the stream publisher
        # must re-deliver; it still needs the rebuilt flag to re-baseline
        # its significance filters.
        self.last_dirty_pairs = dirty_pairs
        self.last_snapshot_rebuilt = rebuilt
        if self._g_dirty is not None:
            self._g_dirty.set(float(len(dirty_pairs)))
        return MatrixSnapshot(hosts=list(self.hosts), time=time, reports=reports)
