#!/usr/bin/env python3
"""Distributed network monitoring with crash failover (paper §5 future work).

The single monitor polls every agent from host L; at scale that
concentrates SNMP load on L's links.  The distributed variant partitions
the polling targets across worker hosts (each polls itself for free via
loopback), and the workers ship derived rate samples to a coordinator in
sequenced, batched UDP datagrams over the same network.

The plane also survives its own failures.  This example runs three acts:

1. the single monitor and the fault-free distributed plane side by side
   under the same load -- the measurements must agree;
2. the same distributed plane with worker S2 killed mid-run -- the
   coordinator's lease tracker detects the silence, fails S2's targets
   over to the survivors, and the watched path is back to *trusted*
   reports within three poll cycles (degraded, never silently stale, in
   between);
3. S2 comes back -- the plane rebalances to the original assignment.

Run:  python examples/distributed_monitoring.py
"""

from repro import NetworkMonitor, StepSchedule, build_testbed
from repro.core.distributed import DistributedMonitor
from repro.simnet.faults import WorkerCrash
from repro.simnet.trafficgen import KBPS, StaircaseLoad

LOAD = StepSchedule.pulse(10.0, 50.0, 300 * KBPS)
RUN_UNTIL = 60.0
CRASH_AT, RECOVER_AT = 20.0, 40.0


def run_single():
    build = build_testbed()
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    label = monitor.watch_path("S1", "N1")
    StaircaseLoad(build.network.host("L"), build.network.ip_of("N1"), LOAD).start()
    monitor.start()
    build.network.run(RUN_UNTIL)
    series = monitor.history.series(label)
    return series.used().max(), {"L": monitor.manager.requests_sent}


def build_plane():
    build = build_testbed()
    dm = DistributedMonitor(
        build, coordinator_host="L", worker_hosts=["L", "S1", "S2"], poll_jitter=0.0
    )
    label = dm.watch_path("S1", "N1")
    StaircaseLoad(build.network.host("L"), build.network.ip_of("N1"), LOAD).start()
    return build, dm, label


def per_worker_requests(dm):
    return {
        key.split(".", 1)[1]: int(value)
        for key, value in dm.stats().items()
        if key.startswith("per_worker_requests.")
    }


def run_distributed():
    build, dm, label = build_plane()
    dm.start()
    build.network.run(RUN_UNTIL)
    print("worker assignments:")
    for worker in sorted(dm.workers):
        print(f"  {worker}: polls {', '.join(dm.targets_of(worker))}")
    return dm.history.series(label).used().max(), per_worker_requests(dm)


def run_with_crash():
    build, dm, label = build_plane()
    reports = []
    dm.subscribe(reports.append)
    WorkerCrash(build.network.sim, dm.workers["S2"], at=CRASH_AT, until=RECOVER_AT,
                events=dm.telemetry.events)
    dm.start()
    build.network.run(RUN_UNTIL)

    print("lease transitions:")
    for transition in dm.leases.transitions:
        print(f"  {transition}")
    print("report trust around the crash:")
    for report in reports:
        if CRASH_AT - 2.0 <= report.time <= CRASH_AT + 8.0:
            marker = "TRUSTED " if report.trusted else "degraded"
            print(f"  [{report.time:5.1f}s] {marker} confidence="
                  f"{report.confidence:.2f}")
    settled = [r for r in reports
               if CRASH_AT + 6.0 <= r.time < RECOVER_AT]  # 3 poll cycles
    print(f"re-coverage: {sum(r.trusted for r in settled)}/{len(settled)} "
          f"trusted reports between crash+3 cycles and recovery")
    stats = dm.stats()
    print(f"failovers={stats['failovers']:.0f} "
          f"rebalances={stats['rebalances']:.0f} "
          f"decode_errors={stats['decode_errors']:.0f}")
    print("assignments after recovery:")
    for worker in sorted(dm.workers):
        print(f"  {worker}: polls {', '.join(dm.targets_of(worker)) or '(spare)'}")


def main() -> None:
    print("=== single monitor (the paper's design) ===")
    single_peak, single_load = run_single()
    print(f"peak measured: {single_peak / 1000:.1f} KB/s; "
          f"SNMP requests by host: {single_load}")

    print("\n=== distributed monitor (3 workers + coordinator on L) ===")
    dist_peak, dist_load = run_distributed()
    print(f"peak measured: {dist_peak / 1000:.1f} KB/s; "
          f"SNMP requests by host: {dist_load}")

    agreement = abs(single_peak - dist_peak) / single_peak * 100
    print(f"\nmeasurement agreement: within {agreement:.1f}%")
    print("the polling load spread from one host to three")

    print(f"\n=== chaos: worker S2 dies at t={CRASH_AT:.0f}s, "
          f"returns at t={RECOVER_AT:.0f}s ===")
    run_with_crash()


if __name__ == "__main__":
    main()
