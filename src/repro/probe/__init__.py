"""Active probing: a second measurement modality beside passive SNMP.

The passive monitor infers path capacity from interface counters; this
package *measures* it, by sending short UDP probe trains over the same
simulated network the workload uses.  A train yields achievable
throughput (packet-pair dispersion over the train), one-way loss with
sequence-gap accounting, and RFC 3550-style interarrival jitter, all
rolled into a typed :class:`ProbeReport`.

Probing is budgeted like polling is: :class:`ProbeScheduler` sizes its
round interval so probe bytes never exceed a configured fraction of the
narrowest link on any watched path, and :class:`ProbeCrossValidator`
turns debounced active/passive disagreements into localized findings
(unmetered hub segment, stale counter, or quarantine-candidate agent)
that feed the integrity pipeline, the telemetry event bus, and the
streaming surface.

Entry point: :meth:`repro.core.monitor.NetworkMonitor.enable_probing`.
"""

from repro.probe.crossval import ProbeCrossValidator, ProbeDisagreementFinding
from repro.probe.scheduler import (
    DEFAULT_BUDGET_FRACTION,
    ProbeScheduler,
    register_probe_metrics,
)
from repro.probe.stats import (
    ProbeReport,
    ProbeStats,
    dispersion_bps,
    interarrival_jitter,
    mean_abs_consecutive,
    sequence_loss,
)
from repro.probe.train import (
    PROBE_DSCP,
    PROBE_PORT,
    PROBE_TOS,
    ProbeError,
    ProbeSink,
    ProbeTrain,
)

__all__ = [
    "DEFAULT_BUDGET_FRACTION",
    "PROBE_DSCP",
    "PROBE_PORT",
    "PROBE_TOS",
    "ProbeCrossValidator",
    "ProbeDisagreementFinding",
    "ProbeError",
    "ProbeReport",
    "ProbeScheduler",
    "ProbeSink",
    "ProbeStats",
    "ProbeTrain",
    "dispersion_bps",
    "interarrival_jitter",
    "mean_abs_consecutive",
    "register_probe_metrics",
    "sequence_loss",
]
