#!/usr/bin/env python3
"""Failure detection: link death, traps, and middleware reaction.

DeSiDeRaTa performs "QoS monitoring and failure detection"; this example
exercises the failure half on the Figure-3 testbed:

1. agents emit linkDown/linkUp traps to the monitor (SNMPv2c, port 162);
2. the cable between S1 and the switch is "yanked" at t=15 s and
   re-seated at t=35 s;
3. the monitor's link-state registry zeroes the path's availability the
   moment the trap arrives -- milliseconds, not a polling interval;
4. the RM middleware sees the violation, diagnoses it, and recommends
   placements that avoid the dead link;
5. an SNMP agent outage (crashed daemon on S2, t=40-55 s) shows the
   polling-timeout backstop for failures that traps cannot report.

Run:  python examples/failure_detection.py
"""

from repro import NetworkMonitor, build_testbed
from repro.rm import QosRequirement, RmMiddleware
from repro.simnet.faults import AgentOutage, LinkFailure
from repro.simnet.trafficgen import KBPS


def main() -> None:
    build = build_testbed()
    net = build.network
    monitor = NetworkMonitor(build, "L", poll_jitter=0.0)
    registry = monitor.enable_trap_listener()

    requirement = QosRequirement(
        name="s1-feed", src="S1", dst="N1", min_available_bps=200 * KBPS
    )
    middleware = RmMiddleware(monitor, [requirement], breach_count=1, clear_count=1)

    s1_link = net.host("S1").interfaces[0].link
    LinkFailure(net.sim, s1_link, at=15.0, until=35.0)
    AgentOutage(net.sim, build.agents["S2"], at=40.0, until=55.0)

    monitor.start()
    print("t=15s: S1's cable is pulled; t=35s: re-seated; "
          "t=40-55s: S2's SNMP daemon is down\n")
    net.run(65.0)

    print("=== traps received by the monitor ===")
    for event in monitor.trap_receiver.events:
        kind = "linkDown" if event.is_link_down else "linkUp"
        print(f"t={event.received_at:6.3f}s  {kind} from {event.source_ip} "
              f"ifIndex={event.if_index()}")

    print("\n=== RM middleware event log ===")
    print(middleware.format_log())

    print("\n=== polling backstop (S2 agent outage) ===")
    stats = monitor.stats()
    print(f"SNMP timeouts during the run: {stats['snmp_timeouts']:.0f} "
          f"(retransmissions {stats['snmp_retransmissions']:.0f})")

    print(f"\ndown connections now: {len(registry)} (everything recovered)")


if __name__ == "__main__":
    main()
