"""Periodic SNMP polling and counter-to-rate conversion (paper §3.1).

"Because the polling results are cumulative numbers, this data has to be
polled periodically.  The old value is subtracted from the new one to
determine statistics for the polling interval.  The time interval between
two polling processes can be found using the system uptime data."

Fidelity notes:

- The **interval denominator is the sysUpTime delta**, not the poll
  schedule: if a response is delayed or a poll is lost, the next delta
  simply covers a longer (exactly measured) interval.
- Counter32 values wrap at 2^32; :meth:`Counter32.delta` subtracts
  modulo 2^32, correct for at most one wrap per interval.
- Each poll is one GET carrying sysUpTime plus the four traffic counters
  for every interface of interest on that agent, like the paper's Table 1.
- Poll scheduling can carry seeded jitter, and agents add processing
  delay, so octets occasionally land in the *next* interval -- the paper's
  "abnormally small value followed by an abnormally large one".
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.dataflow import EpochClock
from repro.core.health import AgentHealthTracker
from repro.simnet.address import IPv4Address
from repro.snmp.datatypes import Counter32, Gauge32, TimeTicks
from repro.snmp.errors import SnmpErrorResponse, SnmpTimeout
from repro.snmp.manager import SnmpManager
from repro.snmp.datatypes import Integer
from repro.snmp.mib import (
    IF_IN_OCTETS,
    IF_IN_UCAST_PKTS,
    IF_OPER_STATUS,
    IF_OUT_NUCAST_PKTS,
    IF_OUT_OCTETS,
    IF_OUT_UCAST_PKTS,
    IF_IN_NUCAST_PKTS,
    IF_SPEED,
    IF_STATUS_UP,
    SYS_UPTIME,
)
from repro.snmp.oid import Oid
from repro.snmp.pdu import VarBind
from repro.telemetry import Telemetry
from repro.telemetry.events import AGENT_RESTART

# The per-interface columns polled each cycle (paper Table 1 uses octets
# and packet counters in both directions).
_COLUMNS = (
    IF_IN_OCTETS,
    IF_OUT_OCTETS,
    IF_IN_UCAST_PKTS,
    IF_OUT_UCAST_PKTS,
    IF_IN_NUCAST_PKTS,
    IF_OUT_NUCAST_PKTS,
)


@dataclass(frozen=True)
class InterfaceRates:
    """One interface's traffic rates over one measured interval."""

    node: str
    if_index: int
    time: float  # simulation time the sample was computed
    interval: float  # seconds of sysUpTime the sample covers
    in_bytes_per_s: float
    out_bytes_per_s: float
    in_pkts_per_s: float
    out_pkts_per_s: float

    @property
    def total_bytes_per_s(self) -> float:
        """Traffic crossing the interface in both directions."""
        return self.in_bytes_per_s + self.out_bytes_per_s

    def age(self, now: float) -> float:
        """Seconds elapsed since this sample was computed."""
        return max(0.0, now - self.time)


@dataclass
class _CounterSnapshot:
    uptime: TimeTicks
    octets_in: Counter32
    octets_out: Counter32
    ucast_in: Counter32
    ucast_out: Counter32
    nucast_in: Counter32
    nucast_out: Counter32


class RateTable:
    """Latest (and historical) rate samples keyed by (node, ifIndex).

    History is a per-key ring buffer capped at ``max_history`` samples
    (default 512 ~= 17 minutes at the paper's 2 s interval): a
    long-running monitor must not grow without bound.  Consumers that
    need deeper retention (the experiment figures) use
    :class:`~repro.core.history.MeasurementHistory` instead.

    Every admitted sample also bumps the key's **ingest epoch** (see
    :mod:`repro.core.dataflow`): downstream caches -- connection
    measurements, hub aggregates, matrix cells -- key their validity on
    these stamps, so a poll cycle that refreshed three interfaces dirties
    exactly the measurements resting on those three interfaces.
    """

    def __init__(self, keep_history: bool = True, max_history: int = 512) -> None:
        if max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {max_history!r}")
        self._latest: Dict[Tuple[str, int], InterfaceRates] = {}
        self._history: Dict[Tuple[str, int], Deque[InterfaceRates]] = {}
        self.keep_history = keep_history
        self.max_history = max_history
        self._epochs = EpochClock()

    @property
    def clock(self) -> int:
        """Global ingest clock: increases whenever *any* sample lands."""
        return self._epochs.clock

    def epoch(self, node: str, if_index: int) -> int:
        """Ingest epoch of one interface (0: no sample ever admitted)."""
        return self._epochs.epoch((node, if_index))

    def update(self, sample: InterfaceRates) -> None:
        key = (sample.node, sample.if_index)
        self._latest[key] = sample
        self._epochs.bump(key)
        if self.keep_history:
            ring = self._history.get(key)
            if ring is None:
                ring = self._history[key] = deque(maxlen=self.max_history)
            ring.append(sample)

    def latest(self, node: str, if_index: int) -> Optional[InterfaceRates]:
        return self._latest.get((node, if_index))

    def history(self, node: str, if_index: int) -> List[InterfaceRates]:
        return list(self._history.get((node, if_index), []))

    def keys(self) -> List[Tuple[str, int]]:
        return sorted(self._latest)

    def __len__(self) -> int:
        return len(self._latest)


@dataclass
class PollTarget:
    """One SNMP agent and the interfaces to poll on it."""

    node: str
    address: IPv4Address
    if_indexes: List[int]
    community: str = "public"
    include_oper_status: bool = False  # also read ifOperStatus per interface
    include_speed: bool = False  # also read ifSpeed (integrity cross-check mode)

    def oids(self) -> List[Oid]:
        out: List[Oid] = [SYS_UPTIME]
        for index in self.if_indexes:
            for column in _COLUMNS:
                out.append(column + str(index))
            if self.include_oper_status:
                out.append(IF_OPER_STATUS + str(index))
            if self.include_speed:
                out.append(IF_SPEED + str(index))
        return out

    def columns(self) -> List[Oid]:
        """The table columns a bulk walk of this target must cover."""
        cols = list(_COLUMNS)
        if self.include_oper_status:
            cols.append(IF_OPER_STATUS)
        if self.include_speed:
            cols.append(IF_SPEED)
        return cols


class _PollUnit:
    """One target's worth of work inside a poll cycle."""

    __slots__ = ("target", "span")

    def __init__(self, target: PollTarget, span) -> None:
        self.target = target
        self.span = span


class _Assembly:
    """Reassemble a per-varbind poll: one GET per OID, merged on completion.

    This is the degenerate baseline the paper's scale problem implies --
    every counter instance its own request/response exchange -- kept as a
    measurable mode so the GetBulk path's exchange-count win is a number,
    not a claim.
    """

    __slots__ = ("poller", "target", "span", "on_done", "remaining", "varbinds", "error")

    def __init__(self, poller: "SnmpPoller", target: PollTarget, span, on_done) -> None:
        self.poller = poller
        self.target = target
        self.span = span
        self.on_done = on_done
        self.varbinds: List[VarBind] = []
        self.error: Optional[Exception] = None
        oids = target.oids()
        self.remaining = len(oids)
        for oid in oids:
            poller.manager.get(
                target.address, [oid], callback=self._one_ok,
                errback=self._one_err, community=target.community,
            )

    def _one_ok(self, varbinds: List[VarBind]) -> None:
        self.varbinds.extend(varbinds)
        self._settle()

    def _one_err(self, exc: Exception) -> None:
        if self.error is None:
            self.error = exc
        self._settle()

    def _settle(self) -> None:
        self.remaining -= 1
        if self.remaining > 0:
            return
        if self.error is not None:
            self.poller._on_error(self.target, self.error, self.span)
        else:
            self.poller._on_response(self.target, self.varbinds, self.span)
        self.on_done()


POLL_MODES = ("get", "bulk", "per-varbind")


class SnmpPoller:
    """Polls a set of targets every ``interval`` seconds.

    ``on_cycle`` (if set) fires after each scheduled cycle's requests have
    been *issued*; fresh samples appear in the :class:`RateTable` as the
    responses arrive.  The monitor attaches its report generation slightly
    after each cycle instead, leaving the poller reusable on its own.

    ``poll_mode`` selects the wire strategy per target: ``"get"`` (one
    GET naming every instance -- the paper's layout), ``"bulk"`` (a
    GetBulk column walk via :meth:`SnmpManager.poll_interfaces`, 1-2
    exchanges per agent regardless of interface count), or
    ``"per-varbind"`` (one GET per instance -- the measurable worst-case
    baseline).  All three feed the same parse/ingest path, so the rate
    table contents are mode-independent on a fault-free network.

    ``pipeline_window`` > 0 bounds how many targets may be in flight at
    once: a cycle enqueues every due target but launches at most
    ``pipeline_window``; each completion launches the next.  Backlog
    still queued when the next cycle begins is dropped and counted as an
    overrun (the new cycle's fresher poll of the same target supersedes
    it).  0 keeps the legacy launch-everything behaviour.
    """

    def __init__(
        self,
        manager: SnmpManager,
        targets: Sequence[PollTarget],
        interval: float = 2.0,
        jitter: float = 0.0,
        seed: int = 0,
        rate_table: Optional[RateTable] = None,
        health: Optional[AgentHealthTracker] = None,
        telemetry: Optional[Telemetry] = None,
        poll_mode: str = "get",
        pipeline_window: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"non-positive poll interval {interval!r}")
        if poll_mode not in POLL_MODES:
            raise ValueError(f"poll_mode must be one of {POLL_MODES}, got {poll_mode!r}")
        if pipeline_window < 0:
            raise ValueError(f"negative pipeline_window {pipeline_window!r}")
        self.poll_mode = poll_mode
        self.pipeline_window = pipeline_window
        self.manager = manager
        self.sim = manager.sim
        self.targets = list(targets)
        self.interval = interval
        self.jitter = jitter
        self.rng = random.Random(seed)
        self.rates = rate_table if rate_table is not None else RateTable()
        # Sharing the manager's hub keeps poller and manager statistics in
        # one registry even when no monitor wired an enabled hub through.
        self.telemetry = telemetry if telemetry is not None else manager.telemetry
        # Reachability tracking + circuit breaker: DEAD agents are polled
        # only at the tracker's slow probe cadence (default: every third
        # cycle) instead of burning a timeout slot every cycle.
        self.health = (
            health
            if health is not None
            else AgentHealthTracker(
                probe_interval=interval * 3, events=self.telemetry.events
            )
        )
        self._last: Dict[Tuple[str, int], _CounterSnapshot] = {}
        self._task = None
        registry = self.telemetry.registry
        self._m_cycles = registry.counter(
            "poll_cycles_total", "polling cycles scheduled"
        )
        # Aggregate errback count plus its split by cause.
        self._m_errors = registry.counter(
            "poll_errors_total", "poll requests that ended in an errback"
        )
        self._m_timeout_errors = registry.counter(
            "poll_timeout_errors_total", "poll requests that timed out"
        )
        self._m_error_responses = registry.counter(
            "poll_error_responses_total", "polls answered with an SNMP error-status"
        )
        self._m_parse_errors = registry.counter(
            "poll_parse_errors_total", "poll responses whose varbinds were unusable"
        )
        self._m_samples = registry.counter(
            "poll_samples_total", "rate samples computed from counter deltas"
        )
        self._m_restarts = registry.counter(
            "agent_restarts_total", "sysUpTime resets read as agent restarts"
        )
        self._m_window_deferred = registry.counter(
            "poll_window_deferred_total",
            "poll units queued behind the pipeline window before launching",
        )
        self._m_window_overruns = registry.counter(
            "poll_window_overruns_total",
            "queued poll units dropped because the next cycle began first",
        )
        self._h_cycle = registry.histogram(
            "poll_cycle_seconds",
            "poll cycle duration: requests issued to last outcome landed",
        )
        # Pipeline scheduler state: queued units awaiting a window slot,
        # the current in-flight count, and the high-water mark.
        self._backlog: Deque[_PollUnit] = deque()
        self._in_flight = 0
        self.window_peak = 0
        # The open span of the in-flight cycle, plus outstanding-exchange
        # counts per cycle span id (late responses from a forced-closed
        # cycle must not leak into the next cycle's accounting).
        self._cycle_span = None
        self._exchanges_pending: Dict[int, int] = {}
        # An uptime delta beyond this is read as an agent restart (the
        # counter baselines are then worthless and are re-established).
        # TimeTicks wrap legitimately only every ~497 days; any apparent
        # backward jump that "wraps" into a huge interval is a restart.
        self.max_plausible_interval = max(3600.0, interval * 100)
        # Optional measurement-integrity pipeline (repro.integrity): when
        # set, every computed sample passes through ``inspect`` and only
        # admitted samples reach the rate table.  Duck-typed so the
        # poller stays usable without the integrity package.
        self.integrity = None
        self.on_sample: Optional[Callable[[InterfaceRates], None]] = None
        # Invoked as (node, if_index, up: bool) for every polled interface
        # whose target requests oper-status tracking -- the poll-based
        # link-state backstop for when linkDown traps are lost.
        self.on_status: Optional[Callable[[str, int, bool], None]] = None

    @property
    def polls_suppressed(self) -> int:
        """Polls skipped because the target's circuit breaker was open."""
        return self.health.polls_suppressed

    # ------------------------------------------------------------------
    # Statistics (registry-backed; the attribute names are the old API)
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        return self._m_cycles.value

    @property
    def poll_errors(self) -> int:
        return self._m_errors.value

    @property
    def timeout_errors(self) -> int:
        return self._m_timeout_errors.value

    @property
    def error_responses(self) -> int:
        return self._m_error_responses.value

    @property
    def parse_errors(self) -> int:
        return self._m_parse_errors.value

    @property
    def samples_produced(self) -> int:
        return self._m_samples.value

    @property
    def agent_restarts(self) -> int:
        return self._m_restarts.value

    @property
    def window_deferred(self) -> int:
        return self._m_window_deferred.value

    @property
    def window_overruns(self) -> int:
        return self._m_window_overruns.value

    @property
    def in_flight(self) -> int:
        """Poll units currently awaiting their responses."""
        return self._in_flight

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, first_poll_at: Optional[float] = None) -> None:
        if self._task is not None:
            raise RuntimeError("poller already started")
        jitter_fn = None
        if self.jitter > 0:
            jitter_fn = lambda: self.rng.uniform(0.0, self.jitter)  # noqa: E731
        self._task = self.sim.call_every(
            self.interval,
            self._poll_cycle,
            start=first_poll_at if first_poll_at is not None else self.sim.now,
            jitter=jitter_fn,
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def _poll_cycle(self) -> None:
        self._m_cycles.inc()
        # Backlog still queued from the previous cycle is superseded by
        # this cycle's fresher poll of the same targets: drop it (counted)
        # rather than let a slow network build an ever-deeper queue.
        while self._backlog:
            unit = self._backlog.popleft()
            self._m_window_overruns.inc()
            self._exchange_done(unit.span, "overrun")
        tel = self.telemetry
        tracing = tel.enabled
        if tracing:
            self._force_close_cycle()
            self._cycle_span = tel.tracer.begin("poll_cycle", cycle=self.cycles)
            self._exchanges_pending[self._cycle_span.span_id] = 0
        units: List[_PollUnit] = []
        for target in self.targets:
            if not self.health.should_poll(target.node, self.sim.now):
                continue  # circuit open: this DEAD agent's probe is not due
            span = None
            if tracing:
                span = tel.tracer.begin(
                    "snmp_exchange", parent=self._cycle_span, agent=target.node
                )
                self._exchanges_pending[self._cycle_span.span_id] += 1
            units.append(_PollUnit(target, span))
        if tracing and self._exchanges_pending.get(self._cycle_span.span_id) == 0:
            # Every target suppressed: the cycle is over as it begins.
            self._exchanges_pending.pop(self._cycle_span.span_id, None)
            self._finish_cycle(self._cycle_span)
        window = self.pipeline_window
        if window and len(units) > window:
            launch_now, deferred = units[:window], units[window:]
            for unit in deferred:
                self._m_window_deferred.inc()
            self._backlog.extend(deferred)
        else:
            launch_now = units
        for unit in launch_now:
            self._launch(unit)

    # -- pipelined launch ----------------------------------------------
    def _launch(self, unit: _PollUnit) -> None:
        self._in_flight += 1
        if self._in_flight > self.window_peak:
            self.window_peak = self._in_flight
        target, span = unit.target, unit.span

        def on_ok(varbinds: List[VarBind], t=target, s=span) -> None:
            self._on_response(t, varbinds, s)
            self._unit_done()

        def on_err(exc: Exception, t=target, s=span) -> None:
            self._on_error(t, exc, s)
            self._unit_done()

        if self.poll_mode == "bulk" and target.if_indexes:
            self.manager.poll_interfaces(
                target.address,
                target.if_indexes,
                target.columns(),
                callback=on_ok,
                errback=on_err,
                community=target.community,
            )
        elif self.poll_mode == "per-varbind":
            _Assembly(self, target, span, self._unit_done)
        else:
            self.manager.get(
                target.address,
                target.oids(),
                callback=on_ok,
                errback=on_err,
                community=target.community,
            )

    def _unit_done(self) -> None:
        self._in_flight = max(0, self._in_flight - 1)
        if self._backlog:
            self._launch(self._backlog.popleft())

    # -- cycle span management -----------------------------------------
    def _finish_cycle(self, span) -> None:
        if span.open:
            span.finish()
            if span.duration is not None:
                self._h_cycle.observe(span.duration)
        if span is self._cycle_span:
            self._cycle_span = None

    def _force_close_cycle(self) -> None:
        """Close the previous cycle's span if responses never drained."""
        span = self._cycle_span
        if span is None:
            return
        outstanding = self._exchanges_pending.get(span.span_id, 0)
        if outstanding:
            # Entry stays so stragglers still balance their decrement.
            span.attrs["unfinished_exchanges"] = outstanding
        else:
            self._exchanges_pending.pop(span.span_id, None)
        self._finish_cycle(span)

    def _exchange_done(self, span, outcome: str) -> None:
        if span is None:
            return
        span.finish(outcome=outcome)
        parent = span.parent_id
        if parent is None:
            return
        left = self._exchanges_pending.get(parent)
        if left is None:
            return
        if left <= 1:
            self._exchanges_pending.pop(parent, None)
            if self._cycle_span is not None and self._cycle_span.span_id == parent:
                self._finish_cycle(self._cycle_span)
        else:
            self._exchanges_pending[parent] = left - 1

    def _on_error(self, target: PollTarget, exc: Exception, span=None) -> None:
        self._m_errors.inc()
        if isinstance(exc, SnmpTimeout):
            self._m_timeout_errors.inc()
            self._exchange_done(span, "timeout")
            self.health.record_failure(target.node, self.sim.now)
        elif isinstance(exc, SnmpErrorResponse):
            # The agent answered -- it is alive -- but the response is
            # unusable.  Reachability up, data quality down.
            self._m_error_responses.inc()
            self._exchange_done(span, "error_response")
            self.health.record_success(target.node, self.sim.now)
        else:
            self._exchange_done(span, "error")

    def _on_response(
        self, target: PollTarget, varbinds: List[VarBind], span=None
    ) -> None:
        self._exchange_done(span, "ok")
        self.health.record_success(target.node, self.sim.now)
        values: Dict[Oid, object] = {vb.oid: vb.value for vb in varbinds}
        uptime = values.get(SYS_UPTIME)
        if not isinstance(uptime, TimeTicks):
            self._m_parse_errors.inc()
            return
        for index in target.if_indexes:
            if target.include_oper_status and self.on_status is not None:
                status = values.get(IF_OPER_STATUS + str(index))
                if isinstance(status, Integer):
                    self.on_status(target.node, index, status.value == IF_STATUS_UP)
            try:
                snapshot = _CounterSnapshot(
                    uptime=uptime,
                    octets_in=self._counter(values, IF_IN_OCTETS, index),
                    octets_out=self._counter(values, IF_OUT_OCTETS, index),
                    ucast_in=self._counter(values, IF_IN_UCAST_PKTS, index),
                    ucast_out=self._counter(values, IF_OUT_UCAST_PKTS, index),
                    nucast_in=self._counter(values, IF_IN_NUCAST_PKTS, index),
                    nucast_out=self._counter(values, IF_OUT_NUCAST_PKTS, index),
                )
            except KeyError:
                self._m_parse_errors.inc()
                continue
            polled_speed = None
            if target.include_speed:
                speed_value = values.get(IF_SPEED + str(index))
                if isinstance(speed_value, Gauge32):
                    polled_speed = float(speed_value.value)
            self._ingest(target.node, index, snapshot, polled_speed)

    @staticmethod
    def _counter(values: Dict[Oid, object], column: Oid, index: int) -> Counter32:
        value = values.get(column + str(index))
        if not isinstance(value, Counter32):
            raise KeyError(str(column))
        return value

    def _ingest(
        self,
        node: str,
        if_index: int,
        snapshot: _CounterSnapshot,
        polled_speed: Optional[float] = None,
    ) -> None:
        key = (node, if_index)
        previous = self._last.get(key)
        self._last[key] = snapshot
        if previous is None:
            return  # first poll only establishes the baseline
        seconds = snapshot.uptime.delta_seconds(previous.uptime)
        if seconds <= 0:
            # Same-tick duplicate; drop the sample.
            return
        if seconds > self.max_plausible_interval:
            # sysUpTime went backwards (agent restarted: "the time since
            # the network management portion of the system was last
            # re-initialized").  Counters restarted with it; this poll
            # only re-establishes the baseline.
            self._m_restarts.inc()
            self.telemetry.events.publish(
                AGENT_RESTART, self.sim.now, node=node, if_index=if_index
            )
            if self.integrity is not None:
                self.integrity.note_restart(node, if_index)
            return
        in_pkts = (
            snapshot.ucast_in.delta(previous.ucast_in)
            + snapshot.nucast_in.delta(previous.nucast_in)
        )
        out_pkts = (
            snapshot.ucast_out.delta(previous.ucast_out)
            + snapshot.nucast_out.delta(previous.nucast_out)
        )
        sample = InterfaceRates(
            node=node,
            if_index=if_index,
            time=self.sim.now,
            interval=seconds,
            in_bytes_per_s=snapshot.octets_in.delta(previous.octets_in) / seconds,
            out_bytes_per_s=snapshot.octets_out.delta(previous.octets_out) / seconds,
            in_pkts_per_s=in_pkts / seconds,
            out_pkts_per_s=out_pkts / seconds,
        )
        self._m_samples.inc()
        if self.integrity is not None and not self.integrity.inspect(
            sample, previous, snapshot, polled_speed_bps=polled_speed
        ):
            # Withheld: the table keeps its last admitted sample, which
            # ages into staleness -- bad data degrades like missing data.
            return
        self.rates.update(sample)
        if self.on_sample is not None:
            self.on_sample(sample)
