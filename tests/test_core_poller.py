"""Unit tests for the SNMP poller: deltas, uptime intervals, wraps."""

import pytest

from repro.core.poller import InterfaceRates, PollTarget, RateTable, SnmpPoller
from repro.simnet.network import Network
from repro.simnet.sockets import DISCARD_PORT
from repro.snmp.agent import SnmpAgent
from repro.snmp.manager import SnmpManager
from repro.snmp.mib import SYS_UPTIME, build_mib2


def polling_net(interval=2.0, jitter=0.0):
    net = Network()
    mon = net.add_host("L")
    target_host = net.add_host("S1")
    peer = net.add_host("S2")
    sw = net.add_switch("sw", 6, managed=False)
    for h in (mon, target_host, peer):
        net.connect(h, sw)
    net.announce_hosts()
    SnmpAgent(target_host, build_mib2(target_host, net.sim))
    manager = SnmpManager(mon, timeout=0.5, retries=1)
    target = PollTarget("S1", target_host.primary_ip, [1])
    poller = SnmpPoller(manager, [target], interval=interval, jitter=jitter)
    return net, poller, target_host, peer


class TestRateTable:
    def sample(self, t=1.0, in_rate=10.0):
        return InterfaceRates("n", 1, t, 2.0, in_rate, 5.0, 1.0, 0.5)

    def test_latest_and_history(self):
        table = RateTable()
        table.update(self.sample(t=1.0, in_rate=10.0))
        table.update(self.sample(t=2.0, in_rate=20.0))
        assert table.latest("n", 1).in_bytes_per_s == 20.0
        assert len(table.history("n", 1)) == 2
        assert table.latest("n", 2) is None

    def test_history_disabled(self):
        table = RateTable(keep_history=False)
        table.update(self.sample())
        assert table.history("n", 1) == []
        assert table.latest("n", 1) is not None

    def test_keys_sorted(self):
        table = RateTable()
        table.update(InterfaceRates("b", 1, 0, 1, 0, 0, 0, 0))
        table.update(InterfaceRates("a", 2, 0, 1, 0, 0, 0, 0))
        assert table.keys() == [("a", 2), ("b", 1)]

    def test_total_rate(self):
        s = InterfaceRates("n", 1, 0, 1, in_bytes_per_s=10, out_bytes_per_s=4,
                           in_pkts_per_s=0, out_pkts_per_s=0)
        assert s.total_bytes_per_s == 14


class TestPolling:
    def test_first_poll_is_baseline_only(self):
        net, poller, *_ = polling_net()
        poller.start()
        net.run(1.0)  # one poll fired
        assert poller.samples_produced == 0

    def test_rates_reflect_traffic(self):
        net, poller, target, peer = polling_net(interval=2.0)
        poller.start()
        sock = peer.create_socket()
        # steady ~50 KB/s towards the target
        from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

        StaircaseLoad(
            peer, target.primary_ip, StepSchedule([(0.0, 50_000.0), (20.0, 0.0)]),
            payload_size=972,
        ).start()
        net.run(20.0)
        latest = poller.rates.latest("S1", 1)
        assert latest is not None
        assert latest.in_bytes_per_s == pytest.approx(50_000 * (1000 / 972), rel=0.05)
        assert latest.interval == pytest.approx(2.0, abs=0.2)

    def test_interval_from_uptime_not_schedule(self):
        """A delayed poll must not corrupt the rate (uptime delta is exact)."""
        net, poller, target, peer = polling_net(interval=2.0, jitter=0.5)
        poller.rng.seed(123)
        poller.start()
        from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

        StaircaseLoad(
            peer, target.primary_ip, StepSchedule([(0.0, 50_000.0), (40.0, 0.0)]),
            payload_size=972,
        ).start()
        net.run(40.0)
        history = poller.rates.history("S1", 1)[2:]  # skip warmup
        rates = [s.in_bytes_per_s for s in history]
        expected = 50_000 * (1000 / 972)
        for rate in rates:
            assert rate == pytest.approx(expected, rel=0.05)
        intervals = [s.interval for s in history]
        assert max(intervals) - min(intervals) > 0.1  # jitter really applied

    def test_counter_wrap_handled(self):
        net, poller, target, peer = polling_net(interval=2.0)
        # Pre-position the counter just below the 32-bit wrap.
        target.interfaces[0].counters.in_octets = (1 << 32) - 5000
        poller.start()
        net.run(3.0)  # baseline taken near the top
        from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

        StaircaseLoad(
            peer, target.primary_ip, StepSchedule([(3.0, 50_000.0), (30.0, 0.0)]),
            payload_size=972,
        ).start()
        net.run(30.0)
        history = poller.rates.history("S1", 1)
        assert all(s.in_bytes_per_s >= 0 for s in history)
        busy = [s for s in history if 6.0 < s.time < 29.0]
        expected = 50_000 * (1000 / 972)
        for s in busy:
            assert s.in_bytes_per_s == pytest.approx(expected, rel=0.06)

    def test_unreachable_target_counts_errors(self):
        net, poller, target, peer = polling_net()
        bad = PollTarget("ghost", peer.primary_ip, [1])  # no agent on peer
        poller.targets.append(bad)
        poller.start()
        net.run(10.0)
        assert poller.poll_errors >= 3
        # The reachable target still produced samples.
        assert poller.rates.latest("S1", 1) is not None

    def test_stop_halts_polling(self):
        net, poller, *_ = polling_net()
        poller.start()
        net.run(5.0)
        cycles = poller.cycles
        poller.stop()
        net.run(20.0)
        assert poller.cycles == cycles

    def test_double_start_rejected(self):
        net, poller, *_ = polling_net()
        poller.start()
        with pytest.raises(RuntimeError):
            poller.start()

    def test_bad_interval_rejected(self):
        net, poller, *_ = polling_net()
        with pytest.raises(ValueError):
            SnmpPoller(poller.manager, [], interval=0.0)

    def test_on_sample_callback(self):
        net, poller, *_ = polling_net()
        seen = []
        poller.on_sample = seen.append
        poller.start()
        net.run(10.0)
        assert len(seen) == poller.samples_produced > 0

    def test_agent_restart_rebaselines(self):
        """A sysUpTime reset (daemon restart) must not produce garbage
        rates; the poller re-baselines and resumes."""
        net, poller, target, peer = polling_net(interval=2.0)
        poller.start()
        net.run(6.0)  # a few clean samples exist
        # Simulate the daemon restarting: rebuild its MIB with a fresh
        # boot time (uptime restarts near zero) and zeroed counters.
        from repro.snmp.mib import build_mib2

        target.interfaces[0].counters.in_octets = 0
        target.interfaces[0].counters.out_octets = 0
        # The agent owns port 161; its bound method leads back to it.
        agent = target._sockets[161].on_receive.__self__
        agent.mib = build_mib2(target, net.sim, boot_time=net.now)
        samples_before = poller.samples_produced
        net.run(20.0)
        assert poller.agent_restarts >= 1
        history = poller.rates.history("S1", 1)
        # No sample may span the restart with an absurd interval.
        assert all(s.interval < 100.0 for s in history)
        # And polling resumed producing samples afterwards.
        assert poller.samples_produced > samples_before

    def test_packet_rates_tracked(self):
        net, poller, target, peer = polling_net()
        poller.start()
        from repro.simnet.trafficgen import StaircaseLoad, StepSchedule

        StaircaseLoad(
            peer, target.primary_ip, StepSchedule([(0.0, 9720.0), (20.0, 0.0)]),
            payload_size=972,
        ).start()  # 10 packets/s
        net.run(20.0)
        latest = poller.rates.latest("S1", 1)
        assert latest.in_pkts_per_s == pytest.approx(10.0, rel=0.1)


class TestRateTableCap:
    def test_history_is_a_ring_buffer(self):
        table = RateTable(max_history=4)
        for i in range(10):
            table.update(InterfaceRates("n", 1, float(i), 1.0, float(i), 0, 0, 0))
        history = table.history("n", 1)
        assert len(history) == 4
        assert [s.time for s in history] == [6.0, 7.0, 8.0, 9.0]  # newest kept
        assert table.latest("n", 1).time == 9.0

    def test_cap_is_per_key(self):
        table = RateTable(max_history=2)
        for i in range(5):
            table.update(InterfaceRates("a", 1, float(i), 1.0, 0, 0, 0, 0))
        table.update(InterfaceRates("b", 1, 0.0, 1.0, 0, 0, 0, 0))
        assert len(table.history("a", 1)) == 2
        assert len(table.history("b", 1)) == 1

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            RateTable(max_history=0)


class TestIngestEdges:
    """Direct unit tests of the poller's sample-derivation branches."""

    def snap(self, uptime_s, octets=0):
        from repro.core.poller import _CounterSnapshot
        from repro.snmp.datatypes import Counter32, TimeTicks

        c = Counter32.wrap(octets)
        return _CounterSnapshot(
            uptime=TimeTicks.from_seconds(uptime_s),
            octets_in=c, octets_out=c, ucast_in=c, ucast_out=c,
            nucast_in=Counter32(0), nucast_out=Counter32(0),
        )

    def test_same_tick_duplicate_dropped(self):
        net, poller, *_ = polling_net()
        poller._ingest("S1", 1, self.snap(10.0, octets=100))  # baseline
        poller._ingest("S1", 1, self.snap(10.0, octets=999))  # same uptime tick
        assert poller.samples_produced == 0
        assert poller.rates.latest("S1", 1) is None

    def test_counter32_wrap_yields_positive_rate(self):
        net, poller, *_ = polling_net()
        poller._ingest("S1", 1, self.snap(10.0, octets=(1 << 32) - 500))
        poller._ingest("S1", 1, self.snap(12.0, octets=1500))  # wrapped past 2^32
        latest = poller.rates.latest("S1", 1)
        assert latest is not None
        assert latest.in_bytes_per_s == pytest.approx((500 + 1500) / 2.0)

    def test_uptime_regression_counts_restart_and_rebaselines(self):
        net, poller, *_ = polling_net()
        poller._ingest("S1", 1, self.snap(1000.0, octets=5_000_000))
        poller._ingest("S1", 1, self.snap(1.0, octets=100))  # rebooted agent
        assert poller.agent_restarts == 1
        assert poller.samples_produced == 0  # baseline only, no garbage rate
        poller._ingest("S1", 1, self.snap(3.0, octets=4100))
        latest = poller.rates.latest("S1", 1)
        assert latest.in_bytes_per_s == pytest.approx(4000 / 2.0)
        assert latest.interval == pytest.approx(2.0)


class TestErrorClassification:
    def test_missing_counters_are_parse_errors_agent_stays_healthy(self):
        from repro.core.health import HealthState

        net, poller, target, peer = polling_net()
        # Interface 99 does not exist: v2c answers with NoSuchObject
        # values, so the response arrives but yields no counters.
        poller.targets[0] = PollTarget("S1", target.primary_ip, [99])
        poller.start()
        net.run(10.0)
        assert poller.parse_errors >= 4
        assert poller.timeout_errors == 0
        assert poller.poll_errors == 0  # the agent did answer
        assert poller.health.state("S1") is HealthState.HEALTHY

    def test_v1_error_status_counted_as_error_response(self):
        from repro.core.health import HealthState
        from repro.snmp.message import VERSION_1

        net, poller, target, peer = polling_net()
        v1_manager = SnmpManager(
            net.host("L"), timeout=0.5, retries=1, version=VERSION_1
        )
        v1_poller = SnmpPoller(
            v1_manager,
            [PollTarget("S1", target.primary_ip, [99])],
            interval=2.0,
            jitter=0.0,
        )
        v1_poller.start()
        net.run(10.0)
        # v1 has no per-varbind exceptions: the whole request fails with
        # noSuchName, which proves the agent alive but the poll useless.
        assert v1_poller.error_responses >= 4
        assert v1_poller.poll_errors == v1_poller.error_responses
        assert v1_poller.timeout_errors == 0
        assert v1_poller.health.state("S1") is HealthState.HEALTHY
