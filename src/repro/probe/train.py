"""UDP probe trains: the active measurement primitive.

An iperf-style burst: :class:`ProbeTrain` sends a short train of
sequence-numbered, timestamped UDP datagrams back-to-back from a source
host to the :class:`ProbeSink` service on the destination.  The sink
records each probe's arrival; after a timeout window the train reduces
the arrivals to one :class:`~repro.probe.stats.ProbeReport`:

- **achievable throughput** from receiver-side dispersion (the train
  leaves the source back-to-back, so the spacing it arrives with is the
  bottleneck's service rate -- and under cross-traffic, the residual
  share the path can actually give a new flow);
- **one-way loss** by sequence-gap accounting;
- **RFC 3550 interarrival jitter** over one-way transit times.

Probe packets are DSCP-marked (:data:`PROBE_DSCP`, Expedited Forwarding)
so per-interface ToS counters can separate measurement traffic from
workload -- which is how the benchmark proves probing stays within its
overhead budget rather than perturbing what it measures.

The train *always* completes: the reducing callback is scheduled at
start, unconditionally, so lost probes, downed links, and dead hosts
yield a (lossy or abandoned) report after the timeout instead of a
wedged scheduler.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.probe.stats import (
    ProbeReport,
    dispersion_bps,
    interarrival_jitter,
    sequence_loss,
)
from repro.simnet.host import Host
from repro.simnet.packet import IPV4_HEADER_SIZE, UDP_HEADER_SIZE

#: Well-known probe sink port (the classic iperf default).
PROBE_PORT = 5001
#: Probe traffic is marked Expedited Forwarding (DSCP 46).
PROBE_DSCP = 46
PROBE_TOS = PROBE_DSCP << 2

#: train_id (4) + sequence (4) + send time in microsecond ticks (8).
_HEADER_BYTES = 16
_WIRE_OVERHEAD = UDP_HEADER_SIZE + IPV4_HEADER_SIZE

_train_ids = itertools.count(1)

# One sink per (host, port), shared by every train targeting that host.
_sinks: "weakref.WeakKeyDictionary[Host, Dict[int, ProbeSink]]" = (
    weakref.WeakKeyDictionary()
)


class ProbeError(ValueError):
    """Raised for malformed train parameters."""


class ProbeSink:
    """Receiver side of the probe protocol: timestamp and file arrivals.

    Obtain via :meth:`ensure` -- a host runs at most one sink per port,
    shared by every train aimed at it.  Arrival records are kept per
    train id until the owning train collects them with :meth:`take`.
    """

    def __init__(self, host: Host, port: int = PROBE_PORT) -> None:
        self.host = host
        self.socket = host.create_socket(port)
        self.socket.on_receive = self._on_receive
        self.packets = 0
        self.octets = 0
        self.malformed = 0
        # train_id -> [(seq, sent_s, arrival_s)]
        self._records: Dict[int, List[Tuple[int, float, float]]] = {}
        # train_id -> (expected count, completion callback)
        self._watchers: Dict[int, Tuple[int, Callable[[], None]]] = {}

    @classmethod
    def ensure(cls, host: Host, port: int = PROBE_PORT) -> "ProbeSink":
        """The host's probe sink on ``port``, created on first use."""
        sinks = _sinks.setdefault(host, {})
        sink = sinks.get(port)
        if sink is None:
            sink = cls(host, port)
            sinks[port] = sink
        return sink

    def _on_receive(self, payload, size, src_ip, src_port) -> None:
        if payload is None or len(payload) < _HEADER_BYTES:
            self.malformed += 1
            return
        train_id = int.from_bytes(payload[0:4], "big")
        seq = int.from_bytes(payload[4:8], "big")
        sent_s = int.from_bytes(payload[8:16], "big") / 1e6
        self.packets += 1
        self.octets += size
        records = self._records.setdefault(train_id, [])
        records.append((seq, sent_s, self.host.sim.now))
        watcher = self._watchers.get(train_id)
        if watcher is not None and len(records) >= watcher[0]:
            del self._watchers[train_id]
            watcher[1]()

    def watch(
        self, train_id: int, expected: int, callback: Callable[[], None]
    ) -> None:
        """Invoke ``callback`` once ``expected`` probes of a train arrive."""
        self._watchers[train_id] = (expected, callback)

    def take(self, train_id: int) -> List[Tuple[int, float, float]]:
        """Collect (and forget) one train's arrival records."""
        self._watchers.pop(train_id, None)
        return self._records.pop(train_id, [])


class ProbeTrain:
    """One back-to-back probe burst from ``src`` towards ``dst``.

    The burst is handed to the source NIC in one go; the network paces
    it.  ``timeout`` seconds after the last send the train reduces
    whatever arrived (``on_complete(report)``); stragglers arriving
    later are discarded by the sink when the records are collected.
    """

    def __init__(
        self,
        src: Host,
        dst: Host,
        count: int = 16,
        payload_size: int = 1472,
        warmup: int = 2,
        timeout: float = 1.0,
        tos: int = PROBE_TOS,
        port: int = PROBE_PORT,
        on_complete: Optional[Callable[[ProbeReport], None]] = None,
    ) -> None:
        if count < 2:
            raise ProbeError("a train needs at least two probes")
        if payload_size < _HEADER_BYTES:
            raise ProbeError(f"payload_size must be >= {_HEADER_BYTES} bytes")
        if not 0 <= warmup < count - 1:
            raise ProbeError(
                f"warmup {warmup} must leave at least two measured probes"
            )
        if timeout <= 0:
            raise ProbeError(f"non-positive timeout {timeout!r}")
        self.src = src
        self.dst = dst
        self.count = count
        self.payload_size = payload_size
        self.warmup = warmup
        self.timeout = timeout
        self.on_complete = on_complete
        self.sim = src.sim
        self.train_id = next(_train_ids)
        self.sink = ProbeSink.ensure(dst, port)
        self.socket = src.create_socket()
        self.socket.tos = tos
        self.report: Optional[ProbeReport] = None
        self._started = False
        self._timer = None

    @property
    def wire_bytes_per_packet(self) -> int:
        return self.payload_size + _WIRE_OVERHEAD

    @property
    def train_bytes(self) -> int:
        """Wire bytes one train offers the network."""
        return self.count * self.wire_bytes_per_packet

    def start(self) -> None:
        """Emit the burst and arm the (unconditional) reduction timer."""
        if self._started:
            raise ProbeError("probe train already started")
        self._started = True
        dst_ip = self.dst.primary_ip
        pad = b"\x00" * (self.payload_size - _HEADER_BYTES)
        for seq in range(self.count):
            payload = (
                self.train_id.to_bytes(4, "big")
                + seq.to_bytes(4, "big")
                + int(round(self.sim.now * 1e6)).to_bytes(8, "big")
                + pad
            )
            # A NIC tail-drop is simply a lost probe; sequence accounting
            # reports it, so the send result is deliberately ignored.
            self.socket.sendto(payload, (dst_ip, self.sink.socket.port))
        # Finish early once every probe has arrived; the timeout stays
        # armed regardless, so a lossy train still completes.
        self.sink.watch(self.train_id, self.count, self._all_arrived)
        self._timer = self.sim.schedule(self.timeout, self._finish)

    def _all_arrived(self) -> None:
        if self._timer is not None and self._timer.pending:
            self._timer.cancel()
        # Reduce on a fresh event, not inside the delivering NIC's frame.
        self.sim.schedule(0.0, self._finish)

    def _finish(self) -> None:
        if self.report is not None:
            return  # already reduced (early completion raced the timeout)
        records = sorted(self.sink.take(self.train_id), key=lambda r: r[2])
        self.socket.close()
        loss_rate, gaps = sequence_loss(self.count, [r[0] for r in records])
        # Warm-up trimming: the first arrivals may reflect an empty-queue
        # transient rather than the path's steady service rate.
        measured = records[self.warmup:] if len(records) > self.warmup else []
        transits = [arrival - sent for (_seq, sent, arrival) in measured]
        delays_all = [arrival - sent for (_seq, sent, arrival) in records]
        arrivals = [arrival for (_seq, _sent, arrival) in measured]
        self.report = ProbeReport(
            src=self.src.name,
            dst=self.dst.name,
            time=self.sim.now,
            sent=self.count,
            received=len(records),
            train_bytes=self.train_bytes,
            warmup=self.warmup,
            achievable_bps=dispersion_bps(arrivals, self.wire_bytes_per_packet),
            loss_rate=loss_rate,
            gaps=gaps,
            jitter_s=interarrival_jitter(transits),
            delay_min_s=float(np.min(delays_all)) if delays_all else float("nan"),
            delay_mean_s=float(np.mean(delays_all)) if delays_all else float("nan"),
            delay_max_s=float(np.max(delays_all)) if delays_all else float("nan"),
            duration_s=(max(arrivals) - min(arrivals)) if len(arrivals) >= 2 else 0.0,
        )
        if self.on_complete is not None:
            self.on_complete(self.report)
