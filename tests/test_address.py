"""Unit tests for MAC/IPv4 address types and allocators."""

import pytest

from repro.simnet.address import (
    BROADCAST_MAC,
    AddressError,
    IPv4Address,
    IPv4Allocator,
    MacAddress,
    MacAllocator,
)


class TestMacAddress:
    def test_parse_colon_form(self):
        mac = MacAddress("02:00:00:00:00:01")
        assert mac.value == 0x020000000001

    def test_parse_dash_form(self):
        assert MacAddress("02-00-00-00-00-01") == MacAddress("02:00:00:00:00:01")

    def test_str_roundtrip(self):
        mac = MacAddress(0xAABBCCDDEEFF)
        assert MacAddress(str(mac)) == mac
        assert str(mac) == "aa:bb:cc:dd:ee:ff"

    def test_to_bytes(self):
        assert MacAddress("00:11:22:33:44:55").to_bytes() == bytes.fromhex("001122334455")

    def test_broadcast_detection(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MacAddress(1).is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast
        assert BROADCAST_MAC.is_multicast  # broadcast sets the group bit too

    def test_ordering_and_hash(self):
        a, b = MacAddress(1), MacAddress(2)
        assert a < b
        assert len({a, MacAddress(1)}) == 1

    @pytest.mark.parametrize("bad", ["", "02:00", "02:00:00:00:00:zz", "0:0:0:0:0:0"])
    def test_malformed_strings(self, bad):
        with pytest.raises(AddressError):
            MacAddress(bad)

    def test_out_of_range_int(self):
        with pytest.raises(AddressError):
            MacAddress(1 << 48)
        with pytest.raises(AddressError):
            MacAddress(-1)

    def test_copy_constructor(self):
        mac = MacAddress(42)
        assert MacAddress(mac) == mac


class TestIPv4Address:
    def test_parse_and_str(self):
        ip = IPv4Address("10.0.0.1")
        assert ip.value == (10 << 24) + 1
        assert str(ip) == "10.0.0.1"

    def test_to_bytes(self):
        assert IPv4Address("1.2.3.4").to_bytes() == bytes([1, 2, 3, 4])

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    def test_in_subnet(self):
        ip = IPv4Address("10.0.5.7")
        assert ip.in_subnet(IPv4Address("10.0.0.0"), 16)
        assert not ip.in_subnet(IPv4Address("10.1.0.0"), 16)
        assert ip.in_subnet(IPv4Address("0.0.0.0"), 0)

    def test_in_subnet_bad_prefix(self):
        with pytest.raises(AddressError):
            IPv4Address("10.0.0.1").in_subnet(IPv4Address("10.0.0.0"), 33)

    @pytest.mark.parametrize("bad", ["", "10.0.0", "10.0.0.256", "a.b.c.d", "10.0.0.1.2"])
    def test_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_mac_and_ip_never_equal(self):
        assert MacAddress(5) != IPv4Address(5)


class TestAllocators:
    def test_mac_allocator_unique_and_unicast(self):
        alloc = MacAllocator()
        macs = [alloc.allocate() for _ in range(100)]
        assert len(set(macs)) == 100
        assert all(not m.is_multicast and not m.is_broadcast for m in macs)

    def test_ip_allocator_stays_in_subnet(self):
        alloc = IPv4Allocator("192.168.0.0", 24)
        ips = [alloc.allocate() for _ in range(50)]
        assert len(set(ips)) == 50
        assert all(ip.in_subnet(IPv4Address("192.168.0.0"), 24) for ip in ips)

    def test_ip_allocator_exhaustion(self):
        alloc = IPv4Allocator("192.168.0.0", 30)  # 2 usable hosts
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AddressError):
            alloc.allocate()

    def test_ip_allocator_rejects_tiny_subnet(self):
        with pytest.raises(AddressError):
            IPv4Allocator("192.168.0.0", 31)

    def test_allocators_deterministic(self):
        alloc1, alloc2 = MacAllocator(), MacAllocator()
        seq1 = [alloc1.allocate() for _ in range(5)]
        seq2 = [alloc2.allocate() for _ in range(5)]
        assert seq1 == seq2  # fresh allocators produce identical sequences
