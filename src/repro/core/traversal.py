"""Communication-path traversal (paper §3.3).

"Based on the information from the specification language, the
communication path between two hosts can be traversed.  A simple recursive
algorithm is designed to traverse the path, with a necessary infinite-loop
detecting function implemented.  The result of the path is described as a
series of network connections."

:func:`find_path` is that algorithm: a recursive depth-first search over
the connection graph, carrying a visited set so that cyclic topologies
terminate instead of recursing forever.  On the paper's tree-shaped LAN
the path is unique; on meshes the deterministic first (declaration-order)
path is returned, and :func:`find_all_paths` enumerates the alternatives
for diagnosis tools.
"""

from __future__ import annotations

from typing import List, Optional, Set, Union

from repro.topology.graph import TopologyGraph
from repro.topology.model import ConnectionSpec, TopologyError, TopologySpec

Path = List[ConnectionSpec]


class NoPathError(TopologyError):
    """No sequence of connections joins the two hosts."""

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"no communication path from {src!r} to {dst!r}")
        self.src = src
        self.dst = dst


class PathLoopError(TopologyError):
    """Raised only by paranoid callers; traversal itself never loops."""


def _as_graph(topology: Union[TopologySpec, TopologyGraph]) -> TopologyGraph:
    if isinstance(topology, TopologyGraph):
        return topology
    return TopologyGraph(topology)


def find_path(
    topology: Union[TopologySpec, TopologyGraph],
    src: str,
    dst: str,
) -> Path:
    """The series of connections from ``src`` to ``dst``.

    Raises :class:`NoPathError` when the hosts are not connected, and
    :class:`~repro.topology.model.TopologyError` when either name is
    unknown.  A host is trivially connected to itself by the empty path.
    """
    graph = _as_graph(topology)
    if src == dst:
        graph.neighbors(src)  # existence check
        return []
    visited: Set[str] = {src}
    path = _dfs(graph, src, dst, visited)
    if path is None:
        graph.neighbors(dst)  # raise on unknown destination
        raise NoPathError(src, dst)
    return path


def _dfs(graph: TopologyGraph, node: str, dst: str, visited: Set[str]) -> Optional[Path]:
    """The paper's recursive traversal with its loop detector (visited)."""
    for conn, peer in graph.neighbors(node):
        if peer in visited:
            continue  # infinite-loop detection
        if peer == dst:
            return [conn]
        visited.add(peer)
        tail = _dfs(graph, peer, dst, visited)
        if tail is not None:
            return [conn] + tail
        # NOTE: ``peer`` stays in ``visited`` on backtrack.  For simple
        # reachability this is sound (a node that cannot reach dst via one
        # entry cannot via another on an undirected graph when search is
        # exhaustive from that node) and it keeps the traversal linear.
    return None


def find_all_paths(
    topology: Union[TopologySpec, TopologyGraph],
    src: str,
    dst: str,
    max_paths: int = 64,
) -> List[Path]:
    """Every simple path between two hosts (bounded; for mesh diagnosis)."""
    graph = _as_graph(topology)
    graph.neighbors(src)
    graph.neighbors(dst)
    if src == dst:
        return [[]]
    results: List[Path] = []

    def recurse(node: str, visited: Set[str], acc: Path) -> None:
        if len(results) >= max_paths:
            return
        for conn, peer in graph.neighbors(node):
            if peer in visited:
                continue
            if peer == dst:
                results.append(acc + [conn])
                continue
            visited.add(peer)
            recurse(peer, visited, acc + [conn])
            visited.discard(peer)

    recurse(src, {src}, [])
    return results


def path_nodes(path: Path, src: str) -> List[str]:
    """The node names visited along ``path`` starting at ``src``."""
    nodes = [src]
    current = src
    for conn in path:
        nxt = conn.other_end(current).node
        nodes.append(nxt)
        current = nxt
    return nodes


def format_path(path: Path, src: str) -> str:
    """Human-readable ``S1 -> switch -> hub -> N1`` rendering."""
    return " -> ".join(path_nodes(path, src))
