"""Tests for the telemetry exporters: Prometheus text, JSON, time series."""

import json
import os

import pytest

from repro.simnet.engine import Simulator
from repro.stream import register_stream_metrics
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    TimeSeriesRecorder,
    json_snapshot,
    prometheus_text,
    snapshot_dict,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "telemetry_golden.prom")


def build_reference_registry() -> MetricsRegistry:
    """A hand-constructed, fully deterministic registry for golden tests."""
    reg = MetricsRegistry()
    reqs = reg.counter("snmp_requests_total", "SNMP requests sent", ("agent",))
    reqs.labels(agent="S1").inc(30)
    reqs.labels(agent="N1").inc(28)
    reg.gauge("agents_healthy", "agents currently healthy").set(6)
    rtt = reg.histogram(
        "snmp_rtt_seconds", "poll round-trip time", ("agent",), quantiles=(0.5, 0.99)
    )
    for i in range(1, 21):
        rtt.labels(agent="S1").observe(i / 1000.0)
    esc = reg.gauge("odd_label_gauge", 'help with "quotes"\nand newline', ("path",))
    esc.labels(path='a"b\\c\nd').set(1.5)
    reg.gauge("empty_gauge", "never set")
    viol = reg.counter(
        "integrity_violations_by_check_total",
        "integrity violations split by failing check",
        ("check",),
    )
    viol.labels(check="rate_bound").inc(3)
    viol.labels(check="cross_check").inc(2)
    reg.counter(
        "integrity_samples_rejected_total",
        "samples withheld from the rate table (violating or quarantined)",
    ).inc(5)
    reg.gauge("quarantined_interfaces", "interfaces currently quarantined").set(1)
    trust = reg.gauge(
        "interface_trust", "per-interface trust score (1 = pristine)", ("interface",)
    )
    trust.labels(interface="S1:1").set(0.25)
    register_stream_metrics(reg)
    reg.gauge("stream_subscribers").set(3)
    reg.counter("stream_events_delivered_total").inc(120)
    reg.counter("stream_events_suppressed_total").inc(45)
    reg.counter("stream_events_dropped_total").inc(7)
    return reg


class TestPrometheusText:
    def test_matches_golden_file(self):
        text = prometheus_text(build_reference_registry())
        with open(GOLDEN, encoding="utf-8") as fh:
            assert text == fh.read()

    def test_structure(self):
        text = prometheus_text(build_reference_registry())
        assert "# TYPE snmp_requests_total counter" in text
        # Histograms render as summaries: quantile series + _sum/_count.
        assert "# TYPE snmp_rtt_seconds summary" in text
        assert 'snmp_rtt_seconds{agent="S1",quantile="0.5"}' in text
        assert 'snmp_rtt_seconds_count{agent="S1"} 20' in text
        assert 'snmp_rtt_seconds_sum{agent="S1"} 0.21' in text

    def test_label_escaping(self):
        text = prometheus_text(build_reference_registry())
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_every_line_well_formed(self):
        for line in prometheus_text(build_reference_registry()).splitlines():
            assert line.startswith("#") or " " in line

    def test_nan_renders_as_nan_token(self):
        reg = MetricsRegistry()
        reg.histogram("empty_h", "no samples")
        text = prometheus_text(reg)
        assert "empty_h{quantile=" in text
        assert "NaN" in text


class TestJsonSnapshot:
    def test_roundtrips_through_json(self):
        tel = Telemetry(clock=lambda: 42.0)
        tel.registry.counter("c_total").inc()
        tel.registry.histogram("h_seconds")  # empty: NaN quantiles
        tel.events.publish("qos_violation", 41.0, path="S1<->N1")
        with tel.tracer.span("poll_cycle", cycle=1):
            pass
        data = json.loads(json_snapshot(tel))
        assert data["time"] == 42.0
        assert data["metrics"]["c_total"]["values"][0]["value"] == 1
        assert data["events"]["counts"]["qos_violation"] == 1
        assert data["spans"]["finished"] == 1
        assert data["spans"]["recent"][0]["name"] == "poll_cycle"
        # NaN must arrive as a string, not an invalid bare token.
        q = data["metrics"]["h_seconds"]["values"][0]["value"]["quantiles"]
        assert q["0.5"] == "nan"

    def test_snapshot_dict_time_override(self):
        tel = Telemetry(clock=lambda: 5.0)
        assert snapshot_dict(tel, time=9.0)["time"] == 9.0


class TestTimeSeriesRecorder:
    def test_periodic_sampling_on_sim_time(self):
        sim = Simulator()
        reg = MetricsRegistry()
        counter = reg.counter("ticks_total")
        sim.call_every(1.0, counter.inc, start=0.5)
        rec = TimeSeriesRecorder(reg, sim, interval=2.0).start(at=2.0)
        sim.run(7.0)
        rec.stop()
        sim.run(9.0)  # no rows after stop
        times = [row["time"] for row in rec.rows]
        assert times == [2.0, 4.0, 6.0]
        assert [row["ticks_total"] for row in rec.rows] == [2, 4, 6]

    def test_histogram_columns_and_csv(self):
        sim = Simulator()
        reg = MetricsRegistry()
        h = reg.histogram("lat", quantiles=(0.5,), labelnames=("agent",))
        h.labels(agent="S1").observe(1.0)
        rec = TimeSeriesRecorder(reg, sim, metrics=["lat"])
        rec.sample()
        row = rec.rows[0]
        assert row["lat{agent=S1}:p50"] == 1.0
        assert row["lat{agent=S1}:count"] == 1
        csv = rec.to_csv()
        assert csv.splitlines()[0] == "time,lat{agent=S1}:p50,lat{agent=S1}:count"
        assert csv.splitlines()[1] == "0,1,1"

    def test_column_union_over_late_families(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        rec = TimeSeriesRecorder(reg, sim)
        rec.sample()
        reg.counter("b_total").inc(2)
        rec.sample()
        cols = rec.columns()
        assert cols == ["time", "a_total", "b_total"]
        lines = rec.to_csv().splitlines()
        assert lines[1].endswith(",")  # b_total blank in the first row

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), Simulator(), interval=0.0)

    def test_double_start_rejected(self):
        rec = TimeSeriesRecorder(MetricsRegistry(), Simulator())
        rec.start()
        with pytest.raises(RuntimeError):
            rec.start()
