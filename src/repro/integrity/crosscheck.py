"""Two-ended cross-checking of 1-to-1 connections (natural redundancy).

Every ``HostPairConnection`` in the paper's topology joins exactly two
interfaces, so whenever *both* ends run SNMP agents the same wire is
measured twice: A's ifOutOctets rate should track B's ifInOctets rate
(and vice versa).  The codebase normally polls only the preferred end
(host over switch, see :mod:`repro.core.counters`); cross-check mode
additionally polls the secondary end and compares the two.

A disagreement beyond tolerance on either direction is a *mismatch*.
Mismatches are debounced (``breach_count`` consecutive checks) because
the two ends are sampled at slightly different instants through
timer-refreshed counter caches, so a single-step disagreement during a
load transition is expected noise.

Attribution: a mismatch proves the wire's two observers disagree, not
who lies.  Suspicion is scored per end from (a) corroboration -- an end
whose *other* pairs agree is probably honest, an end disagreeing
everywhere is probably the liar; (b) recent per-sample verdicts against
that end; (c) the end's :class:`~repro.core.health.AgentHealth` record.
A clear margin blames one end (VIOLATION); a tie suspects both
(SUSPECT) -- trusting neither is the conservative reading of
contradictory evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.counters import CounterSource, if_index_of, resolve_counter_source
from repro.core.health import AgentHealthTracker, HealthState
from repro.core.poller import InterfaceRates
from repro.integrity.validators import IntegrityVerdict, Severity
from repro.topology.model import DeviceKind, TopologySpec

Key = Tuple[str, int]


@dataclass(frozen=True)
class CrossPair:
    """One connection observable from both ends."""

    primary: CounterSource  # the end the monitor polls anyway
    secondary: CounterSource  # the extra end polled for cross-checking

    @property
    def label(self) -> str:
        a, b = self.primary.endpoint, self.secondary.endpoint
        return f"{a.node}.{a.interface}<->{b.node}.{b.interface}"

    def ends(self) -> Tuple[CounterSource, CounterSource]:
        return (self.primary, self.secondary)


def two_ended_pairs(spec: TopologySpec) -> List[CrossPair]:
    """Connections whose both ends are SNMP-enabled non-hub nodes."""
    pairs: List[CrossPair] = []
    for conn in spec.connections:
        primary = resolve_counter_source(spec, conn)
        if primary is None:
            continue
        secondary: Optional[CounterSource] = None
        for end in conn.endpoints():
            if end == primary.endpoint:
                continue
            node = spec.node(end.node)
            if not node.snmp_enabled or node.kind is DeviceKind.HUB:
                continue
            secondary = CounterSource(
                node=node.name, if_index=if_index_of(node, end.interface), endpoint=end
            )
        if secondary is not None:
            pairs.append(CrossPair(primary=primary, secondary=secondary))
    return pairs


def extra_poll_indexes(pairs: Sequence[CrossPair]) -> Dict[str, List[int]]:
    """(node -> ifIndexes) of the secondary ends cross-checking polls."""
    extra: Dict[str, List[int]] = {}
    for pair in pairs:
        indexes = extra.setdefault(pair.secondary.node, [])
        if pair.secondary.if_index not in indexes:
            indexes.append(pair.secondary.if_index)
    for indexes in extra.values():
        indexes.sort()
    return extra


@dataclass(frozen=True)
class CrossCheckFinding:
    """Outcome of checking one pair at one instant."""

    pair: CrossPair
    time: float
    mismatch: bool
    blamed: Optional[str] = None  # node name, when attribution is clear
    detail: str = ""


class CrossChecker:
    """Compares out/in octet rates across each pair every report cycle."""

    def __init__(
        self,
        pairs: Sequence[CrossPair],
        rel_tolerance: float = 0.35,
        abs_floor_bps: float = 4096.0,
        max_sample_age: float = 4.0,
        breach_count: int = 2,
        health: Optional[AgentHealthTracker] = None,
    ) -> None:
        if rel_tolerance <= 0:
            raise ValueError(f"rel_tolerance must be > 0, got {rel_tolerance!r}")
        if breach_count < 1:
            raise ValueError(f"breach_count must be >= 1, got {breach_count!r}")
        self.pairs = list(pairs)
        self.rel_tolerance = rel_tolerance
        self.abs_floor_bps = abs_floor_bps
        self.max_sample_age = max_sample_age
        self.breach_count = breach_count
        self.health = health
        self._streaks: Dict[str, int] = {}  # pair label -> consecutive raw mismatches
        self.mismatches = 0  # debounced mismatches flagged over the run

    # ------------------------------------------------------------------
    def _disagree(self, a: float, b: float) -> bool:
        return abs(a - b) > max(self.abs_floor_bps, self.rel_tolerance * max(a, b))

    def _raw_mismatch(
        self, sa: InterfaceRates, sb: InterfaceRates
    ) -> Optional[str]:
        """A human-readable mismatch description, or None when they agree."""
        if self._disagree(sa.out_bytes_per_s, sb.in_bytes_per_s):
            return (
                f"out {sa.out_bytes_per_s:.0f} B/s vs far-end in"
                f" {sb.in_bytes_per_s:.0f} B/s"
            )
        if self._disagree(sa.in_bytes_per_s, sb.out_bytes_per_s):
            return (
                f"in {sa.in_bytes_per_s:.0f} B/s vs far-end out"
                f" {sb.out_bytes_per_s:.0f} B/s"
            )
        return None

    # ------------------------------------------------------------------
    def check(
        self,
        samples: Dict[Key, InterfaceRates],
        now: float,
        recent_offender: Optional[Callable[[str, int], bool]] = None,
    ) -> List[CrossCheckFinding]:
        """Evaluate every pair against the given per-interface samples.

        ``samples`` should include withheld (quarantined) interfaces --
        the pipeline keeps a shadow table for exactly this reason --
        otherwise a quarantined liar stops being observed and quietly
        recovers trust while still lying.
        """
        findings: List[CrossCheckFinding] = []
        raw: List[Tuple[CrossPair, str]] = []
        agree: Dict[str, int] = {}
        disagree: Dict[str, int] = {}
        for pair in self.pairs:
            sa = samples.get(pair.primary.key())
            sb = samples.get(pair.secondary.key())
            if sa is None or sb is None:
                continue
            if sa.age(now) > self.max_sample_age or sb.age(now) > self.max_sample_age:
                continue  # one end stale: nothing comparable this cycle
            detail = self._raw_mismatch(sa, sb)
            if detail is None:
                self._streaks[pair.label] = 0
                for source in pair.ends():
                    agree[source.node] = agree.get(source.node, 0) + 1
                findings.append(CrossCheckFinding(pair=pair, time=now, mismatch=False))
                continue
            streak = self._streaks.get(pair.label, 0) + 1
            self._streaks[pair.label] = streak
            for source in pair.ends():
                disagree[source.node] = disagree.get(source.node, 0) + 1
            if streak >= self.breach_count:
                raw.append((pair, detail))
            else:
                findings.append(CrossCheckFinding(pair=pair, time=now, mismatch=False))
        for pair, detail in raw:
            blamed = self._attribute(pair, agree, disagree, recent_offender)
            self.mismatches += 1
            findings.append(
                CrossCheckFinding(
                    pair=pair, time=now, mismatch=True, blamed=blamed, detail=detail
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _attribute(
        self,
        pair: CrossPair,
        agree: Dict[str, int],
        disagree: Dict[str, int],
        recent_offender: Optional[Callable[[str, int], bool]],
    ) -> Optional[str]:
        scores: Dict[str, float] = {}
        for source in pair.ends():
            node = source.node
            n_agree = agree.get(node, 0)
            n_disagree = disagree.get(node, 0)
            # Corroboration: fraction of this end's comparable pairs that
            # disagree, minus credit for each pair where it checks out.
            score = n_disagree / max(1, n_agree + n_disagree) - float(n_agree)
            if recent_offender is not None and recent_offender(node, source.if_index):
                score += 2.0
            if self.health is not None:
                if self.health.state(node) is not HealthState.HEALTHY:
                    score += 1.0
                if self.health.agent(node).data_violations > 0:
                    score += 0.5
            scores[node] = score
        (node_a, score_a), (node_b, score_b) = scores.items()
        if score_a > score_b:
            return node_a
        if score_b > score_a:
            return node_b
        return None

    def verdicts_for(self, finding: CrossCheckFinding) -> List[IntegrityVerdict]:
        """Translate a mismatch finding into per-end trust verdicts."""
        if not finding.mismatch:
            return []
        out: List[IntegrityVerdict] = []
        for source in finding.pair.ends():
            if finding.blamed is None:
                severity = Severity.SUSPECT
            elif source.node == finding.blamed:
                severity = Severity.VIOLATION
            else:
                continue  # exonerated by corroboration
            out.append(
                IntegrityVerdict(
                    check="cross_check",
                    severity=severity,
                    node=source.node,
                    if_index=source.if_index,
                    time=finding.time,
                    detail=f"{finding.pair.label}: {finding.detail}",
                )
            )
        return out
